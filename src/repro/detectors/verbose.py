"""Fuzzy verbose failure detector (paper section 3.2).

A *verbose failure* of q with respect to p is q sending protocol messages
it should not: too many of a rate-limited kind (e.g. messages beyond the
flow-control window, incessant view-change requests) or a message that a
correct process would never send (e.g. an acknowledgement for a message
that was never sent).  Like muteness, verbosity is detectable from locally
observed events.

Layers either declare a *rate bound* for a message kind and then feed every
observation through :meth:`observe`, or report an outright protocol
violation through :meth:`illegal`.
"""

from __future__ import annotations


class _RateBound:
    __slots__ = ("max_count", "window", "count", "window_start", "weight")

    def __init__(self, max_count, window, weight, now):
        self.max_count = max_count
        self.window = window
        self.weight = weight
        self.count = 0
        self.window_start = now


class FuzzyVerboseDetector:
    """Rate-bound registry feeding a fuzzy verbose level."""

    #: weight used for messages a correct process would never send
    ILLEGAL_WEIGHT = 3.0

    def __init__(self, sim, levels):
        self.sim = sim
        self.levels = levels
        self._bounds = {}
        self._counters = {}
        self.violations = 0

    # ------------------------------------------------------------------
    def set_rate_bound(self, tag, max_count, window, weight=1.0):
        """Declare that any member may send at most ``max_count`` ``tag``
        messages per ``window`` simulated seconds."""
        self._bounds[tag] = (max_count, window, weight)

    def observe(self, member, tag):
        """Record one ``tag`` message from ``member``; raise level if over."""
        bound = self._bounds.get(tag)
        if bound is None:
            return False
        max_count, window, weight = bound
        state = self._state(member, tag, max_count, window, weight)
        now = self.sim.now
        if now - state.window_start >= state.window:
            state.window_start = now
            state.count = 0
        state.count += 1
        if state.count > state.max_count:
            self.violations += 1
            self.levels.raise_level(member, state.weight)
            return True
        return False

    def illegal(self, member, tag, weight=None):
        """A message a correct process would never send arrived."""
        del tag
        self.violations += 1
        self.levels.raise_level(
            member, self.ILLEGAL_WEIGHT if weight is None else weight
        )

    def forget(self, member):
        for key in [k for k in self._counters if k[0] == member]:
            del self._counters[key]

    # ------------------------------------------------------------------
    def _state(self, member, tag, max_count, window, weight):
        key = (member, tag)
        state = self._counters.get(key)
        if state is None:
            state = _RateBound(max_count, window, weight, self.sim.now)
            self._counters[key] = state
        return state
