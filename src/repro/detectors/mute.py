"""Fuzzy mute failure detector (paper section 3.2).

A *mute failure* of q with respect to p is q consistently failing to send a
protocol message that p's layer expects -- an acknowledgement, a new-view
message from the coordinator, the coordinator's gossip announcement, a
consensus round message.  Because each layer knows exactly which headers it
is owed, muteness is detectable from locally observed events alone.

Layers use the registration API directly:

* :meth:`expect` -- "I am owed a message of kind ``tag`` from ``member``
  within ``timeout``"; returns a handle;
* :meth:`fulfil` -- the owed message arrived; the oldest matching
  expectation is discharged;
* on timeout, the member's fuzzy *mute* level is raised by the
  expectation's weight.

The detector approximates the class 3P-mute: completeness comes from
timeouts, eventual accuracy from the aging in
:class:`repro.detectors.fuzzy.FuzzyLevels` plus generous thresholds.
"""

from __future__ import annotations

from collections import deque


class Expectation:
    """Handle for one registered expectation."""

    __slots__ = ("member", "tag", "weight", "timer", "done")

    def __init__(self, member, tag, weight):
        self.member = member
        self.tag = tag
        self.weight = weight
        self.timer = None
        self.done = False

    def cancel(self):
        if not self.done:
            self.done = True
            if self.timer is not None:
                self.timer.cancel()


class FuzzyMuteDetector:
    """Expectation registry feeding a fuzzy mute level."""

    def __init__(self, sim, levels, default_timeout=0.2):
        self.sim = sim
        self.levels = levels
        self.default_timeout = default_timeout
        self._pending = {}
        self.timeouts_fired = 0

    # ------------------------------------------------------------------
    def expect(self, member, tag, timeout=None, weight=1.0):
        """Register that ``member`` owes us a ``tag`` message."""
        exp = Expectation(member, tag, weight)
        exp.timer = self.sim.schedule(
            timeout if timeout is not None else self.default_timeout,
            self._timed_out, exp,
        )
        self._pending.setdefault((member, tag), deque()).append(exp)
        return exp

    def fulfil(self, member, tag):
        """Discharge the oldest live expectation for (member, tag).

        Returns True if one was pending -- callers can treat an unexpected
        message of an expected kind as input for the *verbose* detector.
        """
        queue = self._pending.get((member, tag))
        while queue:
            exp = queue.popleft()
            if not exp.done:
                exp.cancel()
                if not queue:
                    del self._pending[(member, tag)]
                return True
        if queue is not None and not queue:
            del self._pending[(member, tag)]
        return False

    def cancel_member(self, member):
        """Drop all expectations against ``member`` (it left or was removed)."""
        for (m, _tag), queue in list(self._pending.items()):
            if m != member:
                continue
            for exp in queue:
                exp.cancel()
            del self._pending[(m, _tag)]

    def cancel_all(self):
        for queue in self._pending.values():
            for exp in queue:
                exp.cancel()
        self._pending.clear()

    def pending_count(self, member=None):
        total = 0
        for (m, _tag), queue in self._pending.items():
            if member is None or m == member:
                total += sum(1 for e in queue if not e.done)
        return total

    # ------------------------------------------------------------------
    def _timed_out(self, exp):
        if exp.done:
            return
        exp.done = True
        self.timeouts_fired += 1
        self.levels.raise_level(exp.member, exp.weight)
