"""Fuzzy levels with aging (paper sections 3.1-3.2).

Rather than a binary alive/suspected verdict, JazzEnsemble maintains a
graded *fuzziness level* per member.  Layers raise the level when they
observe misbehaviour; an aging timer decays levels back toward zero so that
transient overloads and short-lived disconnections do not accumulate into
a false removal.  Levels are visible to every layer (flow control, buffer
management, consensus failure detection, the suspicion layer) but hidden
from the application.
"""

from __future__ import annotations


class FuzzyLevels:
    """A named, aged, per-member fuzziness map.

    Parameters
    ----------
    sim:
        The simulator (for the aging timer).
    name:
        ``"mute"`` or ``"verbose"`` in this system; used in change events.
    decay_interval / decay_amount:
        Every ``decay_interval`` simulated seconds, each member's level is
        reduced by ``decay_amount`` (never below zero).
    """

    def __init__(self, sim, name, decay_interval=0.05, decay_amount=1.0):
        self.sim = sim
        self.name = name
        self.decay_interval = decay_interval
        self.decay_amount = decay_amount
        self._levels = {}
        self._listeners = []
        self._aging_timer = None
        self._start_aging()

    # ------------------------------------------------------------------
    def subscribe(self, callback):
        """``callback(name, member, level)`` on every level change."""
        self._listeners.append(callback)

    def level(self, member):
        return self._levels.get(member, 0.0)

    def snapshot(self):
        return dict(self._levels)

    def members_above(self, threshold):
        return {m for m, lvl in self._levels.items() if lvl >= threshold}

    # ------------------------------------------------------------------
    def raise_level(self, member, amount=1.0):
        if amount <= 0:
            return
        new = self._levels.get(member, 0.0) + amount
        self._levels[member] = new
        self._notify(member, new)

    def reset(self, member):
        if self._levels.pop(member, None) is not None:
            self._notify(member, 0.0)

    def forget_all(self):
        """Clear every level -- used when a new view is installed."""
        members = list(self._levels)
        self._levels.clear()
        for member in members:
            self._notify(member, 0.0)

    def stop(self):
        if self._aging_timer is not None:
            self._aging_timer.cancel()
            self._aging_timer = None

    # ------------------------------------------------------------------
    def _start_aging(self):
        self._aging_timer = self.sim.schedule(self.decay_interval, self._age)

    def _age(self):
        expired = []
        for member, lvl in self._levels.items():
            new = lvl - self.decay_amount
            if new <= 0:
                expired.append(member)
            else:
                self._levels[member] = new
                self._notify(member, new)
        for member in expired:
            del self._levels[member]
            self._notify(member, 0.0)
        self._start_aging()

    def _notify(self, member, level):
        for callback in self._listeners:
            callback(self.name, member, level)
