"""Deterministic discrete-event simulator.

All protocol code in this repository executes inside a single
:class:`Simulator`.  Events are ordered by (deadline, insertion sequence),
so two runs with the same seed produce byte-identical histories -- the
property every test and benchmark in this reproduction relies on.
"""

from __future__ import annotations

import heapq
import random

from repro.sim.clock import Timer


class SimulationError(RuntimeError):
    """Raised when the simulator is driven outside its contract."""


class Simulator:
    """A single-threaded event-heap simulator with virtual time.

    Parameters
    ----------
    seed:
        Seed for the simulator-owned :class:`random.Random`.  Every source
        of randomness in the reproduction (network jitter, drops, workload
        arrivals) draws from this generator so executions are reproducible.
    """

    __slots__ = ("now", "rng", "_heap", "_seq", "_events_processed",
                 "_running", "observer")

    def __init__(self, seed=0):
        self.now = 0.0
        self.rng = random.Random(seed)
        self._heap = []
        self._seq = 0
        self._events_processed = 0
        self._running = False
        # optional observability hook (repro.obs): notified before each
        # fired timer; None (the default) costs one branch per event
        self.observer = None

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay, callback, *args):
        """Run ``callback(*args)`` ``delay`` simulated seconds from now."""
        if delay < 0:
            raise SimulationError("cannot schedule in the past: %r" % delay)
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(self, deadline, callback, *args):
        """Run ``callback(*args)`` at absolute simulated time ``deadline``."""
        if deadline < self.now:
            raise SimulationError(
                "deadline %.9f precedes now %.9f" % (deadline, self.now)
            )
        timer = Timer(deadline, callback, args)
        self._seq += 1
        heapq.heappush(self._heap, (deadline, self._seq, timer))
        return timer

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    @property
    def pending(self):
        """Number of heap entries, including lazily-cancelled ones."""
        return len(self._heap)

    @property
    def events_processed(self):
        return self._events_processed

    def step(self):
        """Process the single next event.  Returns False if none remain."""
        while self._heap:
            deadline, _seq, timer = heapq.heappop(self._heap)
            if timer.cancelled:
                continue
            self.now = deadline
            if self.observer is not None:
                self.observer.on_timer(self.now, timer)
            timer.callback(*timer.args)
            self._events_processed += 1
            return True
        return False

    def run(self, until=None, max_events=None):
        """Drain the event heap.

        Parameters
        ----------
        until:
            Stop once virtual time would pass this instant.  Events at a
            deadline strictly greater than ``until`` stay queued and
            ``now`` is advanced to ``until``.
        max_events:
            Safety valve for runaway protocols; raises if exceeded.
        """
        if self._running:
            raise SimulationError("run() is not re-entrant")
        self._running = True
        # the event loop is the single hottest frame in every benchmark:
        # hoist the heap and heappop lookups out of the loop (the observer
        # is re-read each iteration on purpose -- it can be installed or
        # removed by a fired event)
        heap = self._heap
        heappop = heapq.heappop
        try:
            processed = 0
            while heap:
                deadline, _seq, timer = heap[0]
                if timer.cancelled:
                    heappop(heap)
                    continue
                if until is not None and deadline > until:
                    break
                heappop(heap)
                self.now = deadline
                if self.observer is not None:
                    self.observer.on_timer(deadline, timer)
                timer.callback(*timer.args)
                self._events_processed += 1
                processed += 1
                if max_events is not None and processed > max_events:
                    raise SimulationError(
                        "exceeded max_events=%d (runaway protocol?)" % max_events
                    )
            if until is not None and self.now < until:
                self.now = until
            return processed
        finally:
            self._running = False

    def run_until(self, predicate, timeout, max_events=None, poll=None):
        """Run until ``predicate()`` is true or ``timeout`` sim-seconds pass.

        Returns True if the predicate became true.  The predicate is checked
        after every processed event, which is exact for event-driven
        conditions; ``poll`` is unused and kept for API compatibility.
        """
        del poll
        deadline = self.now + timeout
        processed = 0
        heap = self._heap
        heappop = heapq.heappop
        while heap:
            if predicate():
                return True
            event_deadline, _seq, timer = heap[0]
            if timer.cancelled:
                heappop(heap)
                continue
            if event_deadline > deadline:
                break
            heappop(heap)
            self.now = event_deadline
            if self.observer is not None:
                self.observer.on_timer(event_deadline, timer)
            timer.callback(*timer.args)
            self._events_processed += 1
            processed += 1
            if max_events is not None and processed > max_events:
                raise SimulationError(
                    "exceeded max_events=%d (runaway protocol?)" % max_events
                )
        if predicate():
            return True
        if self.now < deadline:
            self.now = deadline
        return predicate()
