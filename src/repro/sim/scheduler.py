"""Deterministic discrete-event simulator.

All protocol code in this repository executes inside a single
:class:`Simulator`.  Events are ordered by (deadline, insertion sequence),
so two runs with the same seed produce byte-identical histories -- the
property every test and benchmark in this reproduction relies on.

Serial queues (docs/PERFORMANCE.md, "The CPU path"): a node's
CPU-completion events are already sorted -- :meth:`repro.sim.network.Cpu.
charge` returns non-decreasing deadlines -- so keeping every one of them
in the global heap is pure waste: at n=50 the fig5 heap peaks near 50k
entries, almost all of them per-node receive-processing callbacks queued
behind each CPU's ``busy_until``.  :meth:`schedule_serial` instead parks
such events in a per-queue deque and exposes only each queue's *head* to
the heap (a k-way merge).  The insertion sequence is still assigned at
schedule time from the shared counter, and within one queue entries are
monotone in (deadline, seq), so the popped order -- and therefore every
simulated history -- is byte-identical to the all-in-heap schedule
(tests/test_perf_parity.py flips :attr:`Simulator.serial_queues` to prove
it).  A caller that violates the monotonicity contract silently falls
back to a plain heap entry, which is always correct.
"""

from __future__ import annotations

import heapq
import random
from collections import deque

from repro.sim.clock import Timer


class SimulationError(RuntimeError):
    """Raised when the simulator is driven outside its contract."""


class SerialQueue:
    """FIFO of already-ordered timers; only its head sits in the heap."""

    __slots__ = ("entries",)

    def __init__(self):
        self.entries = deque()


class Simulator:
    """A single-threaded event-heap simulator with virtual time.

    Parameters
    ----------
    seed:
        Seed for the simulator-owned :class:`random.Random`.  Every source
        of randomness in the reproduction (network jitter, drops, workload
        arrivals) draws from this generator so executions are reproducible.
    """

    __slots__ = ("now", "rng", "_heap", "_seq", "_events_processed",
                 "_running", "_serial_hidden", "observer")

    #: perf-parity switch (tests/test_perf_parity.py): with this off,
    #: schedule_serial degrades to plain schedule_at -- the reference
    #: all-entries-in-the-heap schedule the k-way merge must match
    serial_queues = True

    def __init__(self, seed=0):
        self.now = 0.0
        self.rng = random.Random(seed)
        self._heap = []
        self._seq = 0
        self._events_processed = 0
        self._running = False
        # serial-queue entries parked outside the heap (pending accounting)
        self._serial_hidden = 0
        # optional observability hook (repro.obs): notified before each
        # fired timer; None (the default) costs one branch per event
        self.observer = None

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay, callback, *args):
        """Run ``callback(*args)`` ``delay`` simulated seconds from now."""
        if delay < 0:
            raise SimulationError("cannot schedule in the past: %r" % delay)
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(self, deadline, callback, *args):
        """Run ``callback(*args)`` at absolute simulated time ``deadline``."""
        if deadline < self.now:
            raise SimulationError(
                "deadline %.9f precedes now %.9f" % (deadline, self.now)
            )
        timer = Timer(deadline, callback, args)
        self._seq += 1
        heapq.heappush(self._heap, (deadline, self._seq, timer))
        return timer

    def serial_queue(self):
        """A new :class:`SerialQueue` for :meth:`schedule_serial`."""
        return SerialQueue()

    def schedule_serial(self, queue, deadline, callback, *args):
        """Like :meth:`schedule_at` for deadlines known to be monotone.

        ``queue`` is a :class:`SerialQueue` whose successive deadlines
        never decrease (e.g. one node's CPU-completion times).  Entries
        keep their globally-sequenced insertion order, but only the queue
        head occupies the heap, so a deep per-node backlog costs O(1)
        heap entries instead of O(backlog).  A deadline below the queue's
        tail falls back to a plain heap entry (correct for any order).
        """
        if deadline < self.now:
            raise SimulationError(
                "deadline %.9f precedes now %.9f" % (deadline, self.now)
            )
        timer = Timer(deadline, callback, args)
        self._seq += 1
        seq = self._seq
        if not self.serial_queues:
            heapq.heappush(self._heap, (deadline, seq, timer))
            return timer
        entries = queue.entries
        if entries:
            if deadline < entries[-1][0]:
                heapq.heappush(self._heap, (deadline, seq, timer))
                return timer
            entries.append((deadline, seq, timer))
            self._serial_hidden += 1
        else:
            entries.append((deadline, seq, timer))
            heapq.heappush(self._heap, (deadline, seq, timer, queue))
        return timer

    def _promote(self, queue):
        """The queue's head left the heap: surface its successor."""
        entries = queue.entries
        entries.popleft()
        if entries:
            deadline, seq, timer = entries[0]
            heapq.heappush(self._heap, (deadline, seq, timer, queue))
            self._serial_hidden -= 1

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    @property
    def pending(self):
        """Number of scheduled entries, including lazily-cancelled ones
        and serial-queue entries parked outside the heap."""
        return len(self._heap) + self._serial_hidden

    def timers(self):
        """Every pending (deadline, seq, timer) entry, heap + serial
        queues, in no particular order (introspection/tests only)."""
        for entry in self._heap:
            yield entry[0], entry[1], entry[2]
            if len(entry) == 4:
                queue_entries = entry[3].entries
                for idx in range(1, len(queue_entries)):
                    yield queue_entries[idx]

    @property
    def events_processed(self):
        return self._events_processed

    def step(self):
        """Process the single next event.  Returns False if none remain."""
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            if len(entry) == 4:
                self._promote(entry[3])
            timer = entry[2]
            if timer.cancelled:
                continue
            self.now = entry[0]
            if self.observer is not None:
                self.observer.on_timer(self.now, timer)
            timer.callback(*timer.args)
            self._events_processed += 1
            return True
        return False

    def run(self, until=None, max_events=None):
        """Drain the event heap.

        Parameters
        ----------
        until:
            Stop once virtual time would pass this instant.  Events at a
            deadline strictly greater than ``until`` stay queued and
            ``now`` is advanced to ``until``.
        max_events:
            Safety valve for runaway protocols; raises if exceeded.
        """
        if self._running:
            raise SimulationError("run() is not re-entrant")
        self._running = True
        # the event loop is the single hottest frame in every benchmark:
        # hoist the heap and heappop lookups out of the loop (the observer
        # is re-read each iteration on purpose -- it can be installed or
        # removed by a fired event)
        heap = self._heap
        heappop = heapq.heappop
        try:
            processed = 0
            while heap:
                entry = heap[0]
                timer = entry[2]
                if timer.cancelled:
                    heappop(heap)
                    if len(entry) == 4:
                        self._promote(entry[3])
                    continue
                deadline = entry[0]
                if until is not None and deadline > until:
                    break
                heappop(heap)
                if len(entry) == 4:
                    self._promote(entry[3])
                self.now = deadline
                if self.observer is not None:
                    self.observer.on_timer(deadline, timer)
                timer.callback(*timer.args)
                self._events_processed += 1
                processed += 1
                if max_events is not None and processed > max_events:
                    raise SimulationError(
                        "exceeded max_events=%d (runaway protocol?)" % max_events
                    )
            if until is not None and self.now < until:
                self.now = until
            return processed
        finally:
            self._running = False

    def run_until(self, predicate, timeout, max_events=None, poll=None):
        """Run until ``predicate()`` is true or ``timeout`` sim-seconds pass.

        Returns True if the predicate became true.  The predicate is checked
        after every processed event, which is exact for event-driven
        conditions; ``poll`` is unused and kept for API compatibility.
        """
        del poll
        deadline = self.now + timeout
        processed = 0
        heap = self._heap
        heappop = heapq.heappop
        while heap:
            if predicate():
                return True
            entry = heap[0]
            timer = entry[2]
            if timer.cancelled:
                heappop(heap)
                if len(entry) == 4:
                    self._promote(entry[3])
                continue
            event_deadline = entry[0]
            if event_deadline > deadline:
                break
            heappop(heap)
            if len(entry) == 4:
                self._promote(entry[3])
            self.now = event_deadline
            if self.observer is not None:
                self.observer.on_timer(event_deadline, timer)
            timer.callback(*timer.args)
            self._events_processed += 1
            processed += 1
            if max_events is not None and processed > max_events:
                raise SimulationError(
                    "exceeded max_events=%d (runaway protocol?)" % max_events
                )
        if predicate():
            return True
        if self.now < deadline:
            self.now = deadline
        return predicate()
