"""Cluster topology and host models.

The paper's evaluation ran on an IBM BladeCenter: 25 dual-CPU JS20 blades
on gigabit Ethernet, with two configuration quirks that are visible in its
graphs and that we model explicitly:

* above 12 nodes, part of the traffic crosses *two* internal switches
  (minor throughput dip after n=12 in Figure 5);
* above 24 nodes, two processes run per blade and therefore share one NIC
  (visible extra dip, and the large drop of the Total-order line past 24
  nodes in Figures 5 and 7).

``FlatGigE`` is the idealized alternative without either quirk.

The host model constants are the calibration table referred to by
DESIGN.md section 2: they were tuned once so that the *benign* stack
reproduces the paper's 40-50k msgs/s envelope, and are never tuned
per-experiment.
"""

from __future__ import annotations


class HostModel:
    """Per-node CPU cost constants, in simulated seconds.

    ``send_cpu`` / ``recv_cpu`` are charged per datagram by the bottom
    layer; ``byz_check_cpu`` is the extra per-datagram cost of the hardened
    (Byzantine) stack -- header sanity checks, view-id filtering, detector
    bookkeeping -- which the paper measures as the 10-15% "NoCrypto"
    overhead.
    """

    __slots__ = ("send_cpu", "recv_cpu", "byz_check_cpu", "app_cpu")

    def __init__(self, send_cpu=1.35e-5, recv_cpu=1.35e-5,
                 byz_check_cpu=1.4e-6, app_cpu=0.0):
        self.send_cpu = send_cpu
        self.recv_cpu = recv_cpu
        self.byz_check_cpu = byz_check_cpu
        self.app_cpu = app_cpu


class Topology:
    """Latency and NIC placement for a cluster of ``n`` nodes."""

    #: gigabit Ethernet
    nic_bandwidth_bps = 1.0e9
    #: Ethernet + IP + UDP framing per datagram
    per_packet_overhead_bytes = 60

    def __init__(self, n):
        self.n = n

    def latency(self, src, dst):
        """One-way network latency between two nodes, in seconds."""
        raise NotImplementedError

    def nic_id(self, node):
        """Identifier of the NIC ``node``'s traffic is serialized onto."""
        raise NotImplementedError

    def describe(self):
        return "{}(n={})".format(type(self).__name__, self.n)


class FlatGigE(Topology):
    """Idealized flat gigabit network: one switch, one NIC per node."""

    base_latency = 55e-6

    def latency(self, src, dst):
        return self.base_latency

    def nic_id(self, node):
        return node


class BladeCenterTopology(Topology):
    """The paper's IBM BladeCenter, quirks included.

    Nodes are placed on blades in id order.  With n <= 24 every process has
    its own blade; beyond that, two processes share each blade (and its
    single NIC).  With n > 12 the cluster spans two chassis switches; pairs
    on different switches pay one extra hop.
    """

    base_latency = 55e-6
    extra_switch_hop = 18e-6
    switch_capacity = 12  # blades per internal switch

    def __init__(self, n):
        super().__init__(n)
        # latency is a pure function of the (fixed) placement, and the
        # network asks for it once per datagram -- memoize per pair
        self._latency_cache = {}

    def latency(self, src, dst):
        key = (src, dst)
        lat = self._latency_cache.get(key)
        if lat is None:
            lat = self.base_latency
            if (self.n > self.switch_capacity
                    and self._switch(src) != self._switch(dst)):
                lat += self.extra_switch_hop
            self._latency_cache[key] = lat
        return lat

    def nic_id(self, node):
        if self.n <= 24:
            return node
        return node // 2

    def _switch(self, node):
        blade = self.nic_id(node)
        return blade // self.switch_capacity

    def describe(self):
        return ("BladeCenterTopology(n={}, shared_nic={}, two_switches={})"
                .format(self.n, self.n > 24, self.n > self.switch_capacity))
