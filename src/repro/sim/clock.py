"""Virtual time primitives for the discrete-event simulator.

The paper's system runs on wall-clock time; the reproduction runs on a
virtual clock owned by :class:`repro.sim.scheduler.Simulator`.  Layers and
failure detectors never read the OS clock -- they receive the simulator's
``now`` and set :class:`Timer` objects, which keeps every run deterministic
and lets benchmarks measure *simulated* seconds.
"""

from __future__ import annotations


class Timer:
    """A cancellable handle for a scheduled callback.

    Timers are returned by :meth:`Simulator.schedule`.  Cancellation is
    lazy: the heap entry stays in place and is discarded when popped.
    """

    __slots__ = ("deadline", "callback", "args", "cancelled")

    def __init__(self, deadline, callback, args):
        self.deadline = deadline
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self):
        """Prevent the callback from firing.  Safe to call repeatedly."""
        self.cancelled = True

    @property
    def active(self):
        return not self.cancelled

    def __repr__(self):
        state = "cancelled" if self.cancelled else "armed"
        return "Timer(deadline={:.6f}, {})".format(self.deadline, state)


class NodeClock:
    """A per-node view of the simulator with (optional) timer drift.

    The chaos plane's clock-skew fault: a node whose hardware timer runs
    fast or slow fires its protocol timers early or late relative to the
    rest of the cluster.  The proxy scales *relative* delays passed to
    :meth:`schedule` by ``drift`` (> 1.0 = slow clock, timers late) and
    leaves absolute deadlines (:meth:`schedule_at` -- NIC serialization,
    CPU completion) untouched: skew affects when a node *decides* to act,
    not how long the physics of its hardware take.

    Installed at process construction (layers cache ``process.sim`` when
    they attach, so a proxy swapped in later would not be seen).  With
    ``drift == 1.0`` the proxy is behaviourally identical to the bare
    simulator.
    """

    __slots__ = ("sim", "drift")

    def __init__(self, sim, drift=1.0):
        self.sim = sim
        self.drift = drift

    @property
    def now(self):
        return self.sim.now

    @property
    def rng(self):
        return self.sim.rng

    @property
    def pending(self):
        return self.sim.pending

    def schedule(self, delay, callback, *args):
        if self.drift != 1.0:
            delay *= self.drift
        return self.sim.schedule(delay, callback, *args)

    def schedule_at(self, deadline, callback, *args):
        return self.sim.schedule_at(deadline, callback, *args)

    def serial_queue(self):
        return self.sim.serial_queue()

    def schedule_serial(self, queue, deadline, callback, *args):
        # absolute deadlines (CPU completion physics) are never drifted,
        # exactly like schedule_at
        return self.sim.schedule_serial(queue, deadline, callback, *args)

    def __repr__(self):
        return "NodeClock(drift={:.3f})".format(self.drift)
