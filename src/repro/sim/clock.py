"""Virtual time primitives for the discrete-event simulator.

The paper's system runs on wall-clock time; the reproduction runs on a
virtual clock owned by :class:`repro.sim.scheduler.Simulator`.  Layers and
failure detectors never read the OS clock -- they receive the simulator's
``now`` and set :class:`Timer` objects, which keeps every run deterministic
and lets benchmarks measure *simulated* seconds.
"""

from __future__ import annotations


class Timer:
    """A cancellable handle for a scheduled callback.

    Timers are returned by :meth:`Simulator.schedule`.  Cancellation is
    lazy: the heap entry stays in place and is discarded when popped.
    """

    __slots__ = ("deadline", "callback", "args", "cancelled")

    def __init__(self, deadline, callback, args):
        self.deadline = deadline
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self):
        """Prevent the callback from firing.  Safe to call repeatedly."""
        self.cancelled = True

    @property
    def active(self):
        return not self.cancelled

    def __repr__(self):
        state = "cancelled" if self.cancelled else "armed"
        return "Timer(deadline={:.6f}, {})".format(self.deadline, state)
