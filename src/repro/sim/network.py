"""Oblivious datagram network (paper section 2.1).

The network is driven by a *scheduler* that controls message timing, may
drop or reorder a random, content-oblivious subset of messages, and decides
at each moment which nodes are connected.  Connectivity is a symmetric and
transitive relation, which we enforce by representing it as a partition of
the node set into components.

Two communication primitives are provided, mirroring the system:

* :meth:`Network.send` -- point-to-point unreliable datagram (UDP model);
  the sender's NIC serializes the bytes, so per-node outgoing bandwidth is
  finite and shared-NIC placements contend.
* :meth:`Network.gossip_cast` -- the IP-multicast discovery channel used by
  coordinators to announce their view; it reaches every *connected* process
  regardless of group membership.
"""

from __future__ import annotations


def _independent_copy(payload):
    """A fresh datagram image for a duplicated delivery.

    The simulator passes live ``Message`` objects where a real network
    carries byte copies.  Delivering the *same* object twice is wrong:
    the first delivery pops layer headers in place, so the replayed
    object arrives header-stripped and the receiver misreads a benign
    network duplicate as a malformed (Byzantine) message.  Cloning the
    message -- and the inner messages of a packed container, which are
    also held by reference -- restores wire semantics: every delivery
    is an independent image of what was sent.
    """
    if hasattr(payload, "clone_for"):
        return payload.clone_for(payload.dest)
    if (isinstance(payload, tuple) and len(payload) == 2
            and payload[0] == "pack" and isinstance(payload[1], tuple)):
        return ("pack", tuple(
            msg.clone_for(msg.dest) if hasattr(msg, "clone_for") else msg
            for msg in payload[1]))
    return payload


class NetworkConfig:
    """Tunable loss/latency behaviour of the oblivious scheduler."""

    __slots__ = ("drop_prob", "reorder_prob", "reorder_extra", "jitter",
                 "duplicate_prob", "mtu")

    def __init__(self, drop_prob=0.0, reorder_prob=0.0, reorder_extra=400e-6,
                 jitter=4e-6, duplicate_prob=0.0, mtu=1400):
        self.drop_prob = drop_prob
        self.reorder_prob = reorder_prob
        self.reorder_extra = reorder_extra
        self.jitter = jitter
        self.duplicate_prob = duplicate_prob
        self.mtu = mtu


class Nic:
    """Serializes outgoing datagrams at a fixed bandwidth."""

    __slots__ = ("sim", "bandwidth_bps", "overhead_bytes", "busy_until",
                 "bytes_sent", "packets_sent")

    def __init__(self, sim, bandwidth_bps, overhead_bytes):
        self.sim = sim
        self.bandwidth_bps = bandwidth_bps
        self.overhead_bytes = overhead_bytes
        self.busy_until = 0.0
        self.bytes_sent = 0
        self.packets_sent = 0

    def transmit(self, nbytes):
        """Queue ``nbytes`` onto the wire; returns serialization-done time."""
        wire_bytes = nbytes + self.overhead_bytes
        tx_time = wire_bytes * 8.0 / self.bandwidth_bps
        start = max(self.sim.now, self.busy_until)
        self.busy_until = start + tx_time
        self.bytes_sent += wire_bytes
        self.packets_sent += 1
        return self.busy_until


class Cpu:
    """A node's processor: work is charged sequentially onto it."""

    __slots__ = ("sim", "busy_until", "busy_accum")

    def __init__(self, sim):
        self.sim = sim
        self.busy_until = 0.0
        self.busy_accum = 0.0

    def charge(self, seconds):
        """Account ``seconds`` of CPU work; returns its completion time."""
        start = max(self.sim.now, self.busy_until)
        self.busy_until = start + seconds
        self.busy_accum += seconds
        return self.busy_until


class _Port:
    """Internal record of an attached node."""

    __slots__ = ("node_id", "deliver", "gossip_deliver", "nic", "crashed",
                 "group")

    def __init__(self, node_id, deliver, gossip_deliver, nic, group=None):
        self.node_id = node_id
        self.deliver = deliver
        self.gossip_deliver = gossip_deliver
        self.nic = nic
        self.crashed = False
        # shard plane (repro.shard): the group this port belongs to, or
        # None for a single-group network.  Gossip is scoped to the
        # port's own group -- the discovery channel must not leak view
        # announcements across shards, or the merge machinery would try
        # to fold independent groups into one.
        self.group = group


class Network:
    """The simulated network connecting all nodes of an experiment.

    Determinism contract (docs/PERFORMANCE.md): every random decision in
    :meth:`send` and :meth:`gossip_cast` draws from the simulator-owned RNG
    in a fixed order -- connectivity check first, then drop, jitter,
    reorder, duplicate.  The *order and number of draws* is part of the
    seed contract: reordering them (e.g. drawing drop before the
    connectivity check) changes every subsequent draw and thus the whole
    simulated history, even though each run would still be internally
    deterministic.  Optimizations here must not add, remove, or reorder
    draws.
    """

    __slots__ = ("sim", "topology", "config", "_ports", "_nics",
                 "_component", "datagrams_sent", "datagrams_dropped",
                 "datagrams_delivered", "observer", "chaos")

    def __init__(self, sim, topology, config=None):
        self.sim = sim
        self.topology = topology
        self.config = config or NetworkConfig()
        self._ports = {}
        self._nics = {}
        self._component = {}
        self.datagrams_sent = 0
        self.datagrams_dropped = 0
        self.datagrams_delivered = 0
        # optional observability hook (repro.obs): None (the default)
        # costs one branch per datagram
        self.observer = None
        # optional per-link fault injector (repro.chaos.LinkFaults): draws
        # from its OWN RNG, never the simulator's, so installing it does
        # not perturb the frozen draw order above -- and None (the
        # default) costs one branch per datagram
        self.chaos = None

    # ------------------------------------------------------------------
    # membership of the physical network
    # ------------------------------------------------------------------
    def attach(self, node_id, deliver, gossip_deliver=None, group=None):
        """Plug a node in.  ``deliver(src, payload)`` is its datagram sink.

        ``group`` tags the port for the shard plane: gossip from this
        node reaches only same-group ports (None = the single-group
        network, where every port sees every cast, unchanged).
        """
        if node_id in self._ports:
            raise ValueError("node %r already attached" % (node_id,))
        nic_id = self.topology.nic_id(node_id)
        nic = self._nics.get(nic_id)
        if nic is None:
            nic = Nic(self.sim, self.topology.nic_bandwidth_bps,
                      self.topology.per_packet_overhead_bytes)
            self._nics[nic_id] = nic
        port = _Port(node_id, deliver, gossip_deliver, nic, group=group)
        self._ports[node_id] = port
        self._component.setdefault(node_id, 0)
        return port

    def detach(self, node_id):
        self._ports.pop(node_id, None)
        self._component.pop(node_id, None)

    def crash(self, node_id):
        """Silence a node entirely (the 'crash' failure of section 2.2)."""
        port = self._ports.get(node_id)
        if port is not None:
            port.crashed = True

    def nic_of(self, node_id):
        port = self._ports.get(node_id)
        if port is not None:
            return port.nic
        # the NIC is physical and shared (blade placements): it outlives
        # any one port's attachment, e.g. post-teardown inspection after
        # Group.stop released the group's transport registrations
        return self._nics[self.topology.nic_id(node_id)]

    def degrade_nic(self, node_id, factor):
        """Scale a node's NIC bandwidth (chaos fault: a flaky or
        autonegotiated-down link).  ``factor=1.0`` restores line rate.
        Nodes sharing a blade (n > 24) share the degradation, as they
        would share the physical NIC."""
        nic = self._ports[node_id].nic
        nic.bandwidth_bps = self.topology.nic_bandwidth_bps * factor

    # ------------------------------------------------------------------
    # connectivity (symmetric + transitive by construction)
    # ------------------------------------------------------------------
    def set_components(self, groups):
        """Partition the nodes: each set in ``groups`` is one component.

        Nodes not named in any group become isolated singletons.
        """
        new = {}
        for idx, group in enumerate(groups):
            for node in group:
                if node in new:
                    raise ValueError("node %r in two components" % (node,))
                new[node] = idx
        next_idx = len(groups)
        for node in self._component:
            if node not in new:
                new[node] = next_idx
                next_idx += 1
        self._component = new

    def heal(self):
        """Reconnect everything into one component."""
        self._component = {node: 0 for node in self._component}

    def connected(self, a, b):
        if a == b:
            return True
        ca = self._component.get(a)
        cb = self._component.get(b)
        return ca is not None and ca == cb

    # ------------------------------------------------------------------
    # datagram primitives
    # ------------------------------------------------------------------
    def send(self, src, dst, size_bytes, payload):
        """Unreliable unicast datagram of ``size_bytes`` from src to dst."""
        self.datagrams_sent += 1
        observer = self.observer
        src_port = self._ports.get(src)
        dst_port = self._ports.get(dst)
        if src_port is None or src_port.crashed:
            self.datagrams_dropped += 1
            return
        sent_at = src_port.nic.transmit(size_bytes)
        if observer is not None:
            observer.on_datagram_sent(src, dst, size_bytes, payload)
        if dst_port is None or dst_port.crashed or not self.connected(src, dst):
            self.datagrams_dropped += 1
            if observer is not None:
                observer.on_datagram_dropped(src, dst)
            return
        # see the class docstring: the RNG draw order below is frozen
        config = self.config
        rng_random = self.sim.rng.random
        if config.drop_prob and rng_random() < config.drop_prob:
            self.datagrams_dropped += 1
            if observer is not None:
                observer.on_datagram_dropped(src, dst)
            return
        delay = self.topology.latency(src, dst)
        if config.jitter:
            delay += rng_random() * config.jitter
        if config.reorder_prob and rng_random() < config.reorder_prob:
            delay += rng_random() * config.reorder_extra
        arrival = sent_at + delay
        schedule_at = self.sim.schedule_at
        chaos = self.chaos
        if chaos is not None:
            # after the frozen draws above, so the main RNG stream is
            # byte-identical whether or not a fault plan is installed
            payload, extra, chaos_dropped = chaos.filter(src, dst, payload)
            if chaos_dropped:
                self.datagrams_dropped += 1
                if observer is not None:
                    observer.on_datagram_dropped(src, dst)
                return
            for k in range(extra):
                schedule_at(arrival + (k + 1) * delay, self._deliver,
                            dst, src, _independent_copy(payload))
        schedule_at(arrival, self._deliver, dst, src, payload)
        if config.duplicate_prob and rng_random() < config.duplicate_prob:
            schedule_at(arrival + delay, self._deliver, dst, src,
                        _independent_copy(payload))

    def gossip_cast(self, src, size_bytes, payload):
        """IP-multicast announcement reaching every connected process."""
        src_port = self._ports.get(src)
        if src_port is None or src_port.crashed:
            return
        sent_at = src_port.nic.transmit(size_bytes)
        if self.observer is not None:
            self.observer.on_gossip_sent(src, size_bytes)
        # iterate the port table directly instead of materializing a list
        # per cast: deliveries are deferred through schedule_at, so nothing
        # in this loop can attach/detach a port mid-iteration.  The
        # connectivity check stays BEFORE the drop draw -- disconnected
        # receivers consume no RNG draw, and moving the check would shift
        # every later draw in the run (see the class docstring)
        config = self.config
        rng_random = self.sim.rng.random
        group = src_port.group
        for node_id, port in self._ports.items():
            if node_id == src or port.crashed or port.gossip_deliver is None:
                continue
            # shard scoping sits with the other pre-draw filters: a
            # cross-group receiver consumes no RNG draw (exactly like a
            # disconnected one), so an all-None single-group network
            # draws the identical stream it always did
            if port.group != group:
                continue
            if not self.connected(src, node_id):
                continue
            if config.drop_prob and rng_random() < config.drop_prob:
                continue
            delay = self.topology.latency(src, node_id)
            if config.jitter:
                delay += rng_random() * config.jitter
            self.sim.schedule_at(sent_at + delay, self._deliver_gossip,
                                 node_id, src, payload)

    # ------------------------------------------------------------------
    def _deliver(self, dst, src, payload):
        port = self._ports.get(dst)
        if port is None or port.crashed:
            self.datagrams_dropped += 1
            return
        self.datagrams_delivered += 1
        if self.observer is not None:
            self.observer.on_datagram_delivered(dst, src, payload)
        port.deliver(src, payload)

    def _deliver_gossip(self, dst, src, payload):
        port = self._ports.get(dst)
        if port is None or port.crashed or port.gossip_deliver is None:
            return
        if self.observer is not None:
            self.observer.on_gossip_delivered(dst, src)
        port.gossip_deliver(src, payload)
