"""Measurement probes used by the benchmark harness.

All times are simulated seconds; all probes are pure accumulators with no
effect on the execution they observe.
"""

from __future__ import annotations

import math


def mean(samples):
    if not samples:
        return float("nan")
    return sum(samples) / len(samples)


def percentile(samples, q):
    """Nearest-rank percentile; ``q`` in [0, 100]."""
    if not samples:
        return float("nan")
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, int(math.ceil(q / 100.0 * len(ordered))) - 1))
    return ordered[rank]


def stddev(samples):
    if len(samples) < 2:
        return 0.0
    mu = mean(samples)
    return math.sqrt(sum((s - mu) ** 2 for s in samples) / (len(samples) - 1))


class ThroughputProbe:
    """Counts completed operations between :meth:`start` and :meth:`stop`."""

    def __init__(self, sim):
        self.sim = sim
        self.count = 0
        self._start = None
        self._stop = None

    def start(self):
        self._start = self.sim.now
        self.count = 0

    def record(self, n=1):
        if self._start is not None and self._stop is None:
            self.count += n

    def stop(self):
        self._stop = self.sim.now

    @property
    def elapsed(self):
        if self._start is None:
            return 0.0
        end = self._stop if self._stop is not None else self.sim.now
        return end - self._start

    @property
    def rate(self):
        """Operations per simulated second."""
        elapsed = self.elapsed
        if elapsed <= 0:
            return float("nan")
        return self.count / elapsed


class LatencyProbe:
    """Accumulates per-operation latency samples."""

    def __init__(self):
        self.samples = []
        self._open = {}

    def begin(self, key, now):
        self._open[key] = now

    def end(self, key, now):
        start = self._open.pop(key, None)
        if start is not None:
            self.samples.append(now - start)

    def add(self, value):
        self.samples.append(value)

    @property
    def mean(self):
        return mean(self.samples)

    @property
    def p99(self):
        return percentile(self.samples, 99)

    @property
    def maximum(self):
        return max(self.samples) if self.samples else float("nan")
