"""Measurement probes -- deprecated shims over :mod:`repro.obs.metrics`.

The probes predate the observability plane; they are kept as thin
wrappers so existing harness code and scripts keep working, but new code
should use :class:`repro.obs.MetricsRegistry` (``group.metrics``) or the
instruments in :mod:`repro.obs.metrics` directly.

All times are simulated seconds; all probes are pure accumulators with no
effect on the execution they observe.
"""

from __future__ import annotations

from repro.obs.metrics import Counter, Histogram, mean, percentile, stddev

__all__ = ["LatencyProbe", "ThroughputProbe", "mean", "percentile", "stddev"]


class ThroughputProbe:
    """Counts completed operations between :meth:`start` and :meth:`stop`.

    Deprecated: a :class:`repro.obs.metrics.Counter` plus two timestamps.
    """

    def __init__(self, sim):
        self.sim = sim
        self._counter = Counter()
        self._start = None
        self._stop = None

    @property
    def count(self):
        return self._counter.value

    @count.setter
    def count(self, value):
        self._counter.value = value

    def start(self):
        self._start = self.sim.now
        self._counter.value = 0

    def record(self, n=1):
        if self._start is not None and self._stop is None:
            self._counter.inc(n)

    def stop(self):
        self._stop = self.sim.now

    @property
    def elapsed(self):
        if self._start is None:
            return 0.0
        end = self._stop if self._stop is not None else self.sim.now
        return end - self._start

    @property
    def rate(self):
        """Operations per simulated second."""
        elapsed = self.elapsed
        if elapsed <= 0:
            return float("nan")
        return self._counter.value / elapsed


class LatencyProbe(Histogram):
    """Accumulates per-operation latency samples.

    Deprecated: a :class:`repro.obs.metrics.Histogram` with a begin/end
    pairing convenience.
    """

    __slots__ = ("_open",)

    def __init__(self):
        super().__init__()
        self._open = {}

    def begin(self, key, now):
        self._open[key] = now

    def end(self, key, now):
        start = self._open.pop(key, None)
        if start is not None:
            self.samples.append(now - start)

    def add(self, value):
        self.samples.append(value)
