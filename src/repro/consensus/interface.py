"""Interfaces shared by the agreement protocols.

The layered architecture lets any Byzantine consensus / uniform broadcast
protocol slot into the membership and ordering layers (paper section 1.2,
"Novel Protocols for View Management").  Hosts interact with protocol
instances only through this narrow surface:

* the host delivers protocol messages via ``on_message(sender, payload)``;
* the instance sends by calling the ``broadcast(payload)`` callback it was
  constructed with (intra-view reliable FIFO delivery is assumed, provided
  by the layers underneath -- paper section 3.3);
* the instance consults the fuzzy mute detector via ``is_suspected(member)``
  and must be poked with ``notify_suspicion_change()`` when verdicts move;
* completion is reported through the ``on_decide`` callback.
"""

from __future__ import annotations


def max_f_consensus(n):
    """Largest f with n > 6f -- the vector consensus resilience bound."""
    return max(0, (n - 1) // 6)


def max_f_uniform(n):
    """Largest f for which the 2-step uniform broadcast is *live*.

    The paper states f < n/5, but its own Lemma 3.9 needs
    n - f >= n/2 + 2f + 1 for every core process to reach the delivery
    threshold (DESIGN.md section 6, deviation 1).  We return the safe bound.
    """
    f = 0
    while n - (f + 1) >= n / 2.0 + 2 * (f + 1) + 1:
        f += 1
    return f


def max_f_bracha(n):
    """Largest f with n > 3f -- Bracha's optimal resilience."""
    return max(0, (n - 1) // 3)


class AgreementInstance:
    """Base class: a single run of an agreement protocol inside a view."""

    def __init__(self, instance_id, members, me, f, broadcast,
                 is_suspected=None, on_decide=None, on_misbehavior=None):
        if me not in members:
            raise ValueError("process %r not in members %r" % (me, members))
        self.instance_id = instance_id
        self.members = list(members)
        self.me = me
        self.n = len(members)
        self.f = f
        self.broadcast = broadcast
        self.is_suspected = is_suspected or (lambda member: False)
        self.on_decide = on_decide or (lambda value: None)
        self.on_misbehavior = on_misbehavior or (lambda member, reason: None)
        self.decided = False
        self.decision = None

    def on_message(self, sender, payload):
        raise NotImplementedError

    def notify_suspicion_change(self):
        """Re-evaluate wait conditions after the failure detector moved."""

    def _decide(self, value):
        if self.decided:
            return
        self.decided = True
        self.decision = value
        self.on_decide(value)
