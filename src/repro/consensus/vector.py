"""Vector Byzantine consensus -- Algorithm 1 of the paper (n > 6f).

An event-driven implementation of the ◇P-mute-based protocol of Friedman,
Mostefaoui and Raynal, extended to *vectors*: the protocol is logically run
once per vector entry, in parallel, so agreement is reached independently
element-wise.  This is what lets the membership layer decide on the full
suspicion vector without one contested entry invalidating the agreed ones
(paper section 3.4.1), and -- with a 1-entry vector over message batches --
what implements total ordering (paper section 3.5).

Protocol messages (``payload`` tuples, carried over intra-view reliable
FIFO channels by the hosting layer):

* ``("val", r, est)``   -- round-r estimate broadcast (step 1);
* ``("coord", r, vec)`` -- the round-r coordinator's dominating vector;
* ``("dec", vec)``      -- a decided process's final value; satisfies both
  the ``val`` and the ``coord`` waits of every later round, as in the
  listing's lines 6 and 27.

Round r's coordinator is ``members[(hash(n, vid) + r) mod n]`` -- rotated
every round so a mute coordinator delays at most one round, and seeded from
the view id so all members compute the same schedule locally.

In favourable runs (all core processes propose the same vector and nobody
is falsely suspected) the protocol decides in the first round -- the
property the paper's total-ordering throughput relies on.
"""

from __future__ import annotations

from collections import Counter

from repro.consensus.interface import AgreementInstance

BOTTOM = None  # the ⊥ placeholder of the listing


def _stable_hash(n, seed):
    """Deterministic replacement for the listing's ``hash(n, view_id)``.

    Python's ``hash`` is randomized per interpreter; all members must agree
    on the coordinator schedule, so we use a tiny deterministic mix.
    """
    acc = 2166136261
    for token in (n, seed):
        for byte in repr(token).encode("utf-8"):
            acc = ((acc ^ byte) * 16777619) & 0xFFFFFFFF
    return acc


class VectorConsensus(AgreementInstance):
    """One consensus instance deciding a vector of values.

    Parameters
    ----------
    proposal:
        This process's input vector (any sequence of hashable values).
    coordinator_seed:
        Typically the view id; fixes the rotation schedule.
    on_round:
        Optional ``callback(round, awaited_members)`` fired when a round's
        step-1 wait begins -- the hosting layer uses it to register fuzzy
        mute expectations against members it has not heard from.
    """

    def __init__(self, instance_id, members, me, f, proposal, broadcast,
                 is_suspected=None, on_decide=None, on_misbehavior=None,
                 coordinator_seed=0, on_round=None, max_rounds=1000,
                 dec_adoption_quorum=None):
        super().__init__(instance_id, members, me, f, broadcast,
                         is_suspected, on_decide, on_misbehavior)
        if self.n <= 6 * f:
            raise ValueError(
                "vector consensus needs n > 6f (n=%d, f=%d)" % (self.n, f)
            )
        self.est = list(proposal)
        self.width = len(self.est)
        self.on_round = on_round or (lambda rnd, awaited: None)
        self.max_rounds = max_rounds
        self.round = 0
        self.phase = None  # "val" (step 1 wait) or "coord" (step 2 wait)
        self._c0 = _stable_hash(self.n, coordinator_seed) % self.n
        self._val_msgs = {}    # round -> {sender: tuple(est)}
        self._coord_msgs = {}  # round -> vector from that round's coordinator
        self._dec_msgs = {}    # sender -> vector
        self._view = {}        # the matrix V_i, as {sender: vector}, per round
        self._dominating = None
        self._need_coord = None
        self._in_progress = False
        self._progress_again = False
        self._frozen = False
        self.rounds_executed = 0
        #: when set, adopt a decision after this many matching dec messages
        #: (used by the view-change flush when the round quorums are no
        #: longer reachable; see OrderingLayer.flush)
        self.dec_adoption_quorum = dec_adoption_quorum

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def start(self):
        """Enter round 1 and broadcast the initial estimate."""
        if self.round != 0:
            raise RuntimeError("consensus instance already started")
        self._enter_round(1)

    def coordinator_of(self, rnd):
        return self.members[(self._c0 + rnd) % self.n]

    def on_message(self, sender, payload):
        if sender not in self.members:
            return
        kind = payload[0]
        if kind == "val":
            self._on_val(sender, payload[1], payload[2])
        elif kind == "coord":
            self._on_coord(sender, payload[1], payload[2])
        elif kind == "dec":
            self._on_dec(sender, payload[1])
        else:
            self.on_misbehavior(sender, "consensus:unknown-kind")
        self._progress()

    def notify_suspicion_change(self):
        if self.round:
            self._progress()

    def freeze_rounds(self):
        """Stop all round progression; only dec adoption can decide.

        Used during the view-change flush when the round quorums are no
        longer reachable: the instance must not race to a late quorum
        decision after its owner reported it undecided in SYNC.
        """
        self._frozen = True

    # ------------------------------------------------------------------
    # message intake
    # ------------------------------------------------------------------
    def _checked_vector(self, sender, vec, tag):
        if not isinstance(vec, (list, tuple)) or len(vec) != self.width:
            self.on_misbehavior(sender, "consensus:bad-%s-shape" % tag)
            return None
        vec = tuple(vec)
        try:
            hash(vec)
        except TypeError:
            # a Byzantine sender cannot crash us with unhashable entries
            self.on_misbehavior(sender, "consensus:bad-%s-entries" % tag)
            return None
        return vec

    def _on_val(self, sender, rnd, est):
        vec = self._checked_vector(sender, est, "val")
        if vec is None:
            return
        per_round = self._val_msgs.setdefault(rnd, {})
        if sender in per_round:
            if per_round[sender] != vec:
                self.on_misbehavior(sender, "consensus:equivocated-val")
            return
        per_round[sender] = vec

    def _on_coord(self, sender, rnd, vec):
        checked = self._checked_vector(sender, vec, "coord")
        if checked is None:
            return
        if sender != self.coordinator_of(rnd):
            # a correct process never sends coord for a round it does not
            # coordinate -- a verbose failure by definition
            self.on_misbehavior(sender, "consensus:coord-usurper")
            return
        self._coord_msgs.setdefault(rnd, checked)

    def _on_dec(self, sender, vec):
        checked = self._checked_vector(sender, vec, "dec")
        if checked is None:
            return
        if sender in self._dec_msgs:
            if self._dec_msgs[sender] != checked:
                self.on_misbehavior(sender, "consensus:equivocated-dec")
            return
        self._dec_msgs[sender] = checked
        if self.dec_adoption_quorum is not None and not self.decided:
            matching = sum(1 for v in self._dec_msgs.values() if v == checked)
            if matching >= self.dec_adoption_quorum:
                self._decide(checked)

    # ------------------------------------------------------------------
    # round machinery
    # ------------------------------------------------------------------
    def _enter_round(self, rnd):
        if rnd > self.max_rounds:
            raise RuntimeError(
                "consensus %r exceeded %d rounds" % (self.instance_id, self.max_rounds)
            )
        self.round = rnd
        self.rounds_executed += 1
        self.phase = "val"
        self._dominating = None
        self._need_coord = None
        est = tuple(self.est)
        self._val_msgs.setdefault(rnd, {})[self.me] = est
        self.broadcast(("val", rnd, est))
        self.on_round(rnd, self._awaited_members())
        self._progress()

    def _awaited_members(self):
        heard = self._heard_from(self.round)
        return [m for m in self.members if m not in heard]

    def _heard_from(self, rnd):
        """Members whose round-``rnd`` estimate is available (val or dec)."""
        heard = dict(self._val_msgs.get(rnd, {}))
        for sender, vec in self._dec_msgs.items():
            heard.setdefault(sender, vec)
        return heard

    def _progress(self):
        # guard against re-entrancy: broadcast() in a step may synchronously
        # loop a message back into on_message -> _progress
        if self._in_progress:
            self._progress_again = True
            return
        if self._frozen:
            return
        self._in_progress = True
        try:
            again = True
            while again and not self.decided and self.round:
                self._progress_again = False
                if self.phase == "val":
                    self._try_finish_step1()
                elif self.phase == "coord":
                    self._try_finish_step2()
                again = self._progress_again
        finally:
            self._in_progress = False

    def _try_finish_step1(self):
        heard = self._heard_from(self.round)
        if len(heard) < self.n - self.f:
            return
        for member in self.members:
            if member not in heard and not self.is_suspected(member):
                return
        # the wait of line 6 is satisfied: freeze the matrix V_i
        self._view = heard
        self._step2()

    def _column(self, k):
        return [vec[k] for vec in self._view.values()]

    def _step2(self):
        n, f = self.n, self.f
        bottoms = n - len(self._view)
        dominating = list(self.est)
        columns = [self._column(k) for k in range(self.width)]
        for k in range(self.width):
            counts = Counter(columns[k])
            value, count = counts.most_common(1)[0]
            if count > n / 2.0:
                dominating[k] = value
        self._dominating = dominating
        if self.me == self.coordinator_of(self.round):
            vec = tuple(dominating)
            self._coord_msgs.setdefault(self.round, vec)
            self.broadcast(("coord", self.round, vec))
        need_coord = [False] * self.width
        for k in range(self.width):
            support = columns[k].count(dominating[k])
            if support >= n - 2 * f - bottoms:
                self.est[k] = dominating[k]
            else:
                need_coord[k] = True
        self._need_coord = need_coord
        if any(need_coord):
            self.phase = "coord"
            self._progress_again = True
            return
        for k in range(self.width):
            if columns[k].count(dominating[k]) < n - f:
                self._next_round()
                return
        self._broadcast_decision()

    def _try_finish_step2(self):
        coord = self.coordinator_of(self.round)
        coord_vec = self._coord_msgs.get(self.round)
        if coord_vec is None:
            coord_vec = self._dec_msgs.get(coord)
        if coord_vec is None:
            if not self.is_suspected(coord):
                return
            coord_vec = tuple(self._dominating)
        for k in range(self.width):
            if self._need_coord[k]:
                self.est[k] = coord_vec[k]
        self._next_round()

    def _next_round(self):
        self._enter_round(self.round + 1)

    def _broadcast_decision(self):
        decision = tuple(self.est)
        self._dec_msgs[self.me] = decision
        self.broadcast(("dec", decision))
        self._decide(decision)
