"""Randomized binary Byzantine consensus (Ben-Or [7] / Toueg [53] family).

The paper's layered architecture "allows us to utilize any known Byzantine
consensus protocol" (section 3.4.1) and its related work opens with the
randomized protocols of Ben-Or and Rabin.  This module provides that
alternative: a coin-flipping binary consensus that needs **no failure
detector at all** -- termination comes from randomization instead of
◇P-mute, trading expected round count for freedom from timing assumptions.

Per round r (two phases, all messages broadcast):

* **report**: send ``(R, r, est)``; wait for n - f reports;
  if more than (n + f) / 2 carry the same value v, *propose* v,
  otherwise propose ⊥;
* **propose**: send ``(P, r, w)``; wait for n - f proposals;
  - some value v != ⊥ appears  >= 3f + 1 times  -> **decide** v,
  - some value v != ⊥ appears  >= f + 1 times   -> adopt est = v,
  - otherwise                                    -> est = local coin flip.

With n > 5f a decided value is adopted by every correct process in the
same round (3f + 1 occurrences imply >= 2f + 1 correct proposers, so
every correct process sees >= f + 1), after which validity locks it in;
agreement follows.  Expected termination is O(2^n) rounds in the
adversarial worst case but a handful of rounds in practice -- the classic
trade the paper contrasts with its detector-based protocol.
"""

from __future__ import annotations

from collections import Counter

from repro.consensus.interface import AgreementInstance

BOTTOM = "_bot_"


def max_f_benor(n):
    """Largest f with n > 5f."""
    return max(0, (n - 1) // 5)


class BenOrConsensus(AgreementInstance):
    """One binary consensus instance; values are 0 or 1.

    ``coin`` is a callable returning 0 or 1 -- pass the simulator's seeded
    RNG for reproducible runs (local coins, as in Ben-Or's original).
    """

    def __init__(self, instance_id, members, me, f, proposal, broadcast,
                 coin, on_decide=None, on_misbehavior=None, max_rounds=500):
        super().__init__(instance_id, members, me, f, broadcast,
                         is_suspected=None, on_decide=on_decide,
                         on_misbehavior=on_misbehavior)
        if self.n <= 5 * f:
            raise ValueError(
                "Ben-Or consensus needs n > 5f (n=%d, f=%d)" % (self.n, f))
        if proposal not in (0, 1):
            raise ValueError("binary consensus: proposal must be 0 or 1")
        self.est = proposal
        self.coin = coin
        self.max_rounds = max_rounds
        self.round = 0
        self.phase = None          # "report" | "propose"
        self._reports = {}         # round -> {sender: value}
        self._proposals = {}       # round -> {sender: value}
        self.rounds_executed = 0
        self._in_progress = False
        self._again = False

    # ------------------------------------------------------------------
    def start(self):
        if self.round != 0:
            raise RuntimeError("instance already started")
        self._enter_round(1)

    def on_message(self, sender, payload):
        if sender not in self.members:
            return
        if (not isinstance(payload, tuple) or len(payload) != 3
                or payload[0] not in ("R", "P")):
            self.on_misbehavior(sender, "benor:malformed")
            return
        kind, rnd, value = payload
        if not isinstance(rnd, int) or value not in (0, 1, BOTTOM):
            self.on_misbehavior(sender, "benor:bad-fields")
            return
        if kind == "R" and value == BOTTOM:
            self.on_misbehavior(sender, "benor:bottom-report")
            return
        table = (self._reports if kind == "R" else self._proposals)
        per_round = table.setdefault(rnd, {})
        if sender in per_round:
            if per_round[sender] != value:
                self.on_misbehavior(sender, "benor:equivocated")
            return
        per_round[sender] = value
        self._progress()

    # ------------------------------------------------------------------
    def _enter_round(self, rnd):
        if rnd > self.max_rounds:
            raise RuntimeError("Ben-Or exceeded %d rounds" % self.max_rounds)
        self.round = rnd
        self.rounds_executed += 1
        self.phase = "report"
        self._reports.setdefault(rnd, {})[self.me] = self.est
        self.broadcast(("R", rnd, self.est))
        self._progress()

    def _progress(self):
        if self._in_progress:
            self._again = True
            return
        self._in_progress = True
        try:
            again = True
            while again and not self.decided and self.round:
                self._again = False
                if self.phase == "report":
                    self._try_finish_report()
                else:
                    self._try_finish_propose()
                again = self._again
        finally:
            self._in_progress = False

    def _try_finish_report(self):
        reports = self._reports.get(self.round, {})
        if len(reports) < self.n - self.f:
            return
        counts = Counter(reports.values())
        value, count = counts.most_common(1)[0]
        proposal = value if count > (self.n + self.f) / 2.0 else BOTTOM
        self.phase = "propose"
        self._proposals.setdefault(self.round, {})[self.me] = proposal
        self.broadcast(("P", self.round, proposal))
        self._again = True

    def _try_finish_propose(self):
        proposals = self._proposals.get(self.round, {})
        if len(proposals) < self.n - self.f:
            return
        counts = Counter(v for v in proposals.values() if v != BOTTOM)
        if counts:
            value, count = counts.most_common(1)[0]
            if count >= 3 * self.f + 1:
                self.est = value
                self._decide(value)
                # help stragglers: one more report round's worth of votes
                self.broadcast(("R", self.round + 1, value))
                self.broadcast(("P", self.round + 1, value))
                return
            if count >= self.f + 1:
                self.est = value
                self._enter_round(self.round + 1)
                return
        self.est = self.coin()
        self._enter_round(self.round + 1)
