"""Optimistic 2-step fast path for totally-ordered delivery.

The vector consensus of Algorithm 1 pays the full val -> coord -> dec
message pattern on every ordering instance, even when nothing Byzantine is
happening -- which is almost always.  Following the common-case doctrine
(Goren & Moses, "Byzantine Consensus in the Common Case"; ROADMAP item 3),
this module pays the Byzantine price only when Byzantine behaviour occurs:

* the instance's rotating coordinator broadcasts its deterministic batch
  proposal (``fprop``);
* every member validates the proposal against its own cast buffer and
  echoes a digest of it (``fecho``) -- Tendermint-style prevote;
* ``n - f`` matching echoes decide the instance in 2 message steps.

Any conflicting echo, invalid or equivocated proposal, coordinator mute
timeout, or fuzzy-detector suspicion aborts the fast instance and
re-proposes through the **unmodified** :class:`VectorConsensus`, seeding
the estimate with the echoed proposal (the "echo certificate") when one
was validated locally.

Safety reduces to the existing vector-consensus proof (n > 6f):

* *fast/fast intersection*: two quorums of ``n - f`` echoes share at least
  ``n - 2f > f`` members, i.e. at least one correct member, and a correct
  member echoes a single digest per instance -- so two fast decisions
  cannot conflict.
* *fast/fallback intersection*: a fast decision on ``v`` means at least
  ``n - 2f`` *correct* members echoed ``v``; each of them enters any later
  fallback proposing ``v`` (the echo certificate).  In every heard-set of
  the fallback's first step, ``v``'s support is at least
  ``n - 2f - (#bottoms)`` -- exactly the vector consensus adoption bound --
  and ``n - 3f > n/2`` under ``n > 6f``, so ``v`` dominates every
  correct coordinator vector and the fallback converges to ``v``.

Liveness in the common case is immediate (reliable FIFO broadcast gets
every correct member to the echo quorum); under faults the host's deadline
timer and the fuzzy detectors force the fallback, which is live by the
paper's own argument.
"""

from __future__ import annotations

import hashlib

from repro.consensus.interface import AgreementInstance
from repro.consensus.vector import VectorConsensus, _stable_hash


def proposal_digest(vector):
    """Deterministic digest of a proposal vector (what members echo)."""
    return hashlib.sha256(repr(vector).encode("utf-8")).hexdigest()


def fast_coordinator(members, coordinator_seed):
    """The member that proposes in fast round 0 for this seed.

    Shared with the hosting layer so the *next* instance's coordinator can
    start eagerly (propose the moment a cast lands) without constructing
    the instance first.  Deliberately offset from the fallback's round-1
    rotation: if the fast coordinator is the reason we fell back, a
    different member leads the recovery round.
    """
    return members[_stable_hash(len(members), coordinator_seed)
                   % len(members)]


class FastPathConsensus(AgreementInstance):
    """One ordering instance: optimistic 2-step decide, consensus fallback.

    The instance starts in *fast* mode (unless ``start(fast=False)``):
    the coordinator -- chosen by the same seeded rotation as the vector
    consensus, so both paths agree on round-0 leadership -- broadcasts
    ``("fprop", vector)`` and every member answers ``("fecho", digest)``
    after validating the vector through the host-supplied ``validate``
    callback.  ``validate`` may return ``True`` (echo), ``False``
    (provably bad -> fall back) or ``"wait"`` (entries not yet seen; the
    host calls :meth:`revalidate` as casts arrive).

    Fallback creates an internal :class:`VectorConsensus` over the *same*
    instance id and broadcast channel; its ``val``/``coord``/``dec``
    payload kinds are disjoint from ``fprop``/``fecho``, so both
    protocols share the wire without ambiguity.  ``dec`` messages
    received while still fast are buffered and replayed into the
    fallback (or adopted directly once the host sets
    ``dec_adoption_quorum`` during an undecidable flush).
    """

    def __init__(self, instance_id, members, me, f, proposal, broadcast,
                 is_suspected=None, on_decide=None, on_misbehavior=None,
                 coordinator_seed=0, on_round=None, max_rounds=1000,
                 dec_adoption_quorum=None, validate=None, on_fallback=None):
        super().__init__(instance_id, members, me, f, broadcast,
                         is_suspected, on_decide, on_misbehavior)
        if self.n <= 6 * f:
            raise ValueError(
                "fast path needs n > 6f for quorum intersection "
                "(n=%d, f=%d)" % (self.n, f))
        self.proposal = tuple(proposal)
        self.width = len(self.proposal)
        self.quorum = self.n - f
        self.coordinator_seed = coordinator_seed
        self.coordinator = fast_coordinator(self.members, coordinator_seed)
        self.on_round = on_round or (lambda rnd, awaited: None)
        self.max_rounds = max_rounds
        self.validate = validate or (lambda vector: True)
        self.on_fallback = on_fallback or (lambda reason: None)
        self.mode = "idle"            # idle -> fast -> decided | fallback
        self.fast_decided = False
        self.fallback_reason = None
        self._prop = None             # coordinator's vector, shape-checked
        self._prop_digest = None
        self._echoed = None           # digest we committed to (our echo)
        self._echoes = {}             # sender -> digest
        self._digests = set()         # distinct digests seen (conflict det.)
        self._dec_msgs = {}           # sender -> vector, pre-fallback intake
        self._frozen = False
        self._vc = None               # the fallback VectorConsensus
        self._dec_adoption_quorum = dec_adoption_quorum

    # -- lifecycle -------------------------------------------------------

    def start(self, fast=True):
        if self.mode != "idle":
            raise RuntimeError("instance %r already started" %
                               (self.instance_id,))
        if not fast or self.is_suspected(self.coordinator):
            # arbitration said no (flush in progress, live suspicion, knob
            # half-off): run the classic protocol from the start.  This is
            # not an abort, so on_fallback is not invoked.
            self.mode = "fallback"
            self.fallback_reason = "arbitration"
            self._make_fallback()
            return
        self.mode = "fast"
        # round 0 of the fast path awaits only the coordinator; the host
        # registers the mute expectation exactly like a consensus round.
        self.on_round(0, [self.coordinator])
        if self.me == self.coordinator:
            self._prop = self.proposal
            self._prop_digest = proposal_digest(self.proposal)
            self._echoed = self._prop_digest
            # the proposal doubles as the coordinator's echo: members count
            # it toward the quorum on receipt, saving one broadcast.
            self._note_echo(self.me, self._prop_digest)
            self.broadcast(("fprop", self.proposal))
            self._check_quorum()

    # -- message plane ---------------------------------------------------

    def on_message(self, sender, payload):
        if self.decided or sender not in self.members:
            return
        if not isinstance(payload, tuple) or not payload:
            self.on_misbehavior(sender, "fastpath:malformed")
            return
        kind = payload[0]
        if kind == "fprop":
            if len(payload) != 2:
                self.on_misbehavior(sender, "fastpath:malformed")
            elif self.mode == "fast":
                self._on_fprop(sender, payload[1])
            return
        if kind == "fecho":
            if len(payload) != 2:
                self.on_misbehavior(sender, "fastpath:malformed")
            else:
                self._on_fecho(sender, payload[1])
            return
        if kind == "dec" and len(payload) == 2 and self._vc is None:
            self._on_dec(sender, payload[1])
            return
        if kind in ("val", "coord", "dec"):
            if kind != "dec" and len(payload) != 3:
                self.on_misbehavior(sender, "fastpath:malformed")
                return
            # a peer is running the fallback: join it.
            if self._vc is None:
                if self._frozen:
                    return        # frozen instances may only adopt decs
                self._fallback("peer-" + kind)
                if self._vc is None:    # decided during the switch
                    return
            self._vc.on_message(sender, payload)
            return
        self.on_misbehavior(sender, "consensus:unknown-kind")

    def _on_fprop(self, sender, vector):
        if sender != self.coordinator:
            self.on_misbehavior(sender, "fastpath:prop-usurper")
            return
        checked = self._checked_vector(sender, vector)
        if checked is None:
            self._fallback("bad-proposal")
            return
        if self._prop is not None:
            if checked != self._prop:
                self.on_misbehavior(sender, "fastpath:equivocated-prop")
                self._fallback("prop-conflict")
            return
        self._prop = checked
        self._prop_digest = proposal_digest(checked)
        self._note_echo(sender, self._prop_digest)
        if self.mode == "fast":
            self._maybe_echo()
            self._check_quorum()

    def revalidate(self):
        """Host hook: new casts arrived, a held proposal may now validate."""
        if self.mode == "fast" and not self.decided:
            self._maybe_echo()
            self._check_quorum()

    def _maybe_echo(self):
        if self._echoed is not None or self._prop is None or self._frozen:
            return
        verdict = self.validate(self._prop)
        if verdict == "wait":
            return
        if verdict is not True:
            # provably bad content (conflicts with a signed cast we hold,
            # malformed batch, replayed delivery): the coordinator -- or
            # the batch's origin -- is faulty.  Resolve through consensus.
            self._fallback("invalid-proposal")
            return
        self._echoed = self._prop_digest
        self._note_echo(self.me, self._prop_digest)
        self.broadcast(("fecho", self._prop_digest))

    def _on_fecho(self, sender, digest):
        if self.mode != "fast":
            return                    # late echoes after fallback/decide
        if not isinstance(digest, str):
            self.on_misbehavior(sender, "fastpath:malformed")
            return
        self._note_echo(sender, digest)
        self._check_quorum()

    def _note_echo(self, sender, digest):
        prev = self._echoes.get(sender)
        if prev is not None:
            if prev != digest:
                self.on_misbehavior(sender, "fastpath:equivocated-echo")
                self._fallback("echo-conflict")
            return
        self._echoes[sender] = digest
        self._digests.add(digest)
        if len(self._digests) > 1:
            # two distinct digests cannot both reach n - f echoes, and at
            # least one signer is lying about the proposal: abort.
            self._fallback("echo-conflict")

    def _check_quorum(self):
        if (self.decided or self.mode != "fast" or self._frozen
                or self._prop is None):
            return
        matching = sum(1 for d in self._echoes.values()
                       if d == self._prop_digest)
        if matching >= self.quorum:
            self.fast_decided = True
            self._decide(self._prop)

    def _on_dec(self, sender, vector):
        checked = self._checked_vector(sender, vector)
        if checked is None:
            return
        prev = self._dec_msgs.get(sender)
        if prev is not None:
            if prev != checked:
                self.on_misbehavior(sender, "consensus:equivocated-dec")
            return
        self._dec_msgs[sender] = checked
        quorum = self._dec_adoption_quorum
        if quorum is not None:
            matching = sum(1 for v in self._dec_msgs.values()
                           if v == checked)
            if matching >= quorum:
                self._decide(checked)
                return
        if not self._frozen:
            # somebody finished through the fallback: join and let the
            # replayed decs count toward its heard-set.
            self._fallback("peer-dec")

    # -- fallback --------------------------------------------------------

    def _fallback(self, reason):
        if self.decided or self.mode == "fallback" or self._frozen:
            return
        self.mode = "fallback"
        self.fallback_reason = reason
        self.on_fallback(reason)
        self._make_fallback()

    def _make_fallback(self):
        self._vc = VectorConsensus(
            self.instance_id, list(self.members), self.me, self.f,
            self._certificate_estimate(), self.broadcast,
            is_suspected=self.is_suspected,
            on_decide=self._decide,
            on_misbehavior=self.on_misbehavior,
            coordinator_seed=self.coordinator_seed,
            on_round=self.on_round,
            max_rounds=self.max_rounds,
            dec_adoption_quorum=self._dec_adoption_quorum)
        pending = sorted(self._dec_msgs.items(), key=lambda kv: repr(kv[0]))
        self._vc.start()
        for sender, vec in pending:
            if self.decided:
                break
            self._vc.on_message(sender, ("dec", vec))

    def _certificate_estimate(self):
        """The estimate the fallback re-proposes (the echo certificate).

        If we echoed the coordinator's vector we are bound by that echo --
        a fast quorum may already have decided it elsewhere, and the
        n - 2f correct echoers re-proposing it is exactly what makes the
        fallback converge to the same value.  Short of our own echo,
        f + 1 matching echoes prove a correct member vouched for the
        vector, so adopting it can only help convergence.
        """
        if self._prop is not None and self._prop_digest is not None:
            if self._echoed == self._prop_digest:
                return self._prop
            support = sum(1 for d in self._echoes.values()
                          if d == self._prop_digest)
            if support > self.f:
                return self._prop
        return self.proposal

    # -- host integration ------------------------------------------------

    def timeout(self):
        """Host deadline expired without a fast decision: fall back."""
        if self.mode == "fast":
            self._fallback("timeout")

    def abort(self, reason):
        """Host-forced abort (e.g. a view change started mid-instance)."""
        if self.mode == "fast":
            self._fallback(reason)

    def notify_suspicion_change(self):
        if self.decided:
            return
        if self._vc is not None:
            self._vc.notify_suspicion_change()
        elif (self.mode == "fast" and not self._frozen
                and self.is_suspected(self.coordinator)):
            self._fallback("suspicion")

    def freeze_rounds(self):
        """Flush support: stop all progress except dec adoption."""
        self._frozen = True
        if self._vc is not None:
            self._vc.freeze_rounds()

    @property
    def dec_adoption_quorum(self):
        return self._dec_adoption_quorum

    @dec_adoption_quorum.setter
    def dec_adoption_quorum(self, value):
        self._dec_adoption_quorum = value
        if self._vc is not None:
            self._vc.dec_adoption_quorum = value

    def covered_ids(self):
        """Message ids this instance will order if it stays on track.

        Used by a pipelining host to propose only *uncovered* casts to the
        next concurrent instance.  Best-effort: the fallback may decide
        something else entirely, but overlap is safe (the host dedups at
        delivery), so coverage only needs to be a good guess.
        """
        vector = self._prop if self._prop is not None else self.proposal
        ids = set()
        batch = vector[0] if vector else ()
        if isinstance(batch, tuple):
            for entry in batch:
                if isinstance(entry, tuple) and len(entry) == 3:
                    ids.add(entry[0])
        return ids

    def state_size(self):
        """Retained-entry count, for the bounded-state checker."""
        size = len(self._echoes) + len(self._dec_msgs) + len(self._digests)
        vc = self._vc
        if vc is not None:
            size += (len(vc._dec_msgs) + len(vc._coord_msgs)
                     + sum(len(v) for v in vc._val_msgs.values()))
        return size

    # -- helpers ---------------------------------------------------------

    def _checked_vector(self, sender, vec):
        if not isinstance(vec, (list, tuple)) or len(vec) != self.width:
            self.on_misbehavior(sender, "fastpath:bad-shape")
            return None
        vec = tuple(vec)
        try:
            hash(vec)
        except TypeError:
            self.on_misbehavior(sender, "fastpath:bad-shape")
            return None
        return vec
