"""Long-horizon soak campaigns: continuous churn, bounded-state checks.

The chaos plane replays short scripted storms; the soak layer runs the
*repeated-operation* regime those scripts never reach -- hundreds of
join/leave/restart/partition/Byzantine cycles back to back, >= 1M
simulated events, deterministic per seed.  After every cycle the faults
are lifted, the recovery to stable views is *timed*, and every live
process's state stores are sampled; the run fails if the Definitions
2.1/2.2 checker, the recovery bound, or the
:class:`~repro.tournament.bounded.BoundedStateChecker` objects.

Two nodes (the "anchors") are never churned or turned Byzantine, so the
safety checker always has correct members whose full history it can
judge -- a soak where every node eventually crashed would vacuously pass.
"""

from __future__ import annotations

import random

from repro.chaos.engine import ChaosEngine
from repro.chaos.plan import RUNTIME_BEHAVIORS, FaultPlan, _runtime_params
from repro.tournament.bounded import BoundedStateChecker

#: seed salt so soak choreography never mirrors the cluster's own RNG
_SOAK_SEED_SALT = 0x50AC5EED

#: report format version emitted by :func:`run_soak`
SOAK_SCHEMA = 1

#: churn cycle shapes the choreographer draws from
_ACTIONS = ("crash_restart", "leave_join", "partition_heal", "link_faults",
            "byzantine_episode")


def run_soak(seed, n=6, target_events=1_000_000, config=None,
             recovery_bound=5.0, checker=None, byzantine=True,
             max_cycles=None, log=None):
    """Churn one cluster until ``target_events`` simulated events passed.

    Returns the soak report dict (see ``docs/ROBUSTNESS.md``); the run
    *failed* iff ``report["verdict"] == "fail"``.  Deterministic per
    ``(seed, n, target_events, config)``.

    Parameters
    ----------
    seed:
        Drives both the cluster build and the churn choreography.
    target_events:
        The run continues until the simulator has processed at least this
        many events (the acceptance floor is one million).
    recovery_bound:
        Max sim-seconds the cluster may take to re-stabilize after each
        cycle's faults clear; exceeded -> bounded-state violation.
    checker:
        A pre-configured :class:`BoundedStateChecker` (one is built with
        defaults when omitted).
    byzantine:
        Include mid-run Byzantine episodes in the churn mix.
    """
    log = log or (lambda line: None)
    rng = random.Random(seed ^ _SOAK_SEED_SALT)
    plan = FaultPlan(seed=seed, n=n, ops=(), config=config)
    engine = ChaosEngine(plan)
    group = engine.build()
    sim = group.sim
    if checker is None:
        checker = BoundedStateChecker(recovery_bound=recovery_bound)
    anchors = (0, 1)
    next_join = 1000
    cycles = 0
    byz_episodes = 0
    recoveries = []
    if max_cycles is None:
        # each cycle advances sim time (heartbeats alone generate events),
        # so this cap only guards against a misconfigured tiny cluster
        max_cycles = max(1000, target_events // 500)

    def live_pool():
        """Churnable nodes: live, correct, not an anchor."""
        return [node for node, p in sorted(group.processes.items(), key=repr)
                if not p.stopped and node not in anchors
                and node not in group.byzantine_nodes
                and node not in engine.left]

    def live_count():
        return sum(1 for p in group.processes.values() if not p.stopped)

    while sim.events_processed < target_events and cycles < max_cycles:
        cycles += 1
        pool = live_pool()
        action = rng.choice(_ACTIONS)
        if action == "byzantine_episode" and not byzantine:
            action = "crash_restart"
        if len(pool) < 2 or live_count() < 4:
            # thin cluster: grow it back before churning again
            engine.apply(["join", next_join])
            next_join += 1
            engine.apply(["run", 1.0])
        elif action == "crash_restart":
            victim = rng.choice(pool)
            engine.apply(["crash", victim])
            engine.apply(["run", round(rng.uniform(0.3, 0.8), 3)])
            engine.apply(["restart", victim])
            engine.apply(["run", 0.5])
        elif action == "leave_join":
            leaver = rng.choice(pool)
            engine.apply(["leave", leaver])
            engine.apply(["run", round(rng.uniform(0.3, 0.8), 3)])
            engine.apply(["join", next_join])
            next_join += 1
            engine.apply(["run", 0.5])
        elif action == "partition_heal":
            members = [node for node, p in sorted(group.processes.items(),
                                                  key=repr) if not p.stopped]
            rng.shuffle(members)
            split = rng.randint(1, len(members) - 1)
            engine.apply(["partition", [members[:split], members[split:]]])
            engine.apply(["run", round(rng.uniform(0.4, 1.0), 3)])
            engine.apply(["heal"])
        elif action == "link_faults":
            engine.apply(["drop", None, None, rng.choice((0.05, 0.1, 0.2))])
            engine.apply(["run", round(rng.uniform(0.4, 1.0), 3)])
            engine.apply(["clear_faults"])
        else:   # byzantine_episode
            villain = rng.choice(pool)
            kind = rng.choice(RUNTIME_BEHAVIORS)
            engine.apply(["byzantine_at", villain, kind,
                          _runtime_params(rng, kind)])
            byz_episodes += 1
            engine.apply(["run", round(rng.uniform(0.3, 0.8), 3)])
            # end the episode: crash the villain out of the membership.
            # Its id stays in byzantine_nodes, keeping its whole history
            # excluded from the correctness checks even after a restart.
            engine.apply(["crash", villain])
            engine.apply(["run", 0.4])
            engine.apply(["restart", villain])

        # steady traffic: one anchor and one random live node broadcast
        engine.apply(["cast", anchors[0], rng.randint(1, 4)])
        pool = live_pool()
        if pool:
            engine.apply(["cast", rng.choice(pool), rng.randint(1, 4)])
        engine.apply(["run", 0.3])
        checker.sample(group, quiescent=False)

        # clear everything and time the recovery to stable views
        recovery = engine.settle_measured(timeout=max(recovery_bound, 1.0),
                                          drain=0.3)
        checker.record_recovery(recovery, at=sim.now)
        recoveries.append(recovery)
        checker.sample(group, quiescent=True)
        if cycles % 50 == 0:
            log("cycle %d: %d events, %.1fs sim, last recovery %s"
                % (cycles, sim.events_processed, sim.now,
                   "stuck" if recovery is None
                   else "%.3fs" % (recovery,)))

    violations = engine.check()
    state_violations = checker.check()
    verdict = "fail" if (violations or state_violations) else "pass"
    measured = [r for r in recoveries if r is not None]
    report = {
        "schema": SOAK_SCHEMA, "kind": "soak",
        "seed": seed, "n": n, "plan_hash": plan.digest(),
        "target_events": target_events,
        "events_processed": sim.events_processed,
        "sim_time": round(sim.now, 3),
        "cycles": cycles, "byzantine_episodes": byz_episodes,
        "verdict": verdict,
        "violations": violations,
        "state_violations": state_violations,
        "recovery": {
            "bound": recovery_bound,
            "measured": len(measured),
            "stuck": len(recoveries) - len(measured),
            "max": round(max(measured), 4) if measured else None,
            "mean": round(sum(measured) / len(measured), 4)
            if measured else None,
        },
        "max_sizes": checker.max_sizes(),
    }
    group.stop()
    return report
