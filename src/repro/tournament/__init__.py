"""Adversarial search + long-horizon soak on top of the chaos plane.

Public surface:

* :func:`~repro.tournament.search.run_tournament` /
  :func:`~repro.tournament.search.evaluate_plan` -- evolve fault plans
  against the stack, shrink winners to 1-minimal counterexamples;
* :func:`~repro.tournament.soak.run_soak` -- continuous-churn campaigns
  (>= 1M simulated events) with timed recovery after every fault cycle;
* :class:`~repro.tournament.bounded.BoundedStateChecker` -- fails a soak
  on unbounded state growth or recovery beyond the configured bound.

See ``docs/ROBUSTNESS.md`` ("Adaptive adversary tournament" and "Soak
mode") for the workflow.
"""

from repro.tournament.bounded import BoundedStateChecker
from repro.tournament.search import evaluate_plan, run_tournament
from repro.tournament.soak import run_soak

__all__ = ["BoundedStateChecker", "evaluate_plan", "run_soak",
           "run_tournament"]
