"""Adaptive adversary tournament: evolve fault plans against the stack.

The random chaos campaign (PR 3) samples the fault-plan space blindly;
this module *searches* it.  A small genetic loop keeps a population of
:class:`~repro.chaos.plan.FaultPlan` genomes, scores each by how badly
its run hurts the stack -- checker violations, liveness stalls (event
budget burned without going quiet), slow or failed recovery -- and breeds
the nastiest plans via one-point crossover plus op-level mutations
(insert/delete/swap ops, perturb scalars, retarget nodes, inject mid-run
Byzantine genes from :data:`~repro.chaos.plan.RUNTIME_BEHAVIORS`).

Everything is deterministic per ``seed``: plan evaluation replays
deterministically (the chaos-plane contract) and all search randomness
flows from one ``random.Random(seed)``.  A winning genome is ddmin-shrunk
(ops, then scalar constants) to a 1-minimal replayable counterexample.
"""

from __future__ import annotations

import random
import time

from repro.chaos.engine import run_plan
from repro.chaos.plan import (ADVERSARY_OPS, RUNTIME_BEHAVIORS, FaultPlan,
                              _runtime_params, random_plan)
from repro.chaos.shrink import shrink_plan

#: seed salt: search randomness never mirrors plan/cluster RNG streams
_SEARCH_SEED_SALT = 0x70A11CE5

#: report format version emitted by :func:`run_tournament`.  Schema 2
#: adds the ``evaluated`` outcome cache and ``resume_key`` that make a
#: report resumable: feeding it back via ``resume=`` replays the search
#: trajectory through cached scores and continues where it stopped.
TOURNAMENT_SCHEMA = 2

#: outcome fields persisted per evaluation for deterministic resume --
#: everything the search trajectory reads (score drives selection,
#: ``failed`` drives stop_on_failure and the history's failure counts)
_RECORD_FIELDS = ("score", "failed", "stalled", "recovery_time", "events",
                  "violations", "violation_kinds")


# ----------------------------------------------------------------------
# evaluation
# ----------------------------------------------------------------------
def evaluate_plan(plan, event_budget=150_000, settle=3.0):
    """Run one genome; returns its outcome record (higher score = worse).

    Scoring: each distinct violation *kind* dominates (a safety break is
    the jackpot), a burned event budget (livelock) and a never-recovering
    cluster score next, and recovery time is the tiebreaker that gives
    the search a gradient before it finds a real failure.
    """
    violations, engine = run_plan(plan, settle=settle,
                                  event_budget=event_budget,
                                  measure_recovery=True)
    kinds = []
    for violation in violations:
        kind = str(violation).split(":", 1)[0].strip()
        if kind not in kinds:
            kinds.append(kind)
    score = 100.0 * len(kinds) + float(min(len(violations), 20))
    if engine.stalled:
        score += 100.0
    if engine.recovery_time is None:
        score += 50.0
    else:
        score += min(engine.recovery_time, 5.0)
    return {
        "plan": plan,
        "violations": violations,
        "violation_kinds": kinds,
        "stalled": engine.stalled,
        "recovery_time": engine.recovery_time,
        "events": engine.group.sim.events_processed,
        "failed": bool(violations) or engine.stalled,
        "score": score,
    }


# ----------------------------------------------------------------------
# genetic operators
# ----------------------------------------------------------------------
def _random_op(rng, n, allow):
    """One fresh op gene (state-blind; tolerant semantics absorb misfires)."""
    name = rng.choice(allow)
    node = rng.randrange(n)
    if name == "cast":
        return ["cast", node, rng.randint(1, 8)]
    if name == "run":
        return ["run", rng.choice((0.05, 0.1, 0.3, 0.6))]
    if name in ("crash", "restart", "leave"):
        return [name, node]
    if name == "join":
        return ["join", 2000 + rng.randrange(100)]
    if name == "partition":
        members = list(range(n))
        rng.shuffle(members)
        split = rng.randint(1, n - 1)
        return ["partition", [members[:split], members[split:]]]
    if name == "heal":
        return ["heal"]
    if name in ("drop", "corrupt", "duplicate"):
        src = node if rng.random() < 0.5 else None
        return [name, src, None, rng.choice((0.05, 0.1, 0.2, 0.3))]
    if name == "nic":
        return ["nic", node, rng.choice((0.05, 0.2, 0.5))]
    if name == "skew":
        return ["skew", node, round(rng.uniform(0.7, 1.4), 3)]
    if name == "clear_faults":
        return ["clear_faults"]
    if name == "byzantine_at":
        kind = rng.choice(RUNTIME_BEHAVIORS)
        return ["byzantine_at", node, kind, _runtime_params(rng, kind)]
    return ["run", 0.1]


def _perturb_scalar(rng, op):
    """Scale one numeric field of ``op`` up or down (never field 0/1)."""
    out = list(op)
    numeric = [i for i in range(2, len(out))
               if isinstance(out[i], (int, float))
               and not isinstance(out[i], bool)]
    if op[0] == "run":
        numeric = [1]
    if not numeric:
        return out
    index = rng.choice(numeric)
    factor = rng.choice((0.5, 2.0))
    value = out[index]
    if isinstance(value, int):
        out[index] = max(1, int(value * factor))
    else:
        out[index] = round(min(max(value * factor, 0.01), 10.0), 4)
    return out


def _retarget(rng, op, n):
    """Point an op's node argument at a different node."""
    out = list(op)
    if len(out) >= 2 and isinstance(out[1], int) and op[0] != "run":
        out[1] = rng.randrange(n)
    return out


def mutate_ops(rng, ops, n, allow):
    """One mutation step over an op script; always returns a new list."""
    ops = [list(op) for op in ops]
    choices = ["insert"]
    if ops:
        choices += ["delete", "swap", "perturb", "retarget"]
    move = rng.choice(choices)
    if move == "insert":
        index = rng.randint(0, len(ops))
        ops.insert(index, _random_op(rng, n, allow))
    elif move == "delete":
        ops.pop(rng.randrange(len(ops)))
    elif move == "swap" and len(ops) >= 2:
        i = rng.randrange(len(ops))
        j = rng.randrange(len(ops))
        ops[i], ops[j] = ops[j], ops[i]
    elif move == "perturb":
        index = rng.randrange(len(ops))
        ops[index] = _perturb_scalar(rng, ops[index])
    elif move == "retarget":
        index = rng.randrange(len(ops))
        ops[index] = _retarget(rng, ops[index], n)
    return ops


def crossover_ops(rng, a, b):
    """One-point crossover of two op scripts."""
    if not a or not b:
        return [list(op) for op in (a or b)]
    cut_a = rng.randint(0, len(a))
    cut_b = rng.randint(0, len(b))
    return [list(op) for op in (a[:cut_a] + b[cut_b:])]


# ----------------------------------------------------------------------
# the tournament loop
# ----------------------------------------------------------------------
def run_tournament(seed, n=6, population=8, generations=6, plan_ops=10,
                   allow=ADVERSARY_OPS, byzantine_fraction=0.4,
                   config=None, net=None, check=None, settle=3.0,
                   event_budget=150_000, stop_on_failure=True, shrink=True,
                   shrink_runs=192, log=None, minutes=None, resume=None,
                   clock=None):
    """Evolve fault plans until one fails the checker or budget runs out.

    Returns the tournament report dict; ``report["found"]`` says whether
    a failing plan was discovered and ``report["minimized"]`` (when
    shrinking is on) holds the 1-minimal replayable counterexample, re-
    verified from scratch.  Deterministic per ``seed`` and parameters.

    ``minutes`` switches the budget from a generation count to wall
    clock: generations keep running until the deadline, which is only
    allowed to cut the search *between* plan evaluations -- the search
    trajectory itself (which plans are bred, in which order) never
    depends on timing.  That is what makes ``resume`` sound: feeding a
    prior schema-2 report back in replays the identical trajectory
    through its ``evaluated`` score cache at effectively zero cost, then
    keeps evolving from exactly where the previous run stopped.
    ``clock`` (a ``time.monotonic`` substitute) exists for tests.
    """
    log = log or (lambda line: None)
    clock = clock or time.monotonic
    started_at = clock()
    deadline = None if minutes is None else started_at + minutes * 60.0
    rng = random.Random(seed ^ _SEARCH_SEED_SALT)
    resume_key = {"seed": seed, "n": n, "population": population,
                  "plan_ops": plan_ops, "allow": list(allow),
                  "byzantine_fraction": byzantine_fraction,
                  "event_budget": event_budget, "settle": settle}
    cache = {}
    if resume is not None:
        if (resume.get("schema") == TOURNAMENT_SCHEMA
                and resume.get("resume_key") == resume_key):
            cache = {record["plan_hash"]: record
                     for record in resume.get("evaluated", [])}
            log("resuming from report with %d cached evaluations"
                % len(cache))
        else:
            log("resume report ignored: schema or parameters differ")
    scored = []
    evaluated = []
    evaluations = 0
    cache_hits = 0
    timed_out = False

    def out_of_time(plan):
        """May we still afford this plan?  Cache hits are always free;
        the very first outcome is always taken so the report is never
        empty."""
        if deadline is None or plan.digest() in cache:
            return False
        if not scored:
            return False
        return clock() >= deadline

    def consider(plan):
        nonlocal evaluations, cache_hits
        digest = plan.digest()
        record = cache.get(digest)
        if record is not None:
            outcome = {field: record[field] for field in _RECORD_FIELDS}
            outcome["plan"] = plan
            cache_hits += 1
        else:
            outcome = evaluate_plan(plan, event_budget=event_budget,
                                    settle=settle)
            evaluations += 1
        evaluated.append(dict({"plan_hash": digest},
                              **{field: outcome[field]
                                 for field in _RECORD_FIELDS}))
        scored.append(outcome)
        return outcome

    for index in range(population):
        plan = random_plan(seed * 1009 + index, n=n, ops=plan_ops,
                           allow=allow,
                           byzantine_fraction=byzantine_fraction,
                           config=config, net=net, check=check)
        if out_of_time(plan):
            timed_out = True
            break
        consider(plan)

    history = []
    generations_run = 0
    generation = -1
    while not timed_out:
        generation += 1
        if minutes is None and generation >= generations:
            break
        if deadline is not None and clock() >= deadline:
            timed_out = True
            break
        generations_run = generation + 1
        # deterministic rank: score desc, then arrival order
        order = sorted(range(len(scored)),
                       key=lambda i: (-scored[i]["score"], i))
        scored = [scored[i] for i in order]
        best = scored[0]
        # count *considered* plans, not just fresh evaluations: a resumed
        # run replays its prefix from cache and must reproduce the same
        # history records as an uninterrupted one
        history.append({"generation": generation,
                        "best_score": best["score"],
                        "best_ops": len(best["plan"]),
                        "failures": sum(1 for o in scored if o["failed"]),
                        "evaluations": len(evaluated)})
        log("gen %d: best score %.1f (%d ops), %d/%d failing"
            % (generation, best["score"], len(best["plan"]),
               history[-1]["failures"], len(scored)))
        if stop_on_failure and best["failed"]:
            break
        survivors = scored[:max(2, population // 2)]
        scored = list(survivors)
        if minutes is not None and len(scored) >= population:
            # nothing to breed (population <= survivor count): the loop
            # is a fixed point -- no rng draws, no new plans -- so a
            # wall-clock budget would spin until the deadline doing
            # nothing.  Structural, so a resumed run stops here too.
            log("population saturated (nothing to breed); stopping early")
            break
        while len(scored) < population:
            parent_a = rng.choice(survivors)["plan"]
            parent_b = rng.choice(survivors)["plan"]
            ops = crossover_ops(rng, parent_a.ops, parent_b.ops)
            for _ in range(rng.randint(1, 3)):
                ops = mutate_ops(rng, ops, n, allow)
            child = FaultPlan(seed=parent_a.seed, n=n, ops=ops,
                              config=parent_a.config, net=parent_a.net,
                              check=parent_a.check)
            if out_of_time(child):
                timed_out = True
                break
            consider(child)
        if timed_out:
            break

    order = sorted(range(len(scored)), key=lambda i: (-scored[i]["score"], i))
    best = scored[order[0]]
    report = {
        "schema": TOURNAMENT_SCHEMA, "kind": "tournament",
        "seed": seed,
        "params": {"n": n, "population": population,
                   "generations": generations, "plan_ops": plan_ops,
                   "allow": list(allow), "event_budget": event_budget,
                   "settle": settle,
                   "byzantine_fraction": byzantine_fraction},
        "resume_key": resume_key,
        "evaluations": evaluations,
        "cache_hits": cache_hits,
        "evaluated": evaluated,
        "timed_out": timed_out,
        "wall_seconds": clock() - started_at,
        "generations_run": generations_run,
        "history": history,
        "found": best["failed"],
        "best": {
            "plan": best["plan"].to_dict(),
            "plan_hash": best["plan"].digest(),
            "score": best["score"],
            "violations": best["violations"],
            "stalled": best["stalled"],
            "recovery_time": best["recovery_time"],
            "events_processed": best["events"],
        },
        "minimized": None,
        "minimized_violations": [],
    }
    if best["failed"] and shrink:
        # the predicate replays candidates EXACTLY the way evaluation ran
        # the winner (measured-recovery settle): a different settle path
        # is a different deterministic execution, and the failure may not
        # reproduce under it
        if best["violations"]:
            def fails(candidate):
                violations, _engine = run_plan(candidate, settle=settle,
                                               event_budget=event_budget,
                                               measure_recovery=True)
                return bool(violations)
        else:
            def fails(candidate):
                _violations, engine = run_plan(candidate, settle=settle,
                                               event_budget=event_budget,
                                               measure_recovery=True)
                return engine.stalled
        small = shrink_plan(best["plan"], fails=fails, max_runs=shrink_runs)
        # independently re-verify the artifact we publish
        small_violations, small_engine = run_plan(
            small, settle=settle, event_budget=event_budget,
            measure_recovery=True)
        if small_violations or small_engine.stalled:
            report["minimized"] = small.to_dict()
            report["minimized_violations"] = small_violations
            log("shrunk winner %d -> %d ops"
                % (len(best["plan"]), len(small)))
    return report
