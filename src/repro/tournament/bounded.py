"""Bounded-state self-stabilization checker.

"Self-stabilizing Byzantine Fault-tolerant Repeated Reliable Broadcast"
(PAPERS.md) warns that in the *repeated*-operation regime the interesting
failures are not one-shot safety violations but state that creeps: view
tables, retransmission stashes, suspicion maps and transfer tables that
grow a little on every churn cycle and never shrink back.  A soak run
cannot catch that with the Definitions 2.1/2.2 checker -- every individual
view change is correct; the leak only shows across hundreds of them.

:class:`BoundedStateChecker` samples each process's
:meth:`~repro.core.process.GroupProcess.state_sizes` during a long-horizon
campaign and fails the run on three conditions:

* **monotone growth** -- a per-(node, metric) series whose floor keeps
  rising across the run's quarters and ends well above where it began
  (sampling floors, not peaks, tolerates transient spikes during churn);
* **quiescent caps** -- a store that exceeds its configured cap at a
  *quiescent* sample point, i.e. after faults cleared and views
  re-stabilized, when a self-stabilizing stack should have shed its
  transient state;
* **recovery time** -- the cluster took longer than the configured bound
  to re-converge after a fault cleared (or never did).
"""

from __future__ import annotations


class BoundedStateChecker:
    """Accumulates state-size samples and judges them at the end.

    Parameters
    ----------
    growth_slack:
        A series must end above ``first_floor * growth_slack`` (and above
        ``growth_floor``) before rising floors count as unbounded growth.
        Protects tables that legitimately fill toward a plateau early on.
    growth_floor:
        Absolute entry count below which growth is never flagged --
        filters noise from tables whose natural size tracks cluster size.
    quiescent_caps:
        ``{metric: cap}`` hard ceilings checked only at quiescent samples.
        Metrics absent from the map fall back to ``default_cap``.
    default_cap:
        Quiescent cap for unlisted metrics (``None`` disables).
    recovery_bound:
        Max sim-seconds allowed from fault clearance to stable views.
    """

    def __init__(self, growth_slack=3.0, growth_floor=64,
                 quiescent_caps=None, default_cap=None,
                 recovery_bound=None):
        self.growth_slack = growth_slack
        self.growth_floor = growth_floor
        self.quiescent_caps = dict(quiescent_caps or {})
        self.default_cap = default_cap
        self.recovery_bound = recovery_bound
        self._series = {}        # (node, metric) -> [value, ...]
        self._quiescent = []     # (time, node, metric, value) over caps
        self._recoveries = []    # (time, duration or None)
        self.samples_taken = 0

    # ------------------------------------------------------------------
    # feeds
    # ------------------------------------------------------------------
    def sample(self, group, quiescent=False):
        """Record one state-size sample of every live correct process."""
        now = group.sim.now
        self.samples_taken += 1
        for node, process in sorted(group.processes.items(), key=repr):
            if process.stopped or node in group.byzantine_nodes:
                continue
            for metric, value in process.state_sizes().items():
                self._series.setdefault((node, metric), []).append(value)
                if quiescent:
                    cap = self.quiescent_caps.get(metric, self.default_cap)
                    if cap is not None and value > cap:
                        self._quiescent.append((now, node, metric, value))

    def record_recovery(self, duration, at=None):
        """Record one fault-clearance recovery; ``None`` = never settled."""
        self._recoveries.append((at, duration))

    # ------------------------------------------------------------------
    # verdict
    # ------------------------------------------------------------------
    def check(self):
        """All violations accumulated so far, as strings (empty = pass)."""
        violations = []
        for (node, metric), series in sorted(self._series.items(),
                                             key=lambda kv: repr(kv[0])):
            if self._grows_unbounded(series):
                violations.append(
                    "state growth: node %r metric %s floor kept rising "
                    "across the run (%d -> %d over %d samples)"
                    % (node, metric, series[0], series[-1], len(series)))
        for now, node, metric, value in self._quiescent:
            cap = self.quiescent_caps.get(metric, self.default_cap)
            violations.append(
                "state cap: node %r metric %s = %d exceeds quiescent "
                "cap %d at t=%.3f" % (node, metric, value, cap, now))
        if self.recovery_bound is not None:
            for at, duration in self._recoveries:
                if duration is None:
                    violations.append(
                        "recovery: cluster never re-stabilized after "
                        "fault clearance%s"
                        % ("" if at is None else " at t=%.3f" % (at,)))
                elif duration > self.recovery_bound:
                    violations.append(
                        "recovery: %.3fs to re-stabilize exceeds bound "
                        "%.3fs%s" % (duration, self.recovery_bound,
                                     "" if at is None
                                     else " at t=%.3f" % (at,)))
        return violations

    def _grows_unbounded(self, series):
        """Rising floors across quarters + well above the starting floor.

        The *floor* (min) of each quarter is compared, not the peak:
        a stash legitimately spikes while a partition is up; the leak
        signature is the level it *returns to* ratcheting upward.
        """
        if len(series) < 8:
            return False
        quarter = len(series) // 4
        floors = [min(series[i * quarter:(i + 1) * quarter])
                  for i in range(4)]
        if not all(floors[i] < floors[i + 1] for i in range(3)):
            return False
        threshold = max(self.growth_floor, floors[0] * self.growth_slack)
        return floors[-1] > threshold

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def max_sizes(self):
        """``{metric: max observed across all nodes}`` for the report."""
        peaks = {}
        for (_node, metric), series in self._series.items():
            peak = max(series)
            if peak > peaks.get(metric, -1):
                peaks[metric] = peak
        return peaks

    def recoveries(self):
        """Recorded ``(at, duration)`` pairs (duration ``None`` = stuck)."""
        return list(self._recoveries)
