"""repro -- reproduction of "Practical Byzantine Group Communication".

Drabkin, Friedman, Kama (Technion TR CS-2005-17 / ICDCS 2006): a Byzantine
fault tolerant group communication system derived from JazzEnsemble, with
fuzzy mute/verbose failure detectors, vector Byzantine consensus, a 2-step
Byzantine uniform broadcast, and a layered micro-protocol stack -- running
here on a deterministic discrete-event network simulator.

Quickstart::

    from repro import Group, StackConfig

    group = Group.bootstrap(8, config=StackConfig.byz(crypto="sym"))
    group.endpoints[0].cast({"hello": "world"}, size=16)
    group.run(0.5)
    for event in group.endpoints[3].events:
        print(event)

Everything in ``__all__`` is the supported public surface; see docs/API.md
for the tour and docs/OBSERVABILITY.md for the metrics/tracing plane.
"""

from repro.adhoc.geometry import Field
from repro.byzantine.behaviors import (
    BadViewCoordinator,
    ByzantineBehavior,
    ForgedRetransmitter,
    MuteCoordinator,
    MuteNode,
    Replayer,
    SlowNode,
    TwoFacedCaster,
    VerboseNode,
)
from repro.core.config import (
    ChaosConfig,
    ShardConfig,
    StackConfig,
    WireConfig,
)
from repro.core.endpoint import GroupEndpoint
from repro.core.events import BlockEvent, CastDeliver, SendDeliver, ViewEvent
from repro.core.group import Group
from repro.core.history import Execution, History
from repro.core.process import GroupProcess
from repro.core.properties import check_virtual_synchrony
from repro.core.view import View, ViewId, singleton_view
from repro.obs import MetricsRegistry, ObsConfig, ObservabilityPlane, Trace
from repro.runtime import Runtime, SimRuntime
from repro.shard import (
    Cluster,
    HashRing,
    ShardDirectory,
    ShardManager,
    ShardReplica,
    ShardedKVStore,
    ShardedRSM,
    TransferCoordinator,
)
from repro.sim.network import NetworkConfig
from repro.sim.topology import HostModel

__version__ = "1.1.0"

__all__ = [
    "BadViewCoordinator",
    "BlockEvent",
    "ByzantineBehavior",
    "CastDeliver",
    "ChaosConfig",
    "Cluster",
    "Execution",
    "Field",
    "ForgedRetransmitter",
    "Group",
    "GroupEndpoint",
    "GroupProcess",
    "HashRing",
    "History",
    "HostModel",
    "MetricsRegistry",
    "MuteCoordinator",
    "MuteNode",
    "NetworkConfig",
    "ObsConfig",
    "ObservabilityPlane",
    "Replayer",
    "Runtime",
    "SendDeliver",
    "ShardConfig",
    "ShardDirectory",
    "ShardManager",
    "ShardReplica",
    "ShardedKVStore",
    "ShardedRSM",
    "SimRuntime",
    "SlowNode",
    "StackConfig",
    "Trace",
    "TransferCoordinator",
    "TwoFacedCaster",
    "VerboseNode",
    "View",
    "ViewEvent",
    "ViewId",
    "WireConfig",
    "__version__",
    "check_virtual_synchrony",
    "singleton_view",
]
