"""repro -- reproduction of "Practical Byzantine Group Communication".

Drabkin, Friedman, Kama (Technion TR CS-2005-17 / ICDCS 2006): a Byzantine
fault tolerant group communication system derived from JazzEnsemble, with
fuzzy mute/verbose failure detectors, vector Byzantine consensus, a 2-step
Byzantine uniform broadcast, and a layered micro-protocol stack -- running
here on a deterministic discrete-event network simulator.

Quickstart::

    from repro import Group, StackConfig

    group = Group.bootstrap(8, config=StackConfig.byz(crypto="sym"))
    group.endpoints[0].cast({"hello": "world"}, size=16)
    group.run(0.5)
    for event in group.endpoints[3].events:
        print(event)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured results of every table and figure.
"""

from repro.core.config import StackConfig
from repro.core.endpoint import GroupEndpoint
from repro.core.events import BlockEvent, CastDeliver, SendDeliver, ViewEvent
from repro.core.group import Group
from repro.core.history import Execution, History
from repro.core.process import GroupProcess
from repro.core.view import View, ViewId, singleton_view

__version__ = "1.0.0"

__all__ = [
    "BlockEvent",
    "CastDeliver",
    "Execution",
    "Group",
    "GroupEndpoint",
    "GroupProcess",
    "History",
    "SendDeliver",
    "StackConfig",
    "View",
    "ViewEvent",
    "ViewId",
    "singleton_view",
    "__version__",
]
