"""Calibrated CPU cost table for cryptographic operations.

The paper performs cryptography in software (OCaml CryptoKit on 2.2 GHz
PowerPC JS20 blades) and measures its throughput impact.  In this
reproduction the MACs are computed for real (HMAC-SHA256) but their *time*
cost is charged to the simulated clock from this table, which encodes
2005-era software-crypto costs:

* AES-128 pairwise MAC: a few microseconds per signature -- the paper's
  "symmetric key cryptography reduces the performance by about half" when
  every broadcast is signed n-1 times;
* 512-bit RSA: milliseconds to tens of milliseconds per signature -- the
  paper's "throughput with public key cryptography ... drops to a few dozen
  messages per second, making it almost useless".

The constants are calibration inputs (DESIGN.md section 6) and are printed
by every benchmark that uses them.
"""

from __future__ import annotations


class CryptoCostModel:
    """Per-operation simulated-CPU charges, in seconds."""

    __slots__ = ("sym_sign", "sym_verify", "pub_sign", "pub_verify",
                 "hash_digest")

    def __init__(self, sym_sign=1.2e-5, sym_verify=1.0e-5,
                 pub_sign=5.0e-3, pub_verify=5.0e-4, hash_digest=1.5e-6):
        self.sym_sign = sym_sign
        self.sym_verify = sym_verify
        self.pub_sign = pub_sign
        self.pub_verify = pub_verify
        self.hash_digest = hash_digest

    def describe(self):
        return ("CryptoCostModel(sym_sign={:.1e}s, sym_verify={:.1e}s, "
                "pub_sign={:.1e}s, pub_verify={:.1e}s)").format(
                    self.sym_sign, self.sym_verify,
                    self.pub_sign, self.pub_verify)


#: cost model with all charges zeroed, for the NoCrypto configurations
FREE = CryptoCostModel(sym_sign=0.0, sym_verify=0.0,
                       pub_sign=0.0, pub_verify=0.0, hash_digest=0.0)
