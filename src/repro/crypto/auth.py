"""Message authenticators.

The paper keeps cryptography at the lowest level of the stack: each message
is signed once, just before hitting the network, and verified once on
receipt (section 1.2, "Cryptography is Kept at the Lowest Level").  Three
schemes are measured:

* ``NullAuth`` -- no authentication (the benign stack, and the
  "ByzEns+NoCrypto" configurations which isolate protocol overhead from
  crypto overhead);
* ``PairwiseSymmetricAuth`` -- each broadcast carries an *authenticator*:
  one MAC per receiver under the pairwise key (the Castro-Liskov trick the
  paper adopts; AES-128 in the paper, HMAC-SHA256 here, with the AES cost
  charged from the calibration table);
* ``PublicKeyAuth`` -- one signature per message (512-bit RSA in the
  paper; structurally-simulated here, with RSA costs charged).

Every method returns the simulated CPU cost alongside its result so the
bottom layer can charge the node's CPU.

Hot-path design (docs/PERFORMANCE.md): callers pass
:meth:`repro.core.message.Message.auth_token` -- the memoized 32-byte
SHA-256 digest of the canonical encoding -- so signing a broadcast to n-1
receivers MACs a constant 32 bytes per receiver instead of re-encoding the
whole message, and each receiver verifies against the same digest without
re-encoding either.  Pairwise keys and their half-initialized HMAC state
are derived once per pair and reused (identical MAC values, no per-call
key-schedule work).
"""

from __future__ import annotations

import hashlib
import hmac

from repro.crypto.cost import CryptoCostModel

MAC_BYTES = 10  # truncated MAC length on the wire, as in BFT


def stable_bytes(obj):
    """Canonical byte encoding used as MAC input.

    Message headers in this system are tuples/strings/ints, whose ``repr``
    is stable and injective enough for authentication purposes within the
    simulation.  ``bytes`` pass through untouched, which is how the
    memoized message digests reach the MACs without a second encoding.
    """
    if isinstance(obj, bytes):
        return obj
    return repr(obj).encode("utf-8")


class Authenticator:
    """Interface: sign once at the bottom, verify once on receipt."""

    name = "abstract"

    def __init__(self, keys=None, costs=None):
        self.keys = keys
        self.costs = costs or CryptoCostModel()

    def sign(self, sender, receivers, data):
        """Returns ``(signature, cpu_cost_seconds, wire_bytes)``."""
        raise NotImplementedError

    def verify(self, receiver, claimed_sender, data, signature):
        """Returns ``(ok, cpu_cost_seconds)``."""
        raise NotImplementedError

    def verify_batch(self, receiver, items):
        """Verify one drain's worth of frames in a single pass.

        ``items`` is ``[(claimed_sender, data, signature), ...]`` -- one
        entry per frame of a received datagram batch.  Returns
        ``(verdicts, total_cpu_cost)`` with one boolean per item, in
        order: per-frame verdicts are preserved, so one bad MAC strikes
        only its own frame.  The base implementation loops over
        :meth:`verify`; schemes override it to hoist per-sender state
        (key lookups, half-initialized HMAC states) out of the loop.
        """
        verdicts = []
        total = 0.0
        for claimed_sender, data, signature in items:
            ok, cost = self.verify(receiver, claimed_sender, data, signature)
            verdicts.append(ok)
            total += cost
        return verdicts, total


class NullAuth(Authenticator):
    """No authentication; used by the benign stack and NoCrypto configs."""

    name = "none"

    def sign(self, sender, receivers, data):
        return None, 0.0, 0

    def verify(self, receiver, claimed_sender, data, signature):
        return True, 0.0

    def verify_batch(self, receiver, items):
        return [True] * len(items), 0.0


class PairwiseSymmetricAuth(Authenticator):
    """One MAC per receiver under the shared pairwise key.

    The signature of a broadcast to n-1 receivers is a vector of n-1 MACs;
    each receiver checks only its own entry.  Because the whole vector
    travels with the message, a third node can *retransmit* the message and
    the new receiver still finds its entry -- exactly the property the
    reliable-retransmission layer needs.
    """

    name = "sym"

    def __init__(self, keys=None, costs=None):
        super().__init__(keys, costs)
        # (a, b) -> half-initialized HMAC state under pair_key(a, b);
        # copy()+update() per MAC skips the per-call key schedule while
        # producing byte-identical MAC values.  The cache itself lives on
        # the KeyManager when one is present, so co-hosted shard
        # processes sharing a manager also share HMAC states (the same
        # contract as the pairwise-key cache); the local dict is the
        # fallback for keyless test doubles.
        self._mac_bases = {}

    def _mac_base(self, a, b):
        # the local dict is an L1 memo: the *object* comes from the shared
        # KeyManager when one is present, so co-hosted authenticators still
        # share one HMAC state per pair; the memo only skips the manager
        # round-trip on the per-MAC hot path
        base = self._mac_bases.get((a, b))
        if base is not None:
            return base
        keys = self.keys
        if keys is not None and hasattr(keys, "mac_base"):
            base = keys.mac_base(a, b)
        else:
            base = hmac.new(keys.pair_key(a, b),
                            digestmod=hashlib.sha256)
        self._mac_bases[(a, b)] = base
        self._mac_bases[(b, a)] = base  # pairwise keys are symmetric
        return base

    def _mac(self, a, b, payload):
        state = self._mac_base(a, b).copy()
        state.update(payload)
        return state.digest()[:MAC_BYTES]

    def sign(self, sender, receivers, data):
        # n-1 MACs per broadcast: the _mac/_mac_base frames are inlined
        # (identical MAC bytes, two fewer Python calls per receiver)
        payload = stable_bytes(data)
        macs = {}
        bases = self._mac_bases
        for receiver in receivers:
            if receiver == sender:
                continue
            base = bases.get((sender, receiver))
            if base is None:
                base = self._mac_base(sender, receiver)
            state = base.copy()
            state.update(payload)
            macs[receiver] = state.digest()[:MAC_BYTES]
        cost = self.costs.sym_sign * len(macs)
        return macs, cost, MAC_BYTES * len(macs)

    def verify(self, receiver, claimed_sender, data, signature):
        cost = self.costs.sym_verify
        if not isinstance(signature, dict):
            return False, cost
        mac = signature.get(receiver)
        if mac is None:
            return False, cost
        base = self._mac_bases.get((claimed_sender, receiver))
        if base is None:
            base = self._mac_base(claimed_sender, receiver)
        state = base.copy()
        state.update(data if isinstance(data, bytes) else stable_bytes(data))
        return hmac.compare_digest(mac, state.digest()[:MAC_BYTES]), cost

    def verify_batch(self, receiver, items):
        # one half-initialized HMAC state lookup per *sender* per drain
        # (a datagram batch is usually many frames from one sender), and
        # the loop body is branch-lean: the verdicts are byte-identical
        # to per-frame verify() calls
        total = self.costs.sym_verify * len(items)
        verdicts = []
        append = verdicts.append
        bases = {}
        compare_digest = hmac.compare_digest
        for claimed_sender, data, signature in items:
            if not isinstance(signature, dict):
                append(False)
                continue
            mac = signature.get(receiver)
            if mac is None:
                append(False)
                continue
            base = bases.get(claimed_sender)
            if base is None:
                base = bases[claimed_sender] = self._mac_base(
                    claimed_sender, receiver)
            state = base.copy()
            state.update(data if isinstance(data, bytes)
                         else stable_bytes(data))
            append(compare_digest(mac, state.digest()[:MAC_BYTES]))
        return verdicts, total


class PublicKeyAuth(Authenticator):
    """One signature per message under the sender's private key.

    Structurally simulated (DESIGN.md section 6): signing requires the
    sender's private key, which the :class:`~repro.crypto.keys.KeyManager`
    only releases to its owner, so in-model signatures are unforgeable;
    verification recomputes the MAC through the verifier-only
    :meth:`~repro.crypto.keys.KeyManager.verify_key_of` accessor.
    """

    name = "pub"
    SIG_BYTES = 64  # 512-bit RSA signature

    def sign(self, sender, receivers, data):
        key = self.keys.private_key_of(sender, requester=sender)
        sig = hmac.new(key, stable_bytes(data), hashlib.sha256).digest()
        return sig, self.costs.pub_sign, self.SIG_BYTES

    def verify(self, receiver, claimed_sender, data, signature):
        cost = self.costs.pub_verify
        if not isinstance(signature, bytes):
            return False, cost
        key = self.keys.verify_key_of(claimed_sender)
        expected = hmac.new(key, stable_bytes(data), hashlib.sha256).digest()
        return hmac.compare_digest(signature, expected), cost

    def verify_batch(self, receiver, items):
        # one verification-key lookup per sender per drain
        total = self.costs.pub_verify * len(items)
        verdicts = []
        keys = {}
        for claimed_sender, data, signature in items:
            if not isinstance(signature, bytes):
                verdicts.append(False)
                continue
            key = keys.get(claimed_sender)
            if key is None:
                key = keys[claimed_sender] = self.keys.verify_key_of(
                    claimed_sender)
            expected = hmac.new(key, stable_bytes(data),
                                hashlib.sha256).digest()
            verdicts.append(hmac.compare_digest(signature, expected))
        return verdicts, total


def make_authenticator(scheme, keys, costs):
    """Factory keyed by the configuration strings used across the repo."""
    if scheme in (None, "none", "null"):
        return NullAuth(keys, costs)
    if scheme == "sym":
        return PairwiseSymmetricAuth(keys, costs)
    if scheme == "pub":
        return PublicKeyAuth(keys, costs)
    raise ValueError("unknown crypto scheme: %r" % (scheme,))
