"""Message authenticators.

The paper keeps cryptography at the lowest level of the stack: each message
is signed once, just before hitting the network, and verified once on
receipt (section 1.2, "Cryptography is Kept at the Lowest Level").  Three
schemes are measured:

* ``NullAuth`` -- no authentication (the benign stack, and the
  "ByzEns+NoCrypto" configurations which isolate protocol overhead from
  crypto overhead);
* ``PairwiseSymmetricAuth`` -- each broadcast carries an *authenticator*:
  one MAC per receiver under the pairwise key (the Castro-Liskov trick the
  paper adopts; AES-128 in the paper, HMAC-SHA256 here, with the AES cost
  charged from the calibration table);
* ``PublicKeyAuth`` -- one signature per message (512-bit RSA in the
  paper; structurally-simulated here, with RSA costs charged).

Every method returns the simulated CPU cost alongside its result so the
bottom layer can charge the node's CPU.

Hot-path design (docs/PERFORMANCE.md): callers pass
:meth:`repro.core.message.Message.auth_token` -- the memoized 32-byte
SHA-256 digest of the canonical encoding -- so signing a broadcast to n-1
receivers MACs a constant 32 bytes per receiver instead of re-encoding the
whole message, and each receiver verifies against the same digest without
re-encoding either.  Pairwise keys and their half-initialized HMAC state
are derived once per pair and reused (identical MAC values, no per-call
key-schedule work).
"""

from __future__ import annotations

import hashlib
import hmac

from repro.crypto.cost import CryptoCostModel

MAC_BYTES = 10  # truncated MAC length on the wire, as in BFT


def stable_bytes(obj):
    """Canonical byte encoding used as MAC input.

    Message headers in this system are tuples/strings/ints, whose ``repr``
    is stable and injective enough for authentication purposes within the
    simulation.  ``bytes`` pass through untouched, which is how the
    memoized message digests reach the MACs without a second encoding.
    """
    if isinstance(obj, bytes):
        return obj
    return repr(obj).encode("utf-8")


class Authenticator:
    """Interface: sign once at the bottom, verify once on receipt."""

    name = "abstract"

    def __init__(self, keys=None, costs=None):
        self.keys = keys
        self.costs = costs or CryptoCostModel()

    def sign(self, sender, receivers, data):
        """Returns ``(signature, cpu_cost_seconds, wire_bytes)``."""
        raise NotImplementedError

    def verify(self, receiver, claimed_sender, data, signature):
        """Returns ``(ok, cpu_cost_seconds)``."""
        raise NotImplementedError


class NullAuth(Authenticator):
    """No authentication; used by the benign stack and NoCrypto configs."""

    name = "none"

    def sign(self, sender, receivers, data):
        return None, 0.0, 0

    def verify(self, receiver, claimed_sender, data, signature):
        return True, 0.0


class PairwiseSymmetricAuth(Authenticator):
    """One MAC per receiver under the shared pairwise key.

    The signature of a broadcast to n-1 receivers is a vector of n-1 MACs;
    each receiver checks only its own entry.  Because the whole vector
    travels with the message, a third node can *retransmit* the message and
    the new receiver still finds its entry -- exactly the property the
    reliable-retransmission layer needs.
    """

    name = "sym"

    def __init__(self, keys=None, costs=None):
        super().__init__(keys, costs)
        # (a, b) -> half-initialized HMAC state under pair_key(a, b);
        # copy()+update() per MAC skips the per-call key schedule while
        # producing byte-identical MAC values
        self._mac_bases = {}

    def _mac_base(self, a, b):
        base = self._mac_bases.get((a, b))
        if base is None:
            base = hmac.new(self.keys.pair_key(a, b),
                            digestmod=hashlib.sha256)
            self._mac_bases[(a, b)] = base
            self._mac_bases[(b, a)] = base  # pairwise keys are symmetric
        return base

    def _mac(self, a, b, payload):
        state = self._mac_base(a, b).copy()
        state.update(payload)
        return state.digest()[:MAC_BYTES]

    def sign(self, sender, receivers, data):
        payload = stable_bytes(data)
        macs = {}
        for receiver in receivers:
            if receiver == sender:
                continue
            macs[receiver] = self._mac(sender, receiver, payload)
        cost = self.costs.sym_sign * len(macs)
        return macs, cost, MAC_BYTES * len(macs)

    def verify(self, receiver, claimed_sender, data, signature):
        cost = self.costs.sym_verify
        if not isinstance(signature, dict):
            return False, cost
        mac = signature.get(receiver)
        if mac is None:
            return False, cost
        expected = self._mac(claimed_sender, receiver, stable_bytes(data))
        return hmac.compare_digest(mac, expected), cost


class PublicKeyAuth(Authenticator):
    """One signature per message under the sender's private key.

    Structurally simulated (DESIGN.md section 6): signing requires the
    sender's private key, which the :class:`~repro.crypto.keys.KeyManager`
    only releases to its owner, so in-model signatures are unforgeable;
    verification recomputes the MAC through the verifier-only
    :meth:`~repro.crypto.keys.KeyManager.verify_key_of` accessor.
    """

    name = "pub"
    SIG_BYTES = 64  # 512-bit RSA signature

    def sign(self, sender, receivers, data):
        key = self.keys.private_key_of(sender, requester=sender)
        sig = hmac.new(key, stable_bytes(data), hashlib.sha256).digest()
        return sig, self.costs.pub_sign, self.SIG_BYTES

    def verify(self, receiver, claimed_sender, data, signature):
        cost = self.costs.pub_verify
        if not isinstance(signature, bytes):
            return False, cost
        key = self.keys.verify_key_of(claimed_sender)
        expected = hmac.new(key, stable_bytes(data), hashlib.sha256).digest()
        return hmac.compare_digest(signature, expected), cost


def make_authenticator(scheme, keys, costs):
    """Factory keyed by the configuration strings used across the repo."""
    if scheme in (None, "none", "null"):
        return NullAuth(keys, costs)
    if scheme == "sym":
        return PairwiseSymmetricAuth(keys, costs)
    if scheme == "pub":
        return PublicKeyAuth(keys, costs)
    raise ValueError("unknown crypto scheme: %r" % (scheme,))
