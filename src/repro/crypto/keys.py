"""Key management.

The paper relies on Rodeh's Ensemble key management and assumes the
required cryptographic infrastructure exists (section 2.2).  We provide the
same abstraction: a :class:`KeyManager` that hands out

* one *pairwise symmetric key* per unordered node pair -- used by
  :class:`repro.crypto.auth.PairwiseSymmetricAuth`, where each broadcast is
  signed once per receiver (the n-1 MAC trick of Castro-Liskov that the
  paper adopts), and
* one *signing keypair* per node -- used by
  :class:`repro.crypto.auth.PublicKeyAuth` and by the reliable layer when a
  third node retransmits an original sender's message.

Impersonation is prevented structurally: private material is only released
to its owner (``private_key_of`` checks the requester), which realizes the
paper's "nodes cannot impersonate other nodes" assumption.
"""

from __future__ import annotations

import hashlib
import hmac


class KeyAccessError(PermissionError):
    """A node asked for key material it does not own."""


class KeyManager:
    """Derives all keys deterministically from one master secret.

    In a deployment this would be a key-distribution service; in the
    reproduction it doubles as the trusted infrastructure the paper assumes,
    while still producing real HMAC keys so signatures are actual MACs.
    """

    def __init__(self, master_secret=b"repro-master-secret"):
        if isinstance(master_secret, str):
            master_secret = master_secret.encode("utf-8")
        self._master = master_secret

    # ------------------------------------------------------------------
    def pair_key(self, a, b):
        """Symmetric key shared by the unordered pair (a, b)."""
        lo, hi = sorted((repr(a), repr(b)))
        material = "pair:{}:{}".format(lo, hi).encode("utf-8")
        return hmac.new(self._master, material, hashlib.sha256).digest()

    def private_key_of(self, owner, requester):
        """Signing key of ``owner``; only ``owner`` itself may fetch it."""
        if requester != owner:
            raise KeyAccessError(
                "node %r may not read the private key of %r" % (requester, owner)
            )
        material = "priv:{}".format(repr(owner)).encode("utf-8")
        return hmac.new(self._master, material, hashlib.sha256).digest()

    def _private_key_unchecked(self, owner):
        """Internal: used by verifiers in the simulated public-key scheme.

        The scheme is modeled, not real asymmetric crypto: verification
        recomputes the MAC under the owner's key, but this method is only
        reachable through :class:`repro.crypto.auth.PublicKeyAuth.verify`,
        never through the signing path, so in-model forgery is impossible.
        """
        material = "priv:{}".format(repr(owner)).encode("utf-8")
        return hmac.new(self._master, material, hashlib.sha256).digest()
