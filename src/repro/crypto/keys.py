"""Key management.

The paper relies on Rodeh's Ensemble key management and assumes the
required cryptographic infrastructure exists (section 2.2).  We provide the
same abstraction: a :class:`KeyManager` that hands out

* one *pairwise symmetric key* per unordered node pair -- used by
  :class:`repro.crypto.auth.PairwiseSymmetricAuth`, where each broadcast is
  signed once per receiver (the n-1 MAC trick of Castro-Liskov that the
  paper adopts), and
* one *signing keypair* per node -- used by
  :class:`repro.crypto.auth.PublicKeyAuth` and by the reliable layer when a
  third node retransmits an original sender's message.

Impersonation is prevented structurally: private material is only released
to its owner (``private_key_of`` checks the requester), which realizes the
paper's "nodes cannot impersonate other nodes" assumption.  Verifiers use
the public :meth:`KeyManager.verify_key_of` accessor, which models the
*public* half of the simulated keypair: it can check signatures but is
never reachable from the signing path.

Keys are derived deterministically from one master secret and cached --
derivation is pure, so caching changes nothing but the wall-clock cost of
the sign/verify hot path.
"""

from __future__ import annotations

import hashlib
import hmac


class KeyAccessError(PermissionError):
    """A node asked for key material it does not own."""


class KeyManager:
    """Derives all keys deterministically from one master secret.

    In a deployment this would be a key-distribution service; in the
    reproduction it doubles as the trusted infrastructure the paper assumes,
    while still producing real HMAC keys so signatures are actual MACs.
    """

    def __init__(self, master_secret=b"repro-master-secret"):
        if isinstance(master_secret, str):
            master_secret = master_secret.encode("utf-8")
        self._master = master_secret
        self._pair_cache = {}   # (a, b) -> pairwise key (both orderings)
        self._mac_base_cache = {}  # (a, b) -> half-initialized HMAC state
        self._priv_cache = {}   # owner -> signing key
        # derivation-vs-cache accounting: with one manager shared across a
        # whole shard plane (repro.shard), each node pair derives exactly
        # once no matter how many groups touch it -- these counters are
        # what the shard tests assert that on
        self.pair_derivations = 0
        self.pair_cache_hits = 0
        self.signing_derivations = 0

    # ------------------------------------------------------------------
    def pair_key(self, a, b):
        """Symmetric key shared by the unordered pair (a, b)."""
        cached = self._pair_cache.get((a, b))
        if cached is not None:
            self.pair_cache_hits += 1
            return cached
        lo, hi = sorted((repr(a), repr(b)))
        material = "pair:{}:{}".format(lo, hi).encode("utf-8")
        key = hmac.new(self._master, material, hashlib.sha256).digest()
        self.pair_derivations += 1
        self._pair_cache[(a, b)] = key
        self._pair_cache[(b, a)] = key
        return key

    def mac_base(self, a, b):
        """Half-initialized HMAC-SHA256 state under ``pair_key(a, b)``.

        Callers ``copy()`` the returned state and ``update()`` the copy;
        the key schedule is paid once per pair per manager.  Like the
        pairwise-key cache, the state is shared across every authenticator
        holding this manager (one per co-hosted shard process), so the
        whole shard plane performs each key schedule once.
        """
        cached = self._mac_base_cache.get((a, b))
        if cached is not None:
            return cached
        base = hmac.new(self.pair_key(a, b), digestmod=hashlib.sha256)
        self._mac_base_cache[(a, b)] = base
        self._mac_base_cache[(b, a)] = base  # pairwise keys are symmetric
        return base

    def stats(self):
        """Cache-effectiveness snapshot of the (possibly shared) manager."""
        return {"pair_derivations": self.pair_derivations,
                "pair_cache_hits": self.pair_cache_hits,
                "signing_derivations": self.signing_derivations,
                "pairs_cached": len(self._pair_cache) // 2,
                "mac_bases_cached": len(self._mac_base_cache) // 2}

    def private_key_of(self, owner, requester):
        """Signing key of ``owner``; only ``owner`` itself may fetch it."""
        if requester != owner:
            raise KeyAccessError(
                "node %r may not read the private key of %r" % (requester, owner)
            )
        return self._signing_key(owner)

    def verify_key_of(self, owner):
        """Verification key for ``owner``'s signatures (public accessor).

        The public-key scheme is modeled, not real asymmetric crypto:
        verification recomputes the MAC under the owner's key.  In-model
        unforgeability is preserved structurally because *signing* goes
        through :meth:`private_key_of`, which enforces ownership, while
        this accessor is only used by
        :class:`repro.crypto.auth.PublicKeyAuth.verify`.
        """
        return self._signing_key(owner)

    def _signing_key(self, owner):
        cached = self._priv_cache.get(owner)
        if cached is not None:
            return cached
        material = "priv:{}".format(repr(owner)).encode("utf-8")
        key = hmac.new(self._master, material, hashlib.sha256).digest()
        self.signing_derivations += 1
        self._priv_cache[owner] = key
        return key

    def _private_key_unchecked(self, owner):
        """Deprecated internal alias kept for compatibility; use
        :meth:`verify_key_of`."""
        return self._signing_key(owner)
