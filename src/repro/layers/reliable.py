"""Reliable FIFO delivery with NAK-based retransmission (paper section 3.3).

Every broadcast kind is carried on one of two per-origin FIFO streams:

* the **app** stream (``"a"``): application casts -- subject to the flush
  protocol's wedge/cut at view changes;
* the **ctl** stream (``"c"``): protocol traffic (consensus, uniform
  broadcast, slander, sync, ...) -- never wedged, because the view-change
  protocols themselves must keep flowing while the view is wedged.

Point-to-point sends use per-pair streams (``"p"``).

Loss recovery is receiver-driven: a gap starts a timer; on expiry the
receiver NAKs the origin (and, on repeated misses, other members -- any
holder may retransmit).  A third-party retransmission wraps the *original*
message together with its *original bottom-layer signature*, so the
receiver can verify it is indeed the origin's message being re-sent --
the one place the paper needs cryptography above raw sends (section 1.2).

The layer feeds the fuzzy detectors: acknowledgements that could not
correspond to any sent message, malformed stream headers, and NAK floods
are verbose failures; persistent ack laggards are handled by the
stability tracker.
"""

from __future__ import annotations

from bisect import bisect_left
from zlib import crc32

from repro.core import message as mk
from repro.core.message import Message
from repro.layers.base import Layer

#: kinds that bypass reliability entirely
UNRELIABLE_KINDS = frozenset({
    mk.KIND_ACK, mk.KIND_NAK, mk.KIND_RETRANS, mk.KIND_HEARTBEAT,
    mk.KIND_MERGE, mk.KIND_NEWVIEW,
})

#: broadcast kinds carried on the app stream (wedged during view changes)
APP_STREAM_KINDS = frozenset({mk.KIND_CAST})

STREAM_APP = "a"
STREAM_CTL = "c"
STREAM_P2P = "p"


class _InStream:
    """Receive side of one FIFO stream from one origin."""

    __slots__ = ("next_seq", "buffer", "gap_timer", "nak_round")

    def __init__(self):
        self.next_seq = 1
        self.buffer = {}
        self.gap_timer = None
        self.nak_round = 0

    @property
    def delivered(self):
        return self.next_seq - 1


class ReliableLayer(Layer):
    """Reliable FIFO broadcast + point-to-point delivery."""

    name = "reliable"

    #: perf-parity switch (tests/test_perf_parity.py): with this off, the
    #: ack vector is rebuilt and repr-sorted from scratch on every call --
    #: the unoptimized reference path the incremental bookkeeping below
    #: must stay byte-identical to
    incremental_ack_vector = True

    #: perf-parity switch: senders memoize their delivered vector and its
    #: entry tuples, so in the simulator repeated acks arrive as the same
    #: objects -- receivers diff each ack against the sender's previous
    #: one by identity and re-validate/re-merge only the changed entries
    #: (validation is pure in the vector and monotone in out_seq; the
    #: stability merge is max-idempotent).  The trailing-gap scan is
    #: skipped only while provably clean (see _on_ack).  Off: every ack
    #: takes the full path.
    ack_vector_memo = True

    def __init__(self):
        super().__init__()
        self._reset_state()
        self.retransmissions_served = 0
        self.naks_sent = 0
        self.naks_suppressed = 0
        self.duplicates = 0
        self.archive_trimmed = 0

    def _reset_state(self):
        self._out_seq = {STREAM_APP: 0, STREAM_CTL: 0}
        self._p2p_out = {}
        self._in_streams = {}   # (origin, stream) -> _InStream
        self._archive = {}      # (origin, stream, seq) -> archived wire tuple
        self._since_ack = 0
        # incremental delivered-vector bookkeeping (built lazily because
        # self.me is unknown before the layer is attached): the entries of
        # _delivered_vector() kept sorted by repr at all times, updated
        # only for streams that actually changed
        self._dv_map = None     # map key -> current entry, or None (unbuilt)
        self._dv_keys = []      # sorted reprs of entries (parallel list)
        self._dv_entries = []   # entries, sorted by repr
        self._dv_tuple = None   # memoized tuple(self._dv_entries)
        self._dv_changed = {}   # key -> latest changed entry since last flush
        self._wedged = False
        self._cut = None        # {origin: seq} ceiling on the app stream
        self._cut_callback = None
        self._trailing_nak_at = {}  # (origin, stream) -> last trailing NAK
        self._ack_seen = {}     # sender -> last fully-processed ack vector
        self._ack_dirty = {}    # sender -> last trailing scan found a gap
        # NAK-storm suppression: per-window global NAK budget
        self._nak_window_start = -1.0
        self._naks_in_window = 0

    def state_sizes(self):
        return {
            "in_streams": len(self._in_streams),
            "stash": sum(len(s.buffer) for s in self._in_streams.values()),
            "archive": len(self._archive),
            "p2p_out": len(self._p2p_out),
            "ack_seen": len(self._ack_seen),
            "trailing_nak": len(self._trailing_nak_at),
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self):
        self._ack_timer = self.sim.schedule(self.config.ack_interval,
                                            self._ack_tick)

    def stop(self):
        if getattr(self, "_ack_timer", None) is not None:
            self._ack_timer.cancel()
            self._ack_timer = None
        # crash semantics: gap timers re-arm themselves forever while a
        # stream has holes -- a dead node must not keep NAKing
        for state in self._in_streams.values():
            if state.gap_timer is not None:
                state.gap_timer.cancel()
                state.gap_timer = None

    def on_view(self, view):
        for stream in self._in_streams.values():
            if stream.gap_timer is not None:
                stream.gap_timer.cancel()
        self._reset_state()
        self.process.stability.reset(view)

    # ------------------------------------------------------------------
    # downward path
    # ------------------------------------------------------------------
    def handle_down(self, msg):
        if msg.kind in UNRELIABLE_KINDS:
            self.send_down(msg)
            return
        if msg.dest is None:
            stream = STREAM_APP if msg.kind in APP_STREAM_KINDS else STREAM_CTL
            self._out_seq[stream] += 1
            seq = self._out_seq[stream]
            self._dv_refresh_out(stream)
            msg.push_header("rel", (stream, seq))
            self._archive_message(self.me, stream, seq, msg)
            self.send_down(msg)
            # self-delivery: a node receives its own broadcasts, in order
            own = msg.clone_for(self.me)
            self.sim.schedule(0.0, self._accept_stream, self.me, own,
                              stream, seq)
        else:
            seq = self._p2p_out.get(msg.dest, 0) + 1
            self._p2p_out[msg.dest] = seq
            msg.push_header("rel", (STREAM_P2P, seq))
            self._archive_message(self.me, STREAM_P2P + repr(msg.dest), seq, msg)
            self.send_down(msg)

    # ------------------------------------------------------------------
    # upward path
    # ------------------------------------------------------------------
    def handle_up(self, msg):
        kind = msg.kind
        if kind == mk.KIND_ACK:
            self._on_ack(msg)
        elif kind == mk.KIND_NAK:
            self._on_nak(msg)
        elif kind == mk.KIND_RETRANS:
            self._on_retrans(msg)
        elif kind in UNRELIABLE_KINDS:
            self.send_up(msg)
        else:
            header = msg.pop_header("rel")
            if (not isinstance(header, tuple) or len(header) != 2
                    or not isinstance(header[1], int) or header[1] < 1):
                if self.config.byzantine:
                    self.process.verbose_detector.illegal(
                        msg.sender, "rel:malformed-header")
                return
            stream, seq = header
            if stream == STREAM_P2P:
                self._accept_p2p(msg, seq)
            elif stream in (STREAM_APP, STREAM_CTL):
                self._accept_stream(msg.origin, msg, stream, seq)
            elif self.config.byzantine:
                self.process.verbose_detector.illegal(
                    msg.sender, "rel:unknown-stream")

    # ------------------------------------------------------------------
    # stream acceptance and in-order delivery
    # ------------------------------------------------------------------
    def _accept_stream(self, origin, msg, stream, seq):
        if self.process.stopped:
            return  # a pre-crash self-delivery event racing the stop
        key = (origin, stream)
        state = self._in_streams.get(key)
        if state is None:
            state = _InStream()
            self._in_streams[key] = state
            # a fresh stream contributes a 0-entry to the ack vector even
            # before anything is delivered
            self._dv_refresh_stream(origin, stream, state)
        if seq < state.next_seq or seq in state.buffer:
            self.duplicates += 1
            return
        if msg.origin != origin:
            return
        state.buffer[seq] = msg
        if origin != self.me:
            self._archive_from(msg, stream, seq)
        self._drain(origin, stream, state)
        if state.buffer and state.gap_timer is None:
            state.gap_timer = self.sim.schedule(
                self._retrans_delay(origin, stream, state.nak_round),
                self._gap_expired, origin, stream)

    def _drain(self, origin, stream, state):
        while state.next_seq in state.buffer:
            seq = state.next_seq
            if (stream == STREAM_APP
                    and not self._may_deliver_app(origin, seq)):
                break
            msg = state.buffer.pop(seq)
            state.next_seq = seq + 1
            self._since_ack += 1
            self.send_up(msg)
        if not state.buffer:
            # caught up: the next loss starts a fresh backoff schedule
            state.nak_round = 0
            if state.gap_timer is not None:
                state.gap_timer.cancel()
                state.gap_timer = None
        self._dv_refresh_stream(origin, stream, state)
        if self._since_ack >= self.config.ack_every:
            self._broadcast_ack()
        stability = self.process.stability
        if self.incremental_ack_vector:
            # the ack table keeps per-(origin, stream) maxima and the vector
            # entries are monotone, so feeding only the entries that changed
            # since the last flush produces the identical table; on_ack still
            # runs (and notifies listeners) once per drain, as before
            if self._dv_map is None:
                self._dv_build()
            changed = self._dv_changed
            if changed:
                self._dv_changed = {}
                stability.on_ack(self.me, tuple(changed.values()))
            else:
                stability.on_ack(self.me, ())
        else:
            stability.on_local_progress(self._delivered_vector())
        if self._cut is not None and self._cut_callback is not None:
            if self.cut_complete(self._cut):
                callback, self._cut_callback = self._cut_callback, None
                callback()

    def _may_deliver_app(self, origin, seq):
        if self._cut is not None:
            return seq <= self._cut.get(origin, 0)
        return not self._wedged

    def _accept_p2p(self, msg, seq):
        if msg.dest != self.me:
            return
        key = (msg.origin, STREAM_P2P)
        state = self._in_streams.get(key)
        if state is None:
            state = _InStream()
            self._in_streams[key] = state
        if seq < state.next_seq or seq in state.buffer:
            self.duplicates += 1
            return
        state.buffer[seq] = msg
        while state.next_seq in state.buffer:
            self.send_up(state.buffer.pop(state.next_seq))
            state.next_seq += 1
        if state.buffer and state.gap_timer is None:
            state.gap_timer = self.sim.schedule(
                self._retrans_delay(msg.origin, STREAM_P2P, state.nak_round),
                self._gap_expired, msg.origin, STREAM_P2P)

    # ------------------------------------------------------------------
    # acknowledgements
    # ------------------------------------------------------------------
    def _delivered_vector(self):
        if not self.incremental_ack_vector:
            # reference path: rebuild + repr-sort from scratch (kept for the
            # perf-parity tests; the incremental path below must return
            # byte-identical vectors)
            vector = []
            for (origin, stream), state in self._in_streams.items():
                if stream in (STREAM_APP, STREAM_CTL):
                    top = state.delivered
                    if state.buffer:
                        # also acknowledge buffered-but-undeliverable prefix
                        # so the flush can account for wedged messages we hold
                        held = state.delivered
                        while held + 1 in state.buffer:
                            held += 1
                        top = held
                    vector.append((origin, stream, top))
            vector.append((self.me, STREAM_APP, self._out_seq[STREAM_APP]))
            vector.append((self.me, STREAM_CTL, self._out_seq[STREAM_CTL]))
            return tuple(sorted(vector, key=repr))
        if self._dv_map is None:
            self._dv_build()
        vector = self._dv_tuple
        if vector is None:
            vector = self._dv_tuple = tuple(self._dv_entries)
        return vector

    # ------------------------------------------------------------------
    # incremental delivered-vector maintenance: the reference path above
    # rebuilds and repr-sorts the whole vector on every drain, which
    # profiles as the single hottest non-crypto call in the fig5 workloads.
    # Instead we keep the entries in a repr-sorted parallel list pair and
    # touch only the one entry whose stream actually moved.  Entries with
    # equal repr are equal tuples (origins are ints/strings here), so
    # which duplicate gets removed is irrelevant -- matching the stable
    # sort of the reference path.
    # ------------------------------------------------------------------
    def _dv_build(self):
        self._dv_map = {}
        self._dv_keys = []
        self._dv_entries = []
        self._dv_changed = {}
        for (origin, stream), state in self._in_streams.items():
            self._dv_refresh_stream(origin, stream, state)
        self._dv_refresh_out(STREAM_APP)
        self._dv_refresh_out(STREAM_CTL)

    def _dv_set(self, key, entry):
        old = self._dv_map.get(key)
        if old == entry:
            return
        keys = self._dv_keys
        entries = self._dv_entries
        if old is not None:
            # NB: repr-order is not stable under counter increments
            # ("... 10)" sorts before "... 9)"), so entries must be
            # re-inserted at their new position, never updated in place
            pos = bisect_left(keys, repr(old))
            del keys[pos]
            del entries[pos]
        text = repr(entry)
        pos = bisect_left(keys, text)
        keys.insert(pos, text)
        entries.insert(pos, entry)
        self._dv_map[key] = entry
        self._dv_tuple = None
        self._dv_changed[key] = entry

    def _dv_refresh_stream(self, origin, stream, state):
        if self._dv_map is None:
            return  # unbuilt (or reference mode); built lazily on first use
        if stream != STREAM_APP and stream != STREAM_CTL:
            return  # p2p streams are not acknowledged
        top = state.next_seq - 1
        buffer = state.buffer
        if buffer:
            while top + 1 in buffer:
                top += 1
        self._dv_set(("in", origin, stream), (origin, stream, top))

    def _dv_refresh_out(self, stream):
        if self._dv_map is None:
            return
        self._dv_set(("out", stream),
                     (self.me, stream, self._out_seq[stream]))

    def _ack_tick(self):
        self._broadcast_ack()
        self._ack_timer = self.sim.schedule(self.config.ack_interval,
                                            self._ack_tick)

    def _broadcast_ack(self):
        self._since_ack = 0
        vector = self._delivered_vector()
        if self.config.ack_mode == "gossip":
            self.count("ack_gossips_sent")
            self._gossip_ack(vector)
            return
        self.count("acks_sent")
        ack = Message(mk.KIND_ACK, self.me, self.view.vid, vector,
                      payload_size=6 * len(vector))
        self.send_down(ack)

    def _gossip_ack(self, vector):
        """Epidemic ack dissemination ([29]): send the aggregated matrix
        to a few random peers instead of broadcasting our own vector."""
        stability = self.process.stability
        stability.on_local_progress(vector)
        rows = stability.matrix_rows()
        peers = [m for m in self.view.mbrs if m != self.me]
        if not peers:
            return
        rng = self.sim.rng
        rng.shuffle(peers)
        size = 8 + sum(6 * len(row_vector) for _m, row_vector in rows)
        for peer in peers[: self.config.ack_gossip_fanout]:
            ack = Message(mk.KIND_ACK, self.me, self.view.vid,
                          ("matrix", rows), payload_size=size, dest=peer)
            self.send_down(ack)

    def _on_ack(self, msg):
        vector = msg.payload
        if (isinstance(vector, tuple) and len(vector) == 2
                and vector[0] == "matrix"):
            self._on_matrix_ack(msg, vector[1])
            return
        if not isinstance(vector, tuple):
            if self.config.byzantine:
                self.process.verbose_detector.illegal(msg.sender, "rel:bad-ack")
            return
        if self.ack_vector_memo:
            # Receive-side ack diffing.  Senders memoize their delivered
            # vector and its entry tuples (_dv_entries reuses unchanged
            # entry objects across rebuilds), so in the simulator the
            # repeats arrive as the *same objects*.  Three levels:
            #
            # * identical vector object: it already validated (validation
            #   is pure in the vector) and merged (max-merge idempotent);
            #   only the listener notify -- on_ack(()) -- and, when the
            #   last scan found a gap, trailing recovery still run;
            # * same-sender update: entries present (by identity) in the
            #   previously-accepted vector are already validated/merged --
            #   only the changed entries take the full path.  _ack_seen
            #   keeps the previous vector alive, so an id() collision
            #   with its entries is impossible;
            # * first ack from a sender (or a real-network decode, which
            #   always produces fresh tuples): full reference path below.
            #
            # Trailing recovery is skippable only when provably a no-op:
            # _ack_dirty records whether the last scan of this sender's
            # vector found any entry ahead of our stream tops.  Tops only
            # grow within a view (delivered + contiguous buffered
            # prefix), so a clean entry stays clean forever; a dirty
            # vector keeps full scans (the NAK re-request path) until a
            # scan comes back clean.  Over a real network every ack
            # misses the memo and behaves exactly like the reference.
            prev = self._ack_seen.get(msg.sender)
            if vector is prev:
                self.process.stability.on_ack(msg.sender, ())
                if self._ack_dirty.get(msg.sender):
                    self._ack_dirty[msg.sender] = \
                        self._recover_trailing(vector)
                return
            if prev is not None:
                prev_ids = set(map(id, prev))
                entries = tuple(entry for entry in vector
                                if id(entry) not in prev_ids)
            else:
                entries = vector
        else:
            entries = vector
        for entry in entries:
            if (not isinstance(entry, tuple) or len(entry) != 3
                    or not isinstance(entry[2], int) or entry[2] < 0):
                if self.config.byzantine:
                    self.process.verbose_detector.illegal(
                        msg.sender, "rel:bad-ack-entry")
                return
            origin, stream, cum = entry
            # verbose check: acknowledging our own stream beyond what we
            # ever sent is a message a correct process could never send
            # (out_seq only grows, so entries validated with an earlier
            # vector cannot become illegal and are safe to skip above)
            if (origin == self.me and stream in self._out_seq
                    and cum > self._out_seq[stream]
                    and self.config.byzantine):
                self.process.verbose_detector.illegal(
                    msg.sender, "rel:ack-for-unsent")
                return
        if self.ack_vector_memo:
            self._ack_seen[msg.sender] = vector
            self.process.stability.on_ack(msg.sender, entries)
            if entries is vector or self._ack_dirty.get(msg.sender):
                self._ack_dirty[msg.sender] = self._recover_trailing(vector)
            else:
                self._ack_dirty[msg.sender] = \
                    self._recover_trailing(entries)
            return
        self.process.stability.on_ack(msg.sender, vector)
        self._recover_trailing(vector)

    def _on_matrix_ack(self, msg, rows):
        if self.config.ack_mode != "gossip":
            if self.config.byzantine:
                self.process.verbose_detector.illegal(
                    msg.sender, "rel:unexpected-matrix-ack")
            return
        if not isinstance(rows, tuple):
            if self.config.byzantine:
                self.process.verbose_detector.illegal(
                    msg.sender, "rel:bad-matrix-ack")
            return
        clean = []
        for row in rows:
            if (not isinstance(row, tuple) or len(row) != 2
                    or not isinstance(row[1], tuple)):
                continue
            member, vector = row
            if member not in self.view.mbrs:
                continue
            entries = tuple(entry for entry in vector
                            if isinstance(entry, tuple) and len(entry) == 3
                            and isinstance(entry[2], int) and entry[2] >= 0)
            # overstating OUR own stream is still detectable
            if self.config.byzantine:
                bogus = any(origin == self.me and stream in self._out_seq
                            and cum > self._out_seq[stream]
                            for origin, stream, cum in entries)
                if bogus:
                    self.process.verbose_detector.illegal(
                        msg.sender, "rel:matrix-ack-for-unsent")
                    return
            clean.append((member, entries))
            if member == msg.sender:
                self._recover_trailing(entries)
        self.process.stability.on_matrix(clean)

    def _recover_trailing(self, vector):
        """Chase messages nobody followed up on.

        Gap-based NAKs need a later message to reveal the hole; the last
        message of a burst has none.  Ack vectors double as existence
        proofs: if any member acknowledges an origin's stream beyond what
        we hold, the missing suffix is real and we request it.

        Returns True if any entry was ahead of our stream tops -- even a
        NAK-throttled one, which must stay eligible for a re-request on a
        later scan (the ack-diff memo in _on_ack keys off this).
        """
        dirty = False
        now = self.sim.now
        # the incremental delivered-vector map already holds each
        # in-stream's top (delivered + buffered prefix), refreshed by
        # every _drain -- reuse it instead of rescanning the buffer per
        # ack entry (the scan made each ack O(members x window))
        dv_map = self._dv_map if self.incremental_ack_vector else None
        for origin, stream, cum in vector:
            if stream not in (STREAM_APP, STREAM_CTL) or origin == self.me:
                continue
            if dv_map is not None:
                entry = dv_map.get(("in", origin, stream))
                top = entry[2] if entry is not None else 0
            else:
                state = self._in_streams.get((origin, stream))
                top = 0
                if state is not None:
                    top = state.delivered
                    while top + 1 in state.buffer:
                        top += 1
            if cum <= top:
                continue
            dirty = True
            key = (origin, stream)
            last = self._trailing_nak_at.get(key, -1.0)
            if now - last < self.config.retrans_timeout:
                continue
            self._trailing_nak_at[key] = now
            # bound the chase: a lying ack cannot make us request unbounded
            # ranges the origin never sent
            self.request_range(origin, stream, top + 1,
                               min(cum, top + self.config.flow_window))
        return dirty

    # ------------------------------------------------------------------
    # loss recovery
    # ------------------------------------------------------------------
    def _gap_expired(self, origin, stream):
        key = (origin, stream)
        state = self._in_streams.get(key)
        if state is None:
            return
        state.gap_timer = None
        if not state.buffer:
            return
        want_from = state.next_seq
        want_to = max(state.buffer) - 1
        if stream == STREAM_APP and self._cut is not None:
            want_to = min(want_to, self._cut.get(origin, 0) - 1)
        missing = [s for s in range(want_from, want_to + 1)
                   if s not in state.buffer]
        if missing:
            self._send_nak(origin, stream, missing, state.nak_round)
            state.nak_round += 1
        state.gap_timer = self.sim.schedule(
            self._retrans_delay(origin, stream, state.nak_round),
            self._gap_expired, origin, stream)

    def _retrans_delay(self, origin, stream, nak_round):
        """Bounded exponential backoff + jitter for retransmission retries.

        Round 0 retries at the base timeout (the pre-hardening behaviour);
        repeated misses double the wait up to ``retrans_backoff_max``, so a
        partitioned or dead origin is not NAKed at full rate forever.  The
        jitter decorrelates the receivers of one lost broadcast without
        consuming simulator RNG draws (which would shift every seeded
        history): it is a pure hash of (receiver, origin, stream, round).
        """
        config = self.config
        delay = config.retrans_timeout * (1 << min(nak_round, 8))
        if delay > config.retrans_backoff_max:
            delay = config.retrans_backoff_max
        jitter = config.retrans_jitter
        if jitter:
            salt = crc32(repr((self.me, origin, stream, nak_round))
                         .encode("utf-8"))
            delay *= 1.0 + jitter * (salt & 0x3FF) / 1024.0
        return delay

    def request_range(self, origin, stream, first, last, nak_round=0):
        """Explicit recovery request -- used by the flush protocol."""
        missing = []
        key = (origin, stream)
        state = self._in_streams.get(key)
        delivered = state.delivered if state else 0
        buffered = state.buffer if state else {}
        for seq in range(max(first, delivered + 1), last + 1):
            if seq not in buffered:
                missing.append(seq)
        if missing:
            self._send_nak(origin, stream, missing, nak_round)

    def _send_nak(self, origin, stream, missing, nak_round):
        # first ask the origin; on repeats, rotate through other members,
        # since any holder can retransmit with the origin's signature
        # (p2p copies exist only at the origin)
        if nak_round == 0 or origin == self.me or stream == STREAM_P2P:
            target = origin
        else:
            others = [m for m in self.view.mbrs if m not in (self.me, origin)]
            if not others:
                target = origin
            else:
                target = others[nak_round % len(others)]
        if target == self.me:
            return
        # NAK-storm suppression: under heavy loss (or a chaos corruption
        # campaign) every gap timer fires at once and the repair traffic
        # can drown the repairs themselves.  Cap the NAKs this node emits
        # per retrans_timeout window; suppressed requests are retried by
        # the (backed-off) gap timers, so recovery still converges.
        budget = self.config.nak_window_budget
        if budget:
            now = self.sim.now
            if now - self._nak_window_start >= self.config.retrans_timeout:
                self._nak_window_start = now
                self._naks_in_window = 0
            if self._naks_in_window >= budget:
                self.naks_suppressed += 1
                self.count("naks_suppressed")
                return
            self._naks_in_window += 1
        self.naks_sent += 1
        self.count("naks_sent")
        payload = (origin, stream, tuple(missing[:64]))
        nak = Message(mk.KIND_NAK, self.me, self.view.vid, payload,
                      payload_size=8 + 4 * len(payload[2]), dest=target)
        self.send_down(nak)

    def _on_nak(self, msg):
        if self.config.byzantine:
            if self.process.verbose_detector.observe(msg.sender, "rel:nak"):
                return
        payload = msg.payload
        if (not isinstance(payload, tuple) or len(payload) != 3
                or not isinstance(payload[2], tuple)):
            if self.config.byzantine:
                self.process.verbose_detector.illegal(msg.sender, "rel:bad-nak")
            return
        origin, stream, seqs = payload
        for seq in seqs:
            if not isinstance(seq, int):
                continue
            if stream == STREAM_P2P:
                # p2p streams are per-pair; only the origin holds the copy,
                # filed under the requester's pair key
                wire = self._archive.get(
                    (origin, STREAM_P2P + repr(msg.sender), seq))
            else:
                wire = self._archive.get((origin, stream, seq))
            if wire is None:
                continue
            self.retransmissions_served += 1
            self.count("retransmissions_served")
            retrans = Message(mk.KIND_RETRANS, self.me, self.view.vid, wire,
                              payload_size=wire[6] + 24, dest=msg.sender)
            self.send_down(retrans)

    def _on_retrans(self, msg):
        wire = msg.payload
        if not isinstance(wire, tuple) or len(wire) != 9:
            if self.config.byzantine:
                self.process.verbose_detector.illegal(
                    msg.sender, "rel:bad-retrans")
            return
        (kind, origin, vid_wire, stream, seq, payload, size, signature,
         msg_id) = wire
        if not isinstance(seq, int):
            return
        if isinstance(stream, str) and stream.startswith(STREAM_P2P):
            inner = Message(kind, origin, self.view.vid, payload, size,
                            dest=self.me, msg_id=msg_id)
            inner.sender = origin
            self._accept_p2p(inner, seq)
            return
        if stream not in (STREAM_APP, STREAM_CTL):
            return
        inner = Message(kind, origin, self.view.vid, payload, size,
                        msg_id=msg_id)
        inner.push_header("rel", (stream, seq))
        inner.signature = signature
        if (msg.sender != origin and self.config.byzantine
                and self.config.crypto != "none"):
            # third-party retransmission: verify the ORIGIN's signature over
            # the reconstructed content -- p must prove it is q's message.
            # auth_token() recomputes the digest over the reconstruction,
            # which matches the origin's memoized digest iff the content does
            ok, cost = self.process.auth.verify(
                self.me, origin, inner.auth_token(), signature)
            self.process.cpu.charge(cost)
            if not ok:
                self.process.verbose_detector.illegal(
                    msg.sender, "rel:forged-retrans")
                return
        inner.pop_header("rel")
        inner.sender = origin
        self._accept_stream(origin, inner, stream, seq)

    # ------------------------------------------------------------------
    # archiving
    # ------------------------------------------------------------------
    def _archive_message(self, origin, stream, seq, msg):
        self._archive[(origin, stream, seq)] = self._wire_of(msg, stream, seq)

    def _archive_from(self, msg, stream, seq):
        self._archive[(msg.origin, stream, seq)] = self._wire_of(msg, stream, seq)

    @staticmethod
    def _wire_of(msg, stream, seq):
        vid = msg.view_id.to_wire() if msg.view_id is not None else None
        return (msg.kind, msg.origin, vid, stream, seq, msg.payload,
                msg.payload_size, msg.signature, msg.msg_id)

    def trim_archive(self):
        """Buffer management (paper section 3.1): messages acknowledged
        by every low-fuzziness member are dropped from the retransmission
        archive.  Called periodically by the stability tracker."""
        stability = self.process.stability
        members = self.view.mbrs
        floors = {}
        removed = []
        for key in self._archive:
            origin, stream, seq = key
            if stream not in (STREAM_APP, STREAM_CTL):
                continue  # p2p acks are not tracked; keep those copies
            group = (origin, stream)
            if group not in floors:
                floors[group] = stability.min_ack(origin, stream, members,
                                                  ignore_fuzzy=True)
            if seq <= floors[group]:
                removed.append(key)
        for key in removed:
            del self._archive[key]
        self.archive_trimmed += len(removed)

    @property
    def archive_size(self):
        return len(self._archive)

    # ------------------------------------------------------------------
    # flush support (wedge / cut), driven by the membership layer
    # ------------------------------------------------------------------
    def wedge(self):
        """Stop delivering new app-stream messages (view change started)."""
        self._wedged = True

    def stream_state(self):
        """Per-origin contiguously-received app-stream maxima (for SYNC)."""
        state = {}
        for (origin, stream), in_stream in self._in_streams.items():
            if stream != STREAM_APP:
                continue
            top = in_stream.delivered
            while top + 1 in in_stream.buffer:
                top += 1
            state[origin] = top
        state[self.me] = self._out_seq[STREAM_APP]
        return state

    def set_cut(self, cut, on_complete=None):
        """Fix the agreed app-stream cut; deliver up to it, recover gaps."""
        self._cut = dict(cut)
        self._cut_callback = on_complete
        for origin, last in self._cut.items():
            if origin == self.me:
                continue
            key = (origin, STREAM_APP)
            state = self._in_streams.get(key)
            if state is None and last > 0:
                state = _InStream()
                self._in_streams[key] = state
            if state is not None:
                self._drain(origin, STREAM_APP, state)
            self.request_range(origin, STREAM_APP, 1, last)
        if self._cut_callback is not None and self.cut_complete(self._cut):
            callback, self._cut_callback = self._cut_callback, None
            callback()

    def cut_complete(self, cut):
        """Have we *delivered* every app message up to the cut?"""
        for origin, last in cut.items():
            if origin == self.me:
                continue
            state = self._in_streams.get((origin, STREAM_APP))
            delivered = state.delivered if state else 0
            if delivered < last:
                return False
        return True
