"""Top layer: the boundary between the stack and the application.

Downward, it stamps application casts with a message id and the current
view id -- if the stack is blocked by a running view change, casts are
buffered and stamped when the new view is installed, so a message is
always sent (and therefore delivered) in a single view (Definition 2.2,
item 2).

Upward, it turns messages into application events, hands them to the
:class:`repro.core.endpoint.GroupEndpoint`, and records everything in the
process history for the property checker.
"""

from __future__ import annotations

from collections import deque

from repro.core import message as mk
from repro.layers.base import Layer


class TopLayer(Layer):
    """Delivery to the application and cast admission control."""

    name = "top"

    def __init__(self):
        super().__init__()
        self._cast_counter = 0
        self._blocked_queue = deque()
        self.casts_sent = 0
        self.delivered = 0

    # ------------------------------------------------------------------
    def submit_cast(self, payload, size):
        """Entry point used by the endpoint for ``cast``."""
        self._cast_counter += 1
        # the cast counter restarts at 0 in a rebooted incarnation, and the
        # wire path correctly treats the reboot's casts as new messages --
        # so the application-facing id must be incarnation-qualified or two
        # distinct messages would share an id (first-boot ids keep the
        # historical 2-tuple shape)
        incarnation = self.process.incarnation
        if incarnation:
            msg_id = (self.me, self._cast_counter, incarnation)
        else:
            msg_id = (self.me, self._cast_counter)
        self.count("casts_submitted")
        if self.stack.blocked:
            self._blocked_queue.append((msg_id, payload, size))
        else:
            self._emit_cast(msg_id, payload, size)
        return msg_id

    def submit_send(self, dest, payload, size):
        """Entry point used by the endpoint for point-to-point ``send``."""
        from repro.core.message import Message
        msg = Message(mk.KIND_SEND, self.me, self.view.vid, payload, size,
                      dest=dest)
        self.count("sends_submitted")
        self.process.history.record_send(self.sim.now, dest, self.view.vid)
        self.handle_down(msg)

    def _emit_cast(self, msg_id, payload, size):
        from repro.core.message import Message
        msg = Message(mk.KIND_CAST, self.me, self.view.vid, payload, size,
                      msg_id=msg_id)
        self.casts_sent += 1
        self.count("casts_sent")
        # opens the message's span: the first hop of its life is entering
        # this layer on its origin node, headed down
        self.trace_mark(msg, "down")
        self.process.history.record_cast(self.sim.now, msg_id, self.view.vid)
        self.handle_down(msg)

    def requeue_casts(self, items):
        """Casts pulled back from the flow queue at a view change; they
        go to the front so per-origin FIFO (by msg_id counter) holds."""
        for item in reversed(items):
            self._blocked_queue.appendleft(item)

    def on_view(self, view):
        queued, self._blocked_queue = self._blocked_queue, deque()
        for msg_id, payload, size in queued:
            self._emit_cast(msg_id, payload, size)

    # ------------------------------------------------------------------
    def handle_up(self, msg):
        process = self.process
        now = self.sim.now
        if msg.kind == mk.KIND_CAST:
            self.delivered += 1
            self.count("casts_delivered")
            self.trace_mark(msg, "deliver")
            obs = self.obs
            if obs is not None and obs.metrics_enabled:
                born = obs.origin_time(msg.msg_id)
                if born is not None:
                    obs.metrics.observe(self.me, self.name, "cast_latency",
                                        now - born)
            process.history.record_cast_deliver(
                now, msg.msg_id, msg.origin, msg.payload, self.view.vid)
            endpoint = process.endpoint
            if endpoint is not None:
                endpoint.dispatch_cast(now, msg.origin, msg.payload,
                                       self.view.vid, msg.msg_id)
        elif msg.kind == mk.KIND_SEND:
            self.count("sends_delivered")
            process.history.record_send_deliver(
                now, msg.origin, msg.payload, self.view.vid)
            endpoint = process.endpoint
            if endpoint is not None:
                endpoint.dispatch_send(now, msg.origin, msg.payload,
                                       self.view.vid, msg.msg_id)
        # anything else that reached the top is absorbed

    def handle_down(self, msg):
        self.send_down(msg)
