"""Fragmentation and reassembly (paper section 3.3).

Application casts larger than the network MTU are split into fragments,
each sent as a normal app-stream cast.  Because the reliable layer below
delivers each origin's app stream in FIFO order without gaps, reassembly
is a simple accumulation of consecutive fragments.

A fragment that could not belong to any message under assembly (wrong
index, impossible count) is a verbose failure of its sender.
"""

from __future__ import annotations

from repro.core import message as mk
from repro.core.message import Message
from repro.layers.base import Layer


class FragmentLayer(Layer):
    """Splits oversized casts; reassembles on the way up."""

    name = "fragment"

    def __init__(self):
        super().__init__()
        self._assembly = {}  # origin -> (count, received_chunks, sizes)
        self.fragmented = 0
        self.reassembled = 0

    def on_view(self, view):
        self._assembly.clear()

    # ------------------------------------------------------------------
    def handle_down(self, msg):
        mtu = self.config.mtu
        if (msg.kind != mk.KIND_CAST or msg.dest is not None
                or msg.payload_size <= mtu):
            self.send_down(msg)
            return
        total = msg.payload_size
        count = -(-total // mtu)  # ceil division
        self.fragmented += 1
        self.count("casts_fragmented")
        for index in range(count):
            chunk_size = mtu if index < count - 1 else total - mtu * (count - 1)
            # only the last fragment carries the payload object; earlier
            # ones carry filler of the right wire size
            chunk_payload = msg.payload if index == count - 1 else None
            frag = Message(mk.KIND_CAST, msg.origin, msg.view_id,
                           chunk_payload, chunk_size, msg_id=msg.msg_id)
            frag.push_header("frag", (index, count, total))
            self.send_down(frag)

    # ------------------------------------------------------------------
    def handle_up(self, msg):
        header = msg.pop_header("frag")
        if header is None:
            self.send_up(msg)
            return
        if (not isinstance(header, tuple) or len(header) != 3
                or not all(isinstance(x, int) for x in header)):
            self._verbose(msg, "frag:malformed")
            return
        index, count, total = header
        if count < 1 or not 0 <= index < count or total < 0:
            self._verbose(msg, "frag:bad-bounds")
            return
        state = self._assembly.get(msg.origin)
        if state is None:
            if index != 0:
                self._verbose(msg, "frag:out-of-order")
                return
            state = [count, 0, total]
            self._assembly[msg.origin] = state
        expected_count, received, expected_total = state
        if count != expected_count or total != expected_total or index != received:
            self._verbose(msg, "frag:inconsistent")
            del self._assembly[msg.origin]
            return
        state[1] += 1
        if state[1] == count:
            del self._assembly[msg.origin]
            self.reassembled += 1
            self.count("casts_reassembled")
            whole = Message(mk.KIND_CAST, msg.origin, msg.view_id,
                            msg.payload, total, msg_id=msg.msg_id)
            whole.sender = msg.sender
            self.send_up(whole)

    def _verbose(self, msg, reason):
        if self.config.byzantine:
            self.process.verbose_detector.illegal(msg.sender, reason)
