"""Layer and stack glue (paper Figure 2, Ensemble's micro-protocol model).

A node's group-communication module is a stack of small layers.  Messages
travel *down* from the application (each layer may push a header and pass
on, or originate its own messages) and *up* from the network (each layer
pops its header, acts, and passes on).  Layers also receive *control*
notifications -- view installation, block/unblock, fuzzy level changes,
suspicion adoption -- broadcast to the whole stack, which is how Ensemble
layers coordinate without knowing each other.

A layer that wants to talk to its peers at other nodes simply creates a
:class:`repro.core.message.Message` with its own ``kind`` and sends it
down: the reliable layer gives every broadcast kind FIFO delivery, the
bottom layer signs it once -- no protocol-level signatures anywhere, as
the paper requires.
"""

from __future__ import annotations


class Layer:
    """Base micro-protocol layer.  Subclasses override the handlers."""

    name = "layer"

    def __init__(self):
        self.stack = None
        # bound at attach() time; None until the layer joins a stack
        self.process = None
        self.sim = None
        self.config = None
        self.me = None

    # wiring -----------------------------------------------------------
    def attach(self, stack):
        # hot-path attribute caching (docs/PERFORMANCE.md): process, sim,
        # config and node id never change for the lifetime of a stack, so
        # they are plain attributes instead of chained property lookups --
        # the layer dispatch path reads them on every message hop.  The
        # view is NOT cached here: process.view is reassigned on every
        # view installation, so it stays a property.
        self.stack = stack
        process = stack.process
        self.process = process
        self.sim = process.sim
        self.config = process.config
        self.me = process.node_id

    @property
    def view(self):
        return self.stack.process.view

    # message path -----------------------------------------------------
    def handle_down(self, msg):
        """A message heading to the network; default: pass through."""
        self.send_down(msg)

    def handle_up(self, msg):
        """A message arriving from the network; default: pass through."""
        self.send_up(msg)

    def send_down(self, msg):
        self.stack.down_from(self, msg)

    def send_up(self, msg):
        self.stack.up_from(self, msg)

    # introspection -----------------------------------------------------
    def state_sizes(self):
        """``{metric: entry_count}`` for this layer's unbounded-looking
        state stores.  The bounded-state checker samples these during soak
        runs: every store a layer grows in response to traffic or faults
        should be reported here so monotone growth is caught, not guessed.
        """
        return {}

    # observability -----------------------------------------------------
    @property
    def obs(self):
        """The cluster's observability plane, or None when disabled."""
        return self.stack.obs

    def count(self, name, n=1):
        """Bump the per-(node, layer) counter ``name``; no-op when off."""
        obs = self.stack.obs
        if obs is not None and obs.metrics_enabled:
            obs.metrics.inc(self.me, self.name, name, n)

    def observe(self, name, value):
        """Record ``value`` into the per-(node, layer) histogram."""
        obs = self.stack.obs
        if obs is not None and obs.metrics_enabled:
            obs.metrics.observe(self.me, self.name, name, value)

    def set_gauge(self, name, value):
        obs = self.stack.obs
        if obs is not None and obs.metrics_enabled:
            obs.metrics.set_gauge(self.me, self.name, name, value)

    def trace_mark(self, msg, action, detail=None):
        """Annotate the message's span without counting a layer hop."""
        obs = self.stack.obs
        if obs is not None:
            obs.mark(self.me, self.name, action, msg, detail)

    # control path ------------------------------------------------------
    def on_view(self, view):
        """A new view was installed (called bottom-up on every layer)."""

    def on_control(self, event, data):
        """A stack-wide control notification; ``event`` is a string."""

    def start(self):
        """Called once when the process boots (timers go here)."""

    def stop(self):
        """Called when the process shuts down."""


class LayerStack:
    """Orders the layers and routes messages/control between them."""

    def __init__(self, process, layers):
        self.process = process
        # the cluster's observability plane (None when disabled): every
        # hook below is a single is-None branch in the disabled case
        self.obs = getattr(process, "obs", None)
        self.layers = list(layers)  # bottom first
        for idx, layer in enumerate(self.layers):
            layer._idx = idx
            layer.attach(self)
        # precomputed neighbours: up/down dispatch runs once per layer per
        # message, so avoid the index arithmetic + list lookup on each hop
        for idx, layer in enumerate(self.layers):
            layer._below = self.layers[idx - 1] if idx > 0 else None
            layer._above = (self.layers[idx + 1]
                            if idx + 1 < len(self.layers) else None)
        if self.obs is None:
            # with observability off there is nothing to record per hop:
            # bind each layer's send_up/send_down straight to its
            # neighbour's handler, cutting two call frames per hop on the
            # hottest path in the system.  (obs is fixed for the stack's
            # lifetime -- it is read from the process at construction.)
            for layer in self.layers:
                if layer._above is not None:
                    layer.send_up = layer._above.handle_up
                if layer._below is not None:
                    layer.send_down = layer._below.handle_down
        self._by_name = {layer.name: layer for layer in self.layers}
        if len(self._by_name) != len(self.layers):
            raise ValueError("duplicate layer names in stack")
        self.blocked = False

    def layer(self, name):
        return self._by_name[name]

    def has_layer(self, name):
        return name in self._by_name

    # ------------------------------------------------------------------
    def down_from(self, layer, msg):
        below = layer._below
        if below is None:
            raise RuntimeError("bottom layer cannot send further down")
        if self.obs is not None:
            self.obs.hop(self.process.node_id, below.name, "down", msg)
        below.handle_down(msg)

    def up_from(self, layer, msg):
        above = layer._above
        if above is None:
            raise RuntimeError("top layer cannot send further up")
        if self.obs is not None:
            self.obs.hop(self.process.node_id, above.name, "up", msg)
        above.handle_up(msg)

    def inject_down(self, msg):
        """Entry point for the endpoint: hand a message to the top layer."""
        top = self.layers[-1]
        if self.obs is not None:
            # this hop opens the message's span at its origin
            self.obs.hop(self.process.node_id, top.name, "down", msg)
        top.handle_down(msg)

    def inject_up(self, msg):
        """Entry point for the network: hand a datagram to the bottom."""
        bottom = self.layers[0]
        if self.obs is not None:
            self.obs.hop(self.process.node_id, bottom.name, "up", msg)
        bottom.handle_up(msg)

    # ------------------------------------------------------------------
    def control(self, event, **data):
        """Broadcast a control notification to every layer, bottom-up."""
        for layer in self.layers:
            layer.on_control(event, data)

    def install_view(self, view):
        for layer in self.layers:
            layer.on_view(view)

    def start(self):
        for layer in self.layers:
            layer.start()

    def stop(self):
        for layer in self.layers:
            layer.stop()
