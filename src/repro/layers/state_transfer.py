"""Byzantine-safe state transfer to joining members.

Virtual synchrony tells a joiner which view it entered, but an
application like the replicated state machine also needs the *state* the
group accumulated before it arrived (Ensemble ships state-transfer layers
for exactly this).  Under Byzantine failures the snapshot sender cannot
simply be trusted, so the transfer is vouched:

* when a view with joiners is installed, every prior member sends each
  joiner a ``digest`` of its application snapshot (point-to-point);
* the new coordinator (and, on retry, other members in rank order) sends
  the full ``snapshot``;
* the joiner installs a snapshot only once its digest matches the digests
  of at least f + 1 distinct members -- at most f of which can lie, so a
  matching quorum contains a correct voucher;
* a snapshot contradicting the quorum marks its sender verbose-faulty and
  the joiner asks the next member in rank order.

Applications opt in by setting ``endpoint.state_provider`` (returns the
snapshot object) and ``endpoint.state_installer`` (receives it); the
layer is inert otherwise.
"""

from __future__ import annotations

import hashlib

from repro.core.message import Message
from repro.layers.base import Layer

KIND_STATE = "state"


def snapshot_digest(snapshot):
    return hashlib.sha256(repr(snapshot).encode("utf-8")).hexdigest()[:16]


class StateTransferLayer(Layer):
    """Snapshot hand-off around view installations."""

    name = "state_transfer"

    def __init__(self):
        super().__init__()
        self._prior_members = None
        self._awaiting = False      # we are a joiner waiting for state
        self._digests = {}          # member -> vouched digest
        self._snapshots = {}        # digest -> snapshot (first copy kept)
        self._provider_rank = 0
        self._retry_timer = None
        self.transfers_sent = 0
        self.installed = 0
        self.rejected_snapshots = 0

    # ------------------------------------------------------------------
    def on_view(self, view):
        prior = self._prior_members
        self._prior_members = set(view.mbrs)
        endpoint = self.process.endpoint
        if endpoint is None or endpoint.state_provider is None:
            return
        if prior is None:
            return  # our first view: bootstrap, nobody to learn from
        joiners = [m for m in view.mbrs if m not in prior]
        if self.me in prior and joiners:
            self._vouch_and_send(view, joiners)
        if self._awaiting and view.n > 1 and self._retry_timer is None:
            # we joined a real group: actively pull the snapshot too --
            # push-side vouches can race our own view installation
            self._retry_timer = self.sim.schedule(
                2 * self.config.ack_interval, self._retry)

    def begin_awaiting(self):
        """Called on a fresh joiner's behalf: arm collection state."""
        self._awaiting = True
        self._digests = {}
        self._snapshots = {}
        self._provider_rank = 0

    def stop(self):
        if self._retry_timer is not None:
            self._retry_timer.cancel()
            self._retry_timer = None

    def state_sizes(self):
        return {
            "digests": len(self._digests),
            "snapshots": len(self._snapshots),
        }

    def start(self):
        # processes never see an on_view for their bootstrap view: seed the
        # membership baseline here so the first real change can diff it
        self._prior_members = set(self.view.mbrs)
        # a process that boots into a singleton view and later merges is a
        # joiner: arm collection now, pull once the merged view arrives
        if self.view.n == 1:
            self.begin_awaiting()

    # ------------------------------------------------------------------
    # sender side
    # ------------------------------------------------------------------
    def _vouch_and_send(self, view, joiners):
        endpoint = self.process.endpoint
        snapshot = endpoint.state_provider()
        digest = snapshot_digest(snapshot)
        coordinator = view.coordinator
        for joiner in joiners:
            vouch = Message(KIND_STATE, self.me, view.vid,
                            ("digest", digest), payload_size=20, dest=joiner)
            self.send_down(vouch)
            if self.me == coordinator:
                self._send_snapshot(joiner, snapshot, digest)

    def _send_snapshot(self, joiner, snapshot, digest):
        self.transfers_sent += 1
        self.count("snapshots_sent")
        size = 24 + len(repr(snapshot))
        full = Message(KIND_STATE, self.me, self.view.vid,
                       ("snapshot", digest, snapshot), payload_size=size,
                       dest=joiner)
        self.send_down(full)

    # ------------------------------------------------------------------
    # message plane
    # ------------------------------------------------------------------
    def handle_up(self, msg):
        if msg.kind != KIND_STATE:
            self.send_up(msg)
            return
        payload = msg.payload
        if not isinstance(payload, tuple) or not payload:
            self._flag(msg.origin, "state:malformed")
            return
        tag = payload[0]
        if tag == "digest" and len(payload) == 2:
            self._on_digest(msg.origin, payload[1])
        elif tag == "snapshot" and len(payload) == 3:
            self._on_snapshot(msg.origin, payload[1], payload[2])
        elif tag == "request" and len(payload) == 1:
            self._on_request(msg.origin)
        else:
            self._flag(msg.origin, "state:unknown-tag")

    def _flag(self, member, reason):
        if self.config.byzantine and member != self.me:
            self.process.verbose_detector.illegal(member, reason)

    # ------------------------------------------------------------------
    # joiner side
    # ------------------------------------------------------------------
    def _on_digest(self, member, digest):
        if not self._awaiting or member not in self.view.mbrs:
            return
        self._digests.setdefault(member, digest)
        self._maybe_install()

    def _on_snapshot(self, member, digest, snapshot):
        if not self._awaiting or member not in self.view.mbrs:
            return
        if snapshot_digest(snapshot) != digest:
            self._flag(member, "state:digest-mismatch")
            self._ask_next_provider()
            return
        self._snapshots.setdefault(digest, snapshot)
        self._digests.setdefault(member, digest)
        self._maybe_install()

    def _on_request(self, joiner):
        endpoint = self.process.endpoint
        if endpoint is None or endpoint.state_provider is None:
            return
        if joiner not in self.view.mbrs:
            return
        snapshot = endpoint.state_provider()
        self._send_snapshot(joiner, snapshot, snapshot_digest(snapshot))

    def _maybe_install(self):
        if not self._awaiting:
            return
        f = self.process.f
        counts = {}
        for digest in self._digests.values():
            counts[digest] = counts.get(digest, 0) + 1
        for digest, count in counts.items():
            if count < f + 1:
                continue
            snapshot = self._snapshots.get(digest)
            if snapshot is None:
                self._ask_next_provider()
                return
            endpoint = self.process.endpoint
            self._awaiting = False
            if self._retry_timer is not None:
                self._retry_timer.cancel()
                self._retry_timer = None
            self.installed += 1
            self.count("snapshots_installed")
            if endpoint is not None and endpoint.state_installer is not None:
                endpoint.state_installer(snapshot)
            return
        # a digest reached quorum but we only hold snapshots for OTHER
        # digests: whoever sent those fed us a forged state -- fetch again
        quorum_digests = {d for d, count in counts.items() if count >= f + 1}
        if quorum_digests and self._snapshots and not (
                quorum_digests & set(self._snapshots)):
            self.rejected_snapshots += 1
            self.count("snapshots_rejected")
            self._ask_next_provider()

    def _ask_next_provider(self):
        """Request the snapshot from the next prior member in rank order."""
        view = self.view
        candidates = [m for m in view.mbrs if m != self.me]
        if not candidates:
            return
        target = candidates[self._provider_rank % len(candidates)]
        self._provider_rank += 1
        request = Message(KIND_STATE, self.me, view.vid, ("request",),
                          payload_size=8, dest=target)
        self.send_down(request)
        if self._retry_timer is None and self._awaiting:
            self._retry_timer = self.sim.schedule(
                self.config.newview_timeout, self._retry)

    def _retry(self):
        self._retry_timer = None
        if self._awaiting:
            self._ask_next_provider()
            self._retry_timer = self.sim.schedule(
                self.config.newview_timeout, self._retry)
