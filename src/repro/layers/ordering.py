"""Total ordering via repeated Byzantine consensus (paper section 3.5).

Nodes accumulate the casts they receive; each node proposes a
deterministically-chosen batch (all accumulated undelivered messages,
sorted by id) to a consensus instance.  Decided batches are delivered in
decided order, then the next instance starts.

Because the batch rule is deterministic and messages keep accumulating
while an instance runs, under continuous load every instance after the
first finds all correct proposals identical and decides in **one
communication round** -- the amortized single-step cost the paper measures
(the first instance of a burst may disagree and take more rounds).

For small messages the proposals carry the messages themselves, so total
ordering subsumes uniform broadcast without a separate protocol, exactly
as the paper notes.

View-change interaction: the SYNC reports of the flush protocol carry each
member's highest started instance; every member joins all instances up to
the maximum before delivering the deterministic tail, so the total order
extends unbroken to the view boundary.

The optimistic fast path (``ordering_fast_path``): instances run the
2-step echo protocol of ``repro.consensus.fastpath`` and -- the part that
actually buys latency -- are *pipelined*: up to ``FAST_PIPELINE_WINDOW``
instances run concurrently, so a cast arriving while instance ``k`` is in
flight rides instance ``k+1`` immediately instead of waiting for ``k`` to
finish plus an ordering tick.  Decided batches are held and applied
strictly in instance order; overlap between concurrent proposals is safe
because delivery dedups by message id, and in-order application makes the
dedup resolve identically at every correct member.
"""

from __future__ import annotations

from repro.core import message as mk
from repro.core.message import Message
from repro.consensus.fastpath import (FastPathConsensus, fast_coordinator,
                                      proposal_digest)
from repro.layers.base import Layer

#: bound on how far a (possibly lying) SYNC report can make us chase
#: ordering instances past our own; vacuous instances are cheap but a
#: Byzantine member must not be able to request unbounded work
MAX_INSTANCE_SKEW = 64

#: fast-path pipelining depth: how many ordering instances may be in
#: flight concurrently.  Two keeps a cast's wait bounded by one in-flight
#: instance instead of (instance + tick) while capping the per-node state
#: and the overlap between concurrent proposals.
FAST_PIPELINE_WINDOW = 2


def batch_sort_key(msg_id):
    """Deterministic order that preserves per-origin FIFO: group by
    origin, then numeric send counter (repr of the counter would put 10
    before 2)."""
    origin, counter = msg_id
    return (repr(origin), counter)


class OrderingLayer(Layer):
    """Atomic (totally ordered) delivery of application casts."""

    name = "ordering"

    #: class-level perf-parity switch: with it (or the config knob) off,
    #: the layer must behave byte-identically to the pre-fast-path code
    fast_path_enabled = True

    def __init__(self):
        super().__init__()
        self._buffer = {}        # msg_id -> Message (received, unordered)
        self._delivered = set()  # msg_ids already delivered
        self._instance = None
        self._instance_k = 0     # number of the running/last instance
        self._pending = {}       # k -> [(sender, proto)] early messages
        self._tick_timer = None
        self._stopped_proposing = False
        self._decided_k = 0
        self._flush_target = None
        self._flush_done_cb = None
        self._flush_undecidable = False
        self._frozen_undecidable = False
        self.batches_decided = 0
        self.messages_ordered = 0
        # --- fast path state (all empty/None while the knob is off) ---
        self._instances = {}       # k -> FastPathConsensus (in flight)
        self._decided_out = {}     # k -> (vector, mode) decided, unapplied
        self._fast_timers = {}     # k -> fprop->quorum deadline timer
        self._fast_decisions = {}  # k -> [vector, digest, responded]
        self._buffered_at = {}     # msg_id -> buffer time (latency marks)
        self.fast_decides = 0      # instances decided in 2 steps
        self.fast_fallbacks = 0    # fast instances aborted into consensus

    # ------------------------------------------------------------------
    def start(self):
        if self.config.total_order:
            self._tick_timer = self.sim.schedule(self.config.order_tick,
                                                 self._tick)

    def stop(self):
        if self._tick_timer is not None:
            self._tick_timer.cancel()
        self._cancel_fast_timers()

    def on_view(self, view):
        self._buffer.clear()
        self._delivered.clear()
        self._instance = None
        self._instance_k = 0
        self._pending.clear()
        self._stopped_proposing = False
        self._decided_k = 0
        self._flush_target = None
        self._flush_done_cb = None
        self._flush_undecidable = False
        self._frozen_undecidable = False
        self._instances.clear()
        self._decided_out.clear()
        self._fast_decisions.clear()
        self._buffered_at.clear()
        self._cancel_fast_timers()

    def on_control(self, event, data):
        if not self.config.total_order:
            return
        if event == "view-change-started":
            self._stopped_proposing = True
            if self._fast_enabled():
                # resolve the in-flight fast instances through consensus:
                # the coordinator may be the member we are reconfiguring
                # around, and the flush must not stall on their deadlines
                for inst in list(self._instances.values()):
                    inst.abort("view-change")
        elif event == "suspicions-updated":
            if self._fast_enabled():
                for inst in list(self._instances.values()):
                    inst.notify_suspicion_change()

    def _fast_enabled(self):
        return self.config.ordering_fast_path and self.fast_path_enabled

    @property
    def highest_instance(self):
        """Highest instance started locally (reported in SYNC)."""
        return self._instance_k

    def freeze_for_flush(self, undecidable):
        """Called by the membership layer just before it broadcasts its
        SYNC report.  Returns the (started, decided) instance watermarks.

        In *undecidable* mode -- the agreed survivor set is smaller than
        n - f, so no further round quorum can ever complete -- the
        in-flight instances are frozen: they may only finish by adopting
        the broadcast decision of a member that decided before the freeze.
        This pins the watermarks the SYNC reports carry, making the
        members' flush decisions mutually consistent.

        With pipelining the *decided* watermark is the highest instance
        whose batch was actually applied: a decision still parked behind a
        gap in ``_decided_out`` was observed by nobody's application order
        and is reported (and, if the flush says so, poisoned) exactly as
        if it had never decided.
        """
        self._stopped_proposing = True
        if undecidable:
            self._frozen_undecidable = True
            if self._fast_enabled():
                for inst in list(self._instances.values()):
                    inst.dec_adoption_quorum = self.process.f + 1
                    inst.freeze_rounds()
            elif self._instance is not None:
                self._instance.dec_adoption_quorum = self.process.f + 1
                self._instance.freeze_rounds()
        return (self._instance_k, self._decided_k)

    # ------------------------------------------------------------------
    # message plane
    # ------------------------------------------------------------------
    def handle_up(self, msg):
        if not self.config.total_order:
            self.send_up(msg)
            return
        if msg.kind == mk.KIND_CAST:
            if msg.msg_id is None or msg.msg_id in self._delivered:
                return
            self._buffer[msg.msg_id] = msg
            if self._fast_enabled():
                self._on_cast_buffered(msg.msg_id)
            return
        if msg.kind == mk.KIND_ORDER:
            self._on_order_msg(msg)
            return
        self.send_up(msg)

    def _on_order_msg(self, msg):
        self.process.mute_detector.fulfil(msg.origin, "ordering")
        payload = msg.payload
        if not isinstance(payload, tuple) or len(payload) != 3:
            self._misbehavior(msg.origin, "ordering:bad-msg")
            return
        _tag, k, proto = payload
        if payload[0] != "ord" or not isinstance(k, int) or k < 1:
            self._misbehavior(msg.origin, "ordering:bad-instance")
            return
        if self._fast_enabled():
            self._on_order_msg_fast(msg.origin, k, proto)
            return
        if self._instance is not None and k == self._instance_k:
            self._instance.on_message(msg.origin, proto)
        elif k > self._instance_k:
            if k > self._instance_k + MAX_INSTANCE_SKEW:
                self._misbehavior(msg.origin, "ordering:instance-skew")
                return
            self._pending.setdefault(k, []).append((msg.origin, proto))
            if self._instance is None and k == self._instance_k + 1:
                # someone is ahead of us: join their instance even with an
                # empty local batch, or we would block their termination
                self._start_instance()

    def _on_order_msg_fast(self, origin, k, proto):
        inst = self._instances.get(k)
        if inst is not None:
            inst.on_message(origin, proto)
            return
        if k > self._instance_k:
            if k > self._instance_k + MAX_INSTANCE_SKEW:
                self._misbehavior(origin, "ordering:instance-skew")
                return
            self._pending.setdefault(k, []).append((origin, proto))
            # someone is ahead of us: join their instances (up to the
            # pipelining window) even with empty local batches, or we
            # would block their termination
            while (self._instance_k < k
                   and len(self._instances) < FAST_PIPELINE_WINDOW
                   and self._flush_target is None
                   and not self._frozen_undecidable):
                self._start_instance_fast()
            return
        self._on_stale_order_msg(origin, k, proto)

    def _on_stale_order_msg(self, origin, k, proto):
        """A message for an instance we already finished.

        Fast decisions broadcast no ``dec`` in the common case, so a
        member that missed the coordinator's proposal (withheld by a
        Byzantine coordinator, or lost to a partition that healed) could
        wait forever on an instance everyone else completed.  The archive
        of recent fast decisions lets us answer such stragglers with a
        one-shot ``dec`` -- the exact message the fallback would have
        broadcast -- which both classic rounds and dec-adoption flushes
        know how to consume.
        """
        entry = self._fast_decisions.get(k)
        if entry is None or not isinstance(proto, tuple) or not proto:
            return
        vector, digest, responded = entry
        kind = proto[0]
        if kind in ("dec", "fprop"):
            return              # echoes of the decision itself: benign
        if kind == "fecho" and len(proto) == 2 and proto[1] == digest:
            return              # the quorum's trailing echoes: benign
        # val/coord (a peer fell back), a conflicting echo, or garbage:
        # somebody has not converged on k -- publish the decision once
        if not responded:
            entry[2] = True
            self.count("fast_dec_responses")
            self._bcast_proto(k, ("dec", vector))

    # ------------------------------------------------------------------
    # instance lifecycle
    # ------------------------------------------------------------------
    def _tick(self):
        if self._fast_enabled():
            # bootstrap only: cast arrivals and decide events drive the
            # pipeline; the tick mops up anything those paths missed
            self._maybe_start_fast()
        elif (self._instance is None and self._buffer
                and not self._stopped_proposing):
            self._start_instance()
        self._tick_timer = self.sim.schedule(self.config.order_tick,
                                             self._tick)

    def _on_cast_buffered(self, msg_id):
        """Fast-path hooks on cast arrival (knob-on only).

        Two jobs: stamp the cast for the cast->deliver latency histograms,
        and feed the pipeline -- a newly buffered cast may complete the
        validation of an in-flight proposal (``revalidate``), or warrant
        opening the next instance immediately instead of waiting out the
        ordering tick (order_tick dwarfs the simulated network hop, so the
        tick wait dominates failure-free latency).
        """
        obs = self.stack.obs
        if obs is not None and obs.metrics_enabled:
            self._buffered_at[msg_id] = self.sim.now
        for inst in list(self._instances.values()):
            inst.revalidate()
        self._maybe_start_fast()

    def _maybe_start_fast(self):
        """Open the next fast instance when the pipeline has room.

        Idle (no instance in flight): any member starts on a non-empty
        buffer -- non-coordinators simply wait for the coordinator's
        proposal, and the fast deadline bounds that wait.  Busy (one
        instance in flight): only the *next* instance's fast coordinator
        opens the overlap slot, and only for casts the in-flight proposals
        do not already cover -- everyone else joins when its proposal
        arrives, exactly like the classic join-on-first-message.
        """
        if (self._stopped_proposing or self._flush_target is not None
                or self._frozen_undecidable):
            return
        if len(self._instances) >= FAST_PIPELINE_WINDOW:
            return
        k_next = self._instance_k + 1
        if self._pending.get(k_next):
            self._start_instance_fast()
            return
        if not self._instances:
            if self._buffer:
                self._start_instance_fast()
            return
        view = self.view
        seed = ("ord",) + view.vid.key() + (k_next,)
        if fast_coordinator(list(view.mbrs), seed) != self.me:
            return
        covered = self._covered_ids()
        if any(mid not in covered for mid in self._buffer):
            self._start_instance_fast()

    def _covered_ids(self):
        """Message ids already owned by an in-flight or unapplied batch."""
        covered = set()
        for inst in self._instances.values():
            covered.update(inst.covered_ids())
        for vector, _mode in self._decided_out.values():
            batch = vector[0] if isinstance(vector, tuple) and vector else ()
            if isinstance(batch, tuple):
                for entry in batch:
                    if isinstance(entry, tuple) and len(entry) == 3:
                        covered.add(entry[0])
        return covered

    def _proposal(self):
        entries = []
        for msg_id, msg in self._buffer.items():
            entries.append((msg_id, msg.payload, msg.payload_size))
        entries.sort(key=lambda e: batch_sort_key(e[0]))
        return tuple(entries[: self.config.order_batch_max])

    def _proposal_fast(self):
        """Like ``_proposal`` but minus casts an in-flight instance will
        already order -- overlap is *safe* (delivery dedups) but wasteful."""
        covered = self._covered_ids()
        entries = [(mid, m.payload, m.payload_size)
                   for mid, m in self._buffer.items() if mid not in covered]
        entries.sort(key=lambda e: batch_sort_key(e[0]))
        return tuple(entries[: self.config.order_batch_max])

    def _start_instance(self):
        view = self.view
        k = self._instance_k + 1
        self._instance_k = k
        batch = self._proposal()
        instance_id = ("ord", view.vid.key(), k)

        def bcast(proto):
            size = 16 + sum(e[2] + 10 for e in batch)
            out = Message(mk.KIND_ORDER, self.me, view.vid,
                          ("ord", k, proto), payload_size=size)
            self.send_down(out)

        def on_round(rnd, awaited):
            for member in awaited:
                if member != self.me:
                    self.process.mute_detector.expect(
                        member, "ordering", self.config.consensus_msg_timeout)

        from repro.consensus.vector import VectorConsensus
        self._instance = VectorConsensus(
            instance_id, list(view.mbrs), self.me, self.process.f,
            (batch,), bcast,
            is_suspected=self._fd_suspects,
            on_decide=lambda vec, k=k: self._on_decided(k, vec),
            on_misbehavior=self._misbehavior,
            coordinator_seed=("ord",) + view.vid.key() + (k,),
            on_round=on_round)
        early = self._pending.pop(k, [])
        self._instance.start()
        for sender, proto in early:
            self._instance.on_message(sender, proto)

    def _start_instance_fast(self):
        view = self.view
        k = self._instance_k + 1
        self._instance_k = k
        batch = self._proposal_fast()
        instance_id = ("ord", view.vid.key(), k)

        def bcast(proto, _k=k):
            self._bcast_proto(_k, proto)

        def on_round(rnd, awaited):
            for member in awaited:
                if member != self.me:
                    self.process.mute_detector.expect(
                        member, "ordering", self.config.consensus_msg_timeout)

        members = list(view.mbrs)
        instance = FastPathConsensus(
            instance_id, members, self.me, self.process.f,
            (batch,), bcast,
            is_suspected=self._fd_suspects,
            on_decide=lambda vec, _k=k: self._on_decided_fast(_k, vec),
            on_misbehavior=self._misbehavior,
            coordinator_seed=("ord",) + view.vid.key() + (k,),
            on_round=on_round,
            validate=self._validate_proposal,
            on_fallback=lambda reason, _k=k: self._on_fast_fallback(_k,
                                                                    reason))
        self._instances[k] = instance
        # mode arbitration: run the 2-step protocol only when nothing
        # suggests it could stall -- no flush in progress, proposing
        # allowed, and no live suspicion against any member
        fast_ok = (self._flush_target is None
                   and not self._frozen_undecidable
                   and not self._stopped_proposing
                   and not any(self._fd_suspects(m) for m in members))
        if not fast_ok:
            self.count("fast_skipped")
        early = self._pending.pop(k, [])
        instance.start(fast=fast_ok)
        for sender, proto in early:
            if self._instances.get(k) is not instance:
                break
            instance.on_message(sender, proto)
        if (self._instances.get(k) is instance and not instance.decided
                and instance.mode == "fast"):
            self._arm_fast_deadline(k)

    def _bcast_proto(self, k, proto):
        out = Message(mk.KIND_ORDER, self.me, self.view.vid,
                      ("ord", k, proto), payload_size=self._proto_size(proto))
        self.send_down(out)

    def _proto_size(self, proto):
        """Accounting size of one ordering protocol message (fast mode).

        The classic closure charged every message for the local batch;
        with the fast path the whole point is that echoes are digests, so
        charge each kind for what it actually carries: fecho is a fixed
        digest, everything else ships a proposal vector as its last slot.
        """
        kind = proto[0] if isinstance(proto, tuple) and proto else None
        if kind == "fecho":
            return 80
        try:
            batch = proto[-1][0]
            return 16 + sum(e[2] + 10 for e in batch)
        except (TypeError, IndexError):
            return 16

    def _validate_proposal(self, vector):
        """Echo gate: is the coordinator's proposed batch one we can sign?

        ``True`` -> echo it; ``False`` -> provably bad (fall back to
        consensus); ``"wait"`` -> entries we have not received yet, the
        host re-validates as casts arrive and the deadline bounds the wait.
        """
        batch = vector[0]
        if (not isinstance(batch, tuple)
                or len(batch) > self.config.order_batch_max):
            return False
        missing = False
        prev_key = None
        for entry in batch:
            if (not isinstance(entry, tuple) or len(entry) != 3
                    or not isinstance(entry[0], tuple) or len(entry[0]) != 2
                    or not isinstance(entry[0][1], int)):
                return False
            msg_id, payload, size = entry
            key = batch_sort_key(msg_id)
            if prev_key is not None and not prev_key < key:
                return False    # unsorted or duplicated entries
            prev_key = key
            if msg_id in self._delivered:
                # an already-ordered message: benign pipelining overlap
                # (a concurrent instance delivered it first); delivery
                # dedups, and the agreed content won that race, so the
                # copy here is inert whatever it says
                continue
            held = self._buffer.get(msg_id)
            if held is None:
                missing = True
            elif held.payload != payload or held.payload_size != size:
                return False    # conflicts with the signed cast we hold
        return "wait" if missing else True

    def _on_fast_fallback(self, k, reason):
        self.fast_fallbacks += 1
        self.count("fast_fallbacks")
        self.count("fast_fallback_" + reason)
        self._cancel_fast_timer(k)

    def _arm_fast_deadline(self, k):
        self._cancel_fast_timer(k)
        self._fast_timers[k] = self.sim.schedule(
            self.config.order_fast_timeout, self._fast_deadline, k)

    def _cancel_fast_timer(self, k):
        timer = self._fast_timers.pop(k, None)
        if timer is not None:
            timer.cancel()

    def _cancel_fast_timers(self):
        for timer in self._fast_timers.values():
            timer.cancel()
        self._fast_timers.clear()

    def _fast_deadline(self, k):
        self._fast_timers.pop(k, None)
        inst = self._instances.get(k)
        if inst is not None and not inst.decided:
            inst.timeout()

    def _fd_suspects(self, member):
        process = self.process
        if process.suspicion.is_suspected(member):
            return True
        return (process.mute_levels.level(member)
                >= self.config.mute_suspect_threshold)

    def _misbehavior(self, member, reason):
        if self.config.byzantine and member != self.me:
            self.process.verbose_detector.illegal(member, reason)

    def _on_decided(self, k, vector):
        if k != self._instance_k:
            return
        self._instance = None
        self._decided_k = k
        self._apply_batch(vector, None)
        if self._flush_target is not None:
            self._continue_flush()
            return
        if self._pending.get(k + 1) or (self._buffer
                                        and not self._stopped_proposing):
            self._start_instance()

    def _on_decided_fast(self, k, vector):
        inst = self._instances.pop(k, None)
        self._cancel_fast_timer(k)
        if inst is None:
            return              # poisoned by an undecidable flush
        mode = "fallback"
        if inst.fast_decided:
            mode = "fast"
            self.fast_decides += 1
            self.count("fast_decides")
            self._archive_fast_decision(k, vector)
        self._decided_out[k] = (vector, mode)
        self._apply_ready()

    def _apply_ready(self):
        """Apply decided batches strictly in instance order.

        A decision for ``k+1`` that lands while ``k`` is still in flight
        parks in ``_decided_out``; applying in ``k`` order is what makes
        the delivery-time dedup of overlapping proposals deterministic
        and therefore identical at every correct member.
        """
        while self._decided_k + 1 in self._decided_out:
            k = self._decided_k + 1
            vector, mode = self._decided_out.pop(k)
            self._decided_k = k
            self._apply_batch(vector, mode)
        if self._flush_target is not None:
            self._continue_flush()
        else:
            self._maybe_start_fast()

    def _apply_batch(self, vector, mode):
        batch = vector[0]
        if not isinstance(batch, tuple):
            return
        self.batches_decided += 1
        self.count("batches_decided")
        self.observe("batch_size", len(batch))
        entries = sorted(
            (e for e in batch
             if isinstance(e, tuple) and len(e) == 3
             and isinstance(e[0], tuple) and len(e[0]) == 2
             and isinstance(e[0][1], int)),
            key=lambda e: batch_sort_key(e[0]))
        for msg_id, payload, size in entries:
            self._deliver(msg_id, payload, size, mode)

    def _archive_fast_decision(self, k, vector):
        """Remember a 2-step decision so stragglers can be answered.

        Bounded by the same skew window as instance chasing: entries
        retire as the instance number advances, and the whole archive
        clears at each view install.
        """
        self._fast_decisions[k] = [vector, proposal_digest(vector), False]
        self._fast_decisions.pop(k - MAX_INSTANCE_SKEW, None)

    def _deliver(self, msg_id, payload, size, mode=None):
        if msg_id in self._delivered or not isinstance(msg_id, tuple):
            return
        self._delivered.add(msg_id)
        self.messages_ordered += 1
        self.count("messages_ordered")
        if mode is not None:
            buffered_at = self._buffered_at.pop(msg_id, None)
            if buffered_at is not None:
                self.observe("cast_latency_" + mode,
                             self.sim.now - buffered_at)
        held = self._buffer.pop(msg_id, None)
        origin = msg_id[0]
        # always deliver the *decided* content: with a two-faced origin our
        # local copy may differ from what the group agreed on, and content
        # agreement is exactly what consensus-based ordering buys
        if held is not None and held.payload == payload:
            self.send_up(held)
        else:
            out = Message(mk.KIND_CAST, origin, self.view.vid, payload,
                          size if isinstance(size, int) else 0,
                          msg_id=msg_id)
            self.send_up(out)

    # ------------------------------------------------------------------
    # flush at view change
    # ------------------------------------------------------------------
    def flush(self, k_star, on_done, undecidable=False):
        """Resolve every instance up to ``k_star``, then deliver the tail.

        Decidable mode (survivors still form an n - f quorum of the old
        view): join every instance up to the maximum *started* anywhere;
        each terminates normally.

        Undecidable mode: ``k_star`` is the maximum *decided* anywhere
        (from the frozen SYNC watermarks); instances up to it finish by
        adopting the decider's broadcast ``dec``; instances beyond it were
        decided by nobody and are poisoned identically at every member --
        their messages fall into the deterministic tail.
        """
        self._stopped_proposing = True
        self._flush_undecidable = undecidable
        self._flush_target = min(k_star, self._instance_k + MAX_INSTANCE_SKEW)
        self._flush_done_cb = on_done
        self._continue_flush()

    def _continue_flush(self):
        if self._flush_undecidable:
            self._continue_flush_undecidable()
            return
        if self._fast_enabled():
            if self._instances:
                return  # wait for the in-flight instances to decide
            if self._instance_k < self._flush_target:
                self._start_instance_fast()
                return
            self._deliver_tail()
            return
        if self._instance is not None:
            return  # wait for the in-flight instance to decide
        if self._instance_k < self._flush_target:
            self._start_instance()
            return
        # every agreed batch is delivered; the rest of the cut is delivered
        # in a deterministic order identical at all members
        for msg_id in sorted(self._buffer, key=batch_sort_key):
            msg = self._buffer[msg_id]
            self._delivered.add(msg_id)
            self.messages_ordered += 1
            self.count("messages_ordered")
            self.send_up(msg)
        self._buffer.clear()
        done, self._flush_done_cb = self._flush_done_cb, None
        self._flush_target = None
        if done is not None:
            done()

    # ------------------------------------------------------------------
    # bounded-state introspection (soak / tournament checker)
    # ------------------------------------------------------------------
    def state_sizes(self):
        # _delivered is deliberately absent: it grows monotonically within
        # a view by design (dedup over the view's lifetime) and resets at
        # every install, so it would only false-positive the growth check
        if self._fast_enabled():
            instance_state = sum(i.state_size()
                                 for i in self._instances.values())
        else:
            inst = self._instance
            if inst is None:
                instance_state = 0
            elif isinstance(inst, FastPathConsensus):
                instance_state = inst.state_size()
            else:
                instance_state = (len(inst._dec_msgs) + len(inst._coord_msgs)
                                  + sum(len(v)
                                        for v in inst._val_msgs.values()))
        return {
            "buffer": len(self._buffer),
            "pending": sum(len(v) for v in self._pending.values()),
            "fast_archive": len(self._fast_decisions),
            "decided_backlog": len(self._decided_out),
            "latency_marks": len(self._buffered_at),
            "instance_state": instance_state,
        }

    def _continue_flush_undecidable(self):
        if self._fast_enabled():
            # instances (and parked decisions) beyond the target were
            # decided-and-applied by nobody: poison them identically at
            # every member -- their messages stay buffered and join the
            # deterministic tail
            for k in [k for k in self._instances if k > self._flush_target]:
                del self._instances[k]
                self._cancel_fast_timer(k)
            for k in [k for k in self._decided_out
                      if k > self._flush_target]:
                del self._decided_out[k]
            if self._decided_k < self._flush_target:
                if not self._instances:
                    # a peer decided an instance we never started: open it
                    # in frozen mode purely to receive and adopt the dec
                    self._start_instance_fast()
                    inst = self._instances.get(self._instance_k)
                    if inst is not None:
                        inst.dec_adoption_quorum = self.process.f + 1
                        inst.freeze_rounds()
                return  # the decider's dec broadcast will resolve it
            self._deliver_tail()
            return
        if self._decided_k < self._flush_target:
            if self._instance is None:
                # a peer decided an instance we never started: open it in
                # frozen mode purely to receive and adopt the dec
                self._start_instance()
                if self._instance is not None:
                    self._instance.dec_adoption_quorum = self.process.f + 1
                    self._instance.freeze_rounds()
            return  # the decider's dec broadcast will resolve it
        if self._instance is not None and self._instance_k > self._flush_target:
            # nobody decided this instance before the freeze: poison it;
            # its messages remain in the buffer and join the tail
            self._instance = None
        self._deliver_tail()

    def _deliver_tail(self):
        for msg_id in sorted(self._buffer, key=batch_sort_key):
            msg = self._buffer[msg_id]
            self._delivered.add(msg_id)
            self.messages_ordered += 1
            self.count("messages_ordered")
            self.send_up(msg)
        self._buffer.clear()
        done, self._flush_done_cb = self._flush_done_cb, None
        self._flush_target = None
        if done is not None:
            done()
