"""Total ordering via repeated Byzantine consensus (paper section 3.5).

Nodes accumulate the casts they receive; each node proposes a
deterministically-chosen batch (all accumulated undelivered messages,
sorted by id) to a consensus instance.  Decided batches are delivered in
decided order, then the next instance starts.

Because the batch rule is deterministic and messages keep accumulating
while an instance runs, under continuous load every instance after the
first finds all correct proposals identical and decides in **one
communication round** -- the amortized single-step cost the paper measures
(the first instance of a burst may disagree and take more rounds).

For small messages the proposals carry the messages themselves, so total
ordering subsumes uniform broadcast without a separate protocol, exactly
as the paper notes.

View-change interaction: the SYNC reports of the flush protocol carry each
member's highest started instance; every member joins all instances up to
the maximum before delivering the deterministic tail, so the total order
extends unbroken to the view boundary.
"""

from __future__ import annotations

from repro.core import message as mk
from repro.core.message import Message
from repro.layers.base import Layer

#: bound on how far a (possibly lying) SYNC report can make us chase
#: ordering instances past our own; vacuous instances are cheap but a
#: Byzantine member must not be able to request unbounded work
MAX_INSTANCE_SKEW = 64


def batch_sort_key(msg_id):
    """Deterministic order that preserves per-origin FIFO: group by
    origin, then numeric send counter (repr of the counter would put 10
    before 2)."""
    origin, counter = msg_id
    return (repr(origin), counter)


class OrderingLayer(Layer):
    """Atomic (totally ordered) delivery of application casts."""

    name = "ordering"

    def __init__(self):
        super().__init__()
        self._buffer = {}        # msg_id -> Message (received, unordered)
        self._delivered = set()  # msg_ids already delivered
        self._instance = None
        self._instance_k = 0     # number of the running/last instance
        self._pending = {}       # k -> [(sender, proto)] early messages
        self._tick_timer = None
        self._stopped_proposing = False
        self._decided_k = 0
        self._flush_target = None
        self._flush_done_cb = None
        self._flush_undecidable = False
        self._frozen_undecidable = False
        self.batches_decided = 0
        self.messages_ordered = 0

    # ------------------------------------------------------------------
    def start(self):
        if self.config.total_order:
            self._tick_timer = self.sim.schedule(self.config.order_tick,
                                                 self._tick)

    def stop(self):
        if self._tick_timer is not None:
            self._tick_timer.cancel()

    def on_view(self, view):
        self._buffer.clear()
        self._delivered.clear()
        self._instance = None
        self._instance_k = 0
        self._pending.clear()
        self._stopped_proposing = False
        self._decided_k = 0
        self._flush_target = None
        self._flush_done_cb = None
        self._flush_undecidable = False
        self._frozen_undecidable = False

    def on_control(self, event, data):
        if not self.config.total_order:
            return
        if event == "view-change-started":
            self._stopped_proposing = True

    @property
    def highest_instance(self):
        """Highest instance started locally (reported in SYNC)."""
        return self._instance_k

    def freeze_for_flush(self, undecidable):
        """Called by the membership layer just before it broadcasts its
        SYNC report.  Returns the (started, decided) instance watermarks.

        In *undecidable* mode -- the agreed survivor set is smaller than
        n - f, so no further round quorum can ever complete -- the
        in-flight instance is frozen: it may only finish by adopting the
        broadcast decision of a member that decided before the freeze.
        This pins the watermarks the SYNC reports carry, making the
        members' flush decisions mutually consistent.
        """
        self._stopped_proposing = True
        if undecidable:
            self._frozen_undecidable = True
            if self._instance is not None:
                self._instance.dec_adoption_quorum = self.process.f + 1
                self._instance.freeze_rounds()
        return (self._instance_k, self._decided_k)

    # ------------------------------------------------------------------
    # message plane
    # ------------------------------------------------------------------
    def handle_up(self, msg):
        if not self.config.total_order:
            self.send_up(msg)
            return
        if msg.kind == mk.KIND_CAST:
            if msg.msg_id is None or msg.msg_id in self._delivered:
                return
            self._buffer[msg.msg_id] = msg
            return
        if msg.kind == mk.KIND_ORDER:
            self._on_order_msg(msg)
            return
        self.send_up(msg)

    def _on_order_msg(self, msg):
        self.process.mute_detector.fulfil(msg.origin, "ordering")
        payload = msg.payload
        if not isinstance(payload, tuple) or len(payload) != 3:
            self._misbehavior(msg.origin, "ordering:bad-msg")
            return
        _tag, k, proto = payload
        if payload[0] != "ord" or not isinstance(k, int) or k < 1:
            self._misbehavior(msg.origin, "ordering:bad-instance")
            return
        if self._instance is not None and k == self._instance_k:
            self._instance.on_message(msg.origin, proto)
        elif k > self._instance_k:
            if k > self._instance_k + MAX_INSTANCE_SKEW:
                self._misbehavior(msg.origin, "ordering:instance-skew")
                return
            self._pending.setdefault(k, []).append((msg.origin, proto))
            if self._instance is None and k == self._instance_k + 1:
                # someone is ahead of us: join their instance even with an
                # empty local batch, or we would block their termination
                self._start_instance()

    # ------------------------------------------------------------------
    # instance lifecycle
    # ------------------------------------------------------------------
    def _tick(self):
        if (self._instance is None and self._buffer
                and not self._stopped_proposing):
            self._start_instance()
        self._tick_timer = self.sim.schedule(self.config.order_tick,
                                             self._tick)

    def _proposal(self):
        entries = []
        for msg_id, msg in self._buffer.items():
            entries.append((msg_id, msg.payload, msg.payload_size))
        entries.sort(key=lambda e: batch_sort_key(e[0]))
        return tuple(entries[: self.config.order_batch_max])

    def _start_instance(self):
        view = self.view
        k = self._instance_k + 1
        self._instance_k = k
        batch = self._proposal()
        instance_id = ("ord", view.vid.key(), k)

        def bcast(proto):
            size = 16 + sum(e[2] + 10 for e in batch)
            out = Message(mk.KIND_ORDER, self.me, view.vid,
                          ("ord", k, proto), payload_size=size)
            self.send_down(out)

        def on_round(rnd, awaited):
            for member in awaited:
                if member != self.me:
                    self.process.mute_detector.expect(
                        member, "ordering", self.config.consensus_msg_timeout)

        from repro.consensus.vector import VectorConsensus
        self._instance = VectorConsensus(
            instance_id, list(view.mbrs), self.me, self.process.f,
            (batch,), bcast,
            is_suspected=self._fd_suspects,
            on_decide=lambda vec, k=k: self._on_decided(k, vec),
            on_misbehavior=self._misbehavior,
            coordinator_seed=("ord",) + view.vid.key() + (k,),
            on_round=on_round)
        early = self._pending.pop(k, [])
        self._instance.start()
        for sender, proto in early:
            self._instance.on_message(sender, proto)

    def _fd_suspects(self, member):
        process = self.process
        if process.suspicion.is_suspected(member):
            return True
        return (process.mute_levels.level(member)
                >= self.config.mute_suspect_threshold)

    def _misbehavior(self, member, reason):
        if self.config.byzantine and member != self.me:
            self.process.verbose_detector.illegal(member, reason)

    def _on_decided(self, k, vector):
        if k != self._instance_k:
            return
        self._instance = None
        self._decided_k = k
        batch = vector[0]
        if isinstance(batch, tuple):
            self.batches_decided += 1
            self.count("batches_decided")
            self.observe("batch_size", len(batch))
            entries = sorted(
                (e for e in batch
                 if isinstance(e, tuple) and len(e) == 3
                 and isinstance(e[0], tuple) and len(e[0]) == 2
                 and isinstance(e[0][1], int)),
                key=lambda e: batch_sort_key(e[0]))
            for msg_id, payload, size in entries:
                self._deliver(msg_id, payload, size)
        if self._flush_target is not None:
            self._continue_flush()
            return
        if self._pending.get(k + 1) or (self._buffer
                                        and not self._stopped_proposing):
            self._start_instance()

    def _deliver(self, msg_id, payload, size):
        if msg_id in self._delivered or not isinstance(msg_id, tuple):
            return
        self._delivered.add(msg_id)
        self.messages_ordered += 1
        self.count("messages_ordered")
        held = self._buffer.pop(msg_id, None)
        origin = msg_id[0]
        # always deliver the *decided* content: with a two-faced origin our
        # local copy may differ from what the group agreed on, and content
        # agreement is exactly what consensus-based ordering buys
        if held is not None and held.payload == payload:
            self.send_up(held)
        else:
            out = Message(mk.KIND_CAST, origin, self.view.vid, payload,
                          size if isinstance(size, int) else 0,
                          msg_id=msg_id)
            self.send_up(out)

    # ------------------------------------------------------------------
    # flush at view change
    # ------------------------------------------------------------------
    def flush(self, k_star, on_done, undecidable=False):
        """Resolve every instance up to ``k_star``, then deliver the tail.

        Decidable mode (survivors still form an n - f quorum of the old
        view): join every instance up to the maximum *started* anywhere;
        each terminates normally.

        Undecidable mode: ``k_star`` is the maximum *decided* anywhere
        (from the frozen SYNC watermarks); instances up to it finish by
        adopting the decider's broadcast ``dec``; instances beyond it were
        decided by nobody and are poisoned identically at every member --
        their messages fall into the deterministic tail.
        """
        self._stopped_proposing = True
        self._flush_undecidable = undecidable
        self._flush_target = min(k_star, self._instance_k + MAX_INSTANCE_SKEW)
        self._flush_done_cb = on_done
        self._continue_flush()

    def _continue_flush(self):
        if self._flush_undecidable:
            self._continue_flush_undecidable()
            return
        if self._instance is not None:
            return  # wait for the in-flight instance to decide
        if self._instance_k < self._flush_target:
            self._start_instance()
            return
        # every agreed batch is delivered; the rest of the cut is delivered
        # in a deterministic order identical at all members
        for msg_id in sorted(self._buffer, key=batch_sort_key):
            msg = self._buffer[msg_id]
            self._delivered.add(msg_id)
            self.messages_ordered += 1
            self.count("messages_ordered")
            self.send_up(msg)
        self._buffer.clear()
        done, self._flush_done_cb = self._flush_done_cb, None
        self._flush_target = None
        if done is not None:
            done()

    def _continue_flush_undecidable(self):
        if self._decided_k < self._flush_target:
            if self._instance is None:
                # a peer decided an instance we never started: open it in
                # frozen mode purely to receive and adopt the dec
                self._start_instance()
                if self._instance is not None:
                    self._instance.dec_adoption_quorum = self.process.f + 1
                    self._instance.freeze_rounds()
            return  # the decider's dec broadcast will resolve it
        if self._instance is not None and self._instance_k > self._flush_target:
            # nobody decided this instance before the freeze: poison it;
            # its messages remain in the buffer and join the tail
            self._instance = None
        self._deliver_tail()

    def _deliver_tail(self):
        for msg_id in sorted(self._buffer, key=batch_sort_key):
            msg = self._buffer[msg_id]
            self._delivered.add(msg_id)
            self.messages_ordered += 1
            self.count("messages_ordered")
            self.send_up(msg)
        self._buffer.clear()
        done, self._flush_done_cb = self._flush_done_cb, None
        self._flush_target = None
        if done is not None:
            done()
