"""Heartbeats, gossip announcements, and liveness observation.

Heartbeats alone cannot detect Byzantine failures (a Byzantine node can
heartbeat on time while misbehaving -- paper section 3.2), but they remain
the baseline liveness signal: a node from which *nothing* has been heard
for a timeout gains mute fuzziness.

The layer also implements the view-discovery gossip of section 3.4.2: the
coordinator of every view periodically IP-multicasts a gossip message
announcing its view.  Unlike Ensemble, *all* nodes listen (not just
coordinators) -- that is what lets ordinary members notice a coordinator
that mutely fails to pursue a merge: they register expectations with the
fuzzy mute detector on their own coordinator's behalf.
"""

from __future__ import annotations

from repro.core import message as mk
from repro.core.message import Message
from repro.layers.base import Layer

#: protocol-stack fingerprint carried in gossip; views only merge when
#: both sides run the same stack (paper section 3.4.2)
def stack_fingerprint(config):
    return (config.byzantine, config.crypto, config.total_order,
            config.uniform_delivery, config.uniform_protocol,
            config.ordering_fast_path)


class HeartbeatLayer(Layer):
    """Heartbeat emission + silence detection + gossip announcements."""

    name = "heartbeat"

    def __init__(self):
        super().__init__()
        self._hb_timer = None
        self._gossip_timer = None
        self._last_coord_gossip = 0.0
        self._last_hb_tick = None
        self.gossips_sent = 0

    # ------------------------------------------------------------------
    def start(self):
        config = self.config
        self._hb_timer = self.sim.schedule(config.heartbeat_interval,
                                           self._heartbeat_tick)
        self._gossip_timer = self.sim.schedule(config.gossip_interval,
                                               self._gossip_tick)
        self._last_coord_gossip = self.sim.now

    def stop(self):
        for timer in (self._hb_timer, self._gossip_timer):
            if timer is not None:
                timer.cancel()

    def on_view(self, view):
        self._last_coord_gossip = self.sim.now

    # ------------------------------------------------------------------
    def _heartbeat_tick(self):
        process = self.process
        config = self.config
        tick = self.sim.now
        if self._last_hb_tick is not None:
            # observed tick spacing: exactly heartbeat_interval under the
            # simulator, jittered by OS scheduling on the real-network
            # runtime -- the histogram is how a net run quantifies how much
            # timer slack its failure detectors must absorb
            self.observe("hb_interval", tick - self._last_hb_tick)
        self._last_hb_tick = tick
        if self.view.n > 1:
            hb = Message(mk.KIND_HEARTBEAT, self.me, self.view.vid, (),
                         payload_size=4)
            self.count("heartbeats_sent")
            self.send_down(hb)
            now = self.sim.now
            for member in self.view.mbrs:
                if member == self.me:
                    continue
                silent = now - process.last_heard(member)
                if silent > config.mute_timeout:
                    process.mute_levels.raise_level(member, 1.0)
        self._hb_timer = self.sim.schedule(config.heartbeat_interval,
                                           self._heartbeat_tick)

    def handle_up(self, msg):
        if msg.kind == mk.KIND_HEARTBEAT:
            return  # liveness already noted by the bottom layer
        self.send_up(msg)

    # ------------------------------------------------------------------
    # gossip: coordinator announces; everyone listens
    # ------------------------------------------------------------------
    def _gossip_tick(self):
        config = self.config
        view = self.view
        if (self.process.membership.leaving and view.n == 1):
            # a departed leaver's singleton view is terminal: it refuses
            # every merge request, so advertising it only baits joiners
            # (and the group it left) into dead-end merge courtships
            pass
        elif view.coordinator == self.me:
            payload = ("gossip", view.to_wire(), stack_fingerprint(config))
            self.process.gossip(payload, size=32 + 8 * view.n)
            self.gossips_sent += 1
            self.count("gossips_sent")
        else:
            # a coordinator that stops announcing its view is mute
            silent = self.sim.now - self._last_coord_gossip
            if silent > 2.5 * config.gossip_interval:
                self.process.mute_levels.raise_level(view.coordinator, 1.0)
                self._last_coord_gossip = self.sim.now  # one strike per lapse
        self._gossip_timer = self.sim.schedule(config.gossip_interval,
                                               self._gossip_tick)

    def on_gossip(self, src, payload):
        """Raw gossip arrival (routed here by the owning process)."""
        if (not isinstance(payload, tuple) or len(payload) != 3
                or payload[0] != "gossip"):
            return
        _tag, view_wire, fingerprint = payload
        view = self.view
        if src == view.coordinator:
            self._last_coord_gossip = self.sim.now
        try:
            from repro.core.view import View
            foreign = View.from_wire(view_wire)
        except (ValueError, TypeError):
            if self.config.byzantine:
                self.process.verbose_detector.illegal(src, "gossip:malformed")
            return
        if foreign.vid == view.vid:
            return  # our own view's announcement
        # hand foreign-view announcements to the membership layer
        self.stack.control("foreign-gossip", src=src, view=foreign,
                           fingerprint=fingerprint)
