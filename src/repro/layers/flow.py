"""Window-based multicast flow control with the fuzzy optimization.

Classic multicast flow control cannot advance the sending window until
*all* receivers acknowledge -- so one slow node pauses the whole group.
JazzEnsemble's fuzzy membership fixes this (paper section 3.1): the window
advances as soon as all members with *low fuzziness* have acknowledged;
slow nodes have high fuzziness and therefore do not stall the sender.

The layer also enforces the receive-side rate bound the verbose detector
needs: a member sending application casts far beyond any plausible window
is reported as verbose (paper section 3.2's "q should not send messages
faster than this limit").
"""

from __future__ import annotations

from collections import deque

from repro.core import message as mk
from repro.layers.base import Layer


class FlowLayer(Layer):
    """Sender window over the app stream."""

    name = "flow"

    def __init__(self):
        super().__init__()
        self._queue = deque()
        self._sent = 0
        self.stalls = 0

    def start(self):
        self.process.stability.subscribe(self._maybe_drain)
        if self.config.byzantine:
            # a correct sender is bounded by its window between acks; allow
            # ample slack so bursty-but-correct senders never trip this
            self.process.verbose_detector.set_rate_bound(
                "flow:cast", max_count=self.config.flow_window * 8,
                window=0.05)

    def on_view(self, view):
        self._queue.clear()
        self._sent = 0

    def on_control(self, event, data):
        if event != "view-change-started" or not self._queue:
            return
        # unsent casts must be re-stamped and re-sent in the NEXT view, or
        # a correct sender's messages would silently vanish (Def 2.2 item 3)
        queued, self._queue = self._queue, type(self._queue)()
        self.process.top.requeue_casts(
            [(m.msg_id, m.payload, m.payload_size) for m in queued])

    # ------------------------------------------------------------------
    def handle_down(self, msg):
        if msg.kind != mk.KIND_CAST or msg.dest is not None:
            self.send_down(msg)
            return
        if self._window_open():
            self._sent += 1
            self.send_down(msg)
        else:
            self.stalls += 1
            self.count("stalls")
            self._queue.append(msg)

    def _window_open(self):
        # the fuzzy optimization (paper section 3.1): members with high
        # mute fuzziness do not hold the sending window back; disabling it
        # reproduces classic all-ack flow control for the ablation bench
        floor = self.process.stability.min_ack(
            self.me, "a", self.view.mbrs,
            ignore_fuzzy=self.config.fuzzy_flow)
        return self._sent - floor < self.config.flow_window

    def _maybe_drain(self):
        while self._queue and self._window_open():
            self._sent += 1
            self.send_down(self._queue.popleft())

    @property
    def queued(self):
        return len(self._queue)

    # ------------------------------------------------------------------
    def handle_up(self, msg):
        if (msg.kind == mk.KIND_CAST and self.config.byzantine
                and msg.origin != self.me):
            self.process.verbose_detector.observe(msg.origin, "flow:cast")
        self.send_up(msg)
