"""Suspicion accumulation and the slander protocol (paper section 3.4.1).

A node locally suspects another when its fuzzy mute or fuzzy verbose level
passes the threshold, or when it is caught red-handed (forged message,
protocol violation).  Local suspicions are *slandered* to all members; a
node adopts a suspicion once more than f members slander the same target
-- with at most f Byzantine nodes, f + 1 slanders imply at least one
correct local suspicion, so adoption is safe.

A Byzantine node that slanders everyone all the time (the paper's
ByzVerboseNode scenario) trips the slander rate bound and becomes verbose
itself -- the detector catching abuse of the detection machinery.

The layer decides when to start the view-change consensus: a settle timer
after the first suspicion (letting concurrent suspicions batch into one
view change), immediately when too many members are suspected, or
immediately when the *coordinator* is suspected.
"""

from __future__ import annotations

from repro.core import message as mk
from repro.core.message import Message
from repro.layers.base import Layer


class SuspicionLayer(Layer):
    """Local suspicion, slander exchange, and view-change triggering."""

    name = "suspicion"

    def __init__(self):
        super().__init__()
        self._local = set()        # members I suspect from my own evidence
        self._adopted = set()      # suspicions adopted via f+1 slanders
        self._slanders = {}        # target -> set of slanderers
        self._settle_timer = None
        self._change_requested = False

    # ------------------------------------------------------------------
    def start(self):
        process = self.process
        process.mute_levels.subscribe(self._on_level_change)
        process.verbose_levels.subscribe(self._on_level_change)
        if self.config.byzantine:
            process.verbose_detector.set_rate_bound(
                "suspicion:slander", max_count=3 * max(8, self.view.n),
                window=0.25)

    def stop(self):
        if self._settle_timer is not None:
            self._settle_timer.cancel()
            self._settle_timer = None

    def state_sizes(self):
        return {
            "local": len(self._local),
            "adopted": len(self._adopted),
            "slanders": sum(len(s) for s in self._slanders.values()),
        }

    def on_control(self, event, data):
        if event == "view-change-started":
            self._change_requested = True
            if self._settle_timer is not None:
                self._settle_timer.cancel()
                self._settle_timer = None
        elif event == "view-change-aborted":
            self._change_requested = False

    def on_view(self, view):
        self._local.clear()
        self._adopted.clear()
        self._slanders.clear()
        self._change_requested = False
        if self._settle_timer is not None:
            self._settle_timer.cancel()
            self._settle_timer = None

    # ------------------------------------------------------------------
    # suspicion sources
    # ------------------------------------------------------------------
    def _on_level_change(self, name, member, level):
        config = self.config
        threshold = (config.mute_suspect_threshold if name == "mute"
                     else config.verbose_suspect_threshold)
        if level >= threshold:
            self.suspect_locally(member, reason=name)

    def suspect_locally(self, member, reason="local"):
        """Mark ``member`` suspected from this node's own evidence."""
        if member == self.me or member not in self.view.mbrs:
            return
        if member in self._local:
            return
        self._local.add(member)
        self.count("local_suspicions")
        self._slanders.setdefault(member, set()).add(self.me)
        slander = Message(mk.KIND_SLANDER, self.me, self.view.vid,
                          (member, reason), payload_size=12)
        self.send_down(slander)
        self._after_new_suspicion()

    def adopt(self, member, reason="adopted"):
        """Adopt a suspicion without local evidence (e.g. explicit leave)."""
        if member == self.me or member not in self.view.mbrs:
            return
        if member in self._adopted or member in self._local:
            return
        self._adopted.add(member)
        self._after_new_suspicion()

    # ------------------------------------------------------------------
    # slander intake
    # ------------------------------------------------------------------
    def handle_up(self, msg):
        if msg.kind != mk.KIND_SLANDER:
            self.send_up(msg)
            return
        self.count("slanders_received")
        if self.config.byzantine:
            if self.process.verbose_detector.observe(
                    msg.origin, "suspicion:slander"):
                return
        payload = msg.payload
        if not isinstance(payload, tuple) or len(payload) != 2:
            if self.config.byzantine:
                self.process.verbose_detector.illegal(
                    msg.origin, "suspicion:bad-slander")
            return
        target, _reason = payload
        if target not in self.view.mbrs or msg.origin == target:
            return
        slanderers = self._slanders.setdefault(target, set())
        slanderers.add(msg.origin)
        f = self.process.f
        # f+1 slanders include at least one correct local suspicion
        if (len(slanderers) >= f + 1 and target not in self._adopted
                and target not in self._local):
            self._adopted.add(target)
            self.count("suspicions_adopted")
            self._after_new_suspicion()

    # ------------------------------------------------------------------
    # view-change triggering policy
    # ------------------------------------------------------------------
    def suspected_set(self):
        return self._local | self._adopted

    def is_suspected(self, member):
        return member in self._local or member in self._adopted

    def _after_new_suspicion(self):
        if self._change_requested:
            # a view change is running; the membership layer will pick up
            # the enlarged suspicion set on its next attempt
            self.stack.control("suspicions-updated",
                               suspected=self.suspected_set())
            return
        config = self.config
        suspected = self.suspected_set()
        coordinator_suspected = self.view.coordinator in suspected
        if (coordinator_suspected
                or len(suspected) >= config.suspect_count_threshold):
            self._fire_change()
        elif self._settle_timer is None:
            self._settle_timer = self.sim.schedule(
                config.suspicion_settle_delay, self._fire_change)

    def _fire_change(self):
        if self._change_requested:
            return
        self._change_requested = True
        self.count("view_change_triggers")
        if self._settle_timer is not None:
            self._settle_timer.cancel()
            self._settle_timer = None
        self.stack.control("start-view-change",
                           suspected=self.suspected_set())
