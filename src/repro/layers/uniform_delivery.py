"""Per-cast uniform delivery (paper sections 3.4.4 and 2.3, Def. 2.2).

A Byzantine node can hand different versions of "the same" broadcast to
different correct members; plain reliable delivery cannot detect this.
When ``uniform_delivery`` is enabled (and total ordering is not -- total
ordering already yields uniform agreement through consensus, as the paper
notes), every cast's *digest* is agreed through the Byzantine uniform
broadcast before the cast may reach the application:

* the cast itself plays the role of the ``initial`` message: each receiver
  feeds the digest of *its own copy* into the instance;
* members echo the digest they saw; the two-step quorum guarantees at most
  one digest can ever be delivered;
* a member whose copy does not match the agreed digest fetches a matching
  copy from any member that echoed it -- the digest is collision
  resistant, so one matching response suffices.

Per-origin FIFO is preserved: casts are released in arrival order, each
waiting for its own agreement.  This layer costs O(n) broadcasts per cast
-- the measured price of the paper's ``+Uniform`` configurations, which
(unlike total ordering) cannot amortize agreement over batches.
"""

from __future__ import annotations

import hashlib
from collections import deque

from repro.broadcast.bracha import BrachaBroadcast
from repro.broadcast.uniform import UniformBroadcast
from repro.core import message as mk
from repro.core.message import Message
from repro.layers.base import Layer


def payload_digest(payload):
    return hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()[:16]


class _Pending:
    __slots__ = ("msg", "digest", "agreed")

    def __init__(self, msg, digest):
        self.msg = msg
        self.digest = digest
        self.agreed = None


class UniformDeliveryLayer(Layer):
    """Digest agreement in front of application delivery."""

    name = "uniform"

    def __init__(self):
        super().__init__()
        self._queues = {}     # origin -> deque of msg_ids, arrival order
        self._pending = {}    # msg_id -> _Pending
        self._instances = {}  # msg_id -> agreement instance
        self._done = {}       # msg_id -> agreed digest (released tombstones)
        self._agreed_early = {}  # agreement finished before our copy arrived
        self._flush_cb = None
        self._flush_timer = None
        self.delivered_uniform = 0
        self.mismatches_recovered = 0
        self.dropped_unresolved = 0

    @property
    def active(self):
        return self.config.uniform_delivery and not self.config.total_order

    def stop(self):
        if self._flush_timer is not None:
            self._flush_timer.cancel()
            self._flush_timer = None

    def on_view(self, view):
        self._queues.clear()
        self._pending.clear()
        self._instances.clear()
        self._done.clear()
        self._agreed_early.clear()
        self._flush_cb = None
        if self._flush_timer is not None:
            self._flush_timer.cancel()
            self._flush_timer = None

    # ------------------------------------------------------------------
    def handle_up(self, msg):
        if not self.active:
            self.send_up(msg)
            return
        if msg.kind == mk.KIND_CAST:
            self._on_cast(msg)
        elif msg.kind == mk.KIND_UDELIV:
            self._on_proto(msg)
        else:
            self.send_up(msg)

    def _on_cast(self, msg):
        msg_id = msg.msg_id
        if msg_id is None or msg_id in self._done or msg_id in self._pending:
            return
        self.process.cpu.charge(self.config.crypto_costs.hash_digest)
        digest = payload_digest(msg.payload)
        entry = _Pending(msg, digest)
        # a lost-and-retransmitted cast may arrive after its agreement
        # already completed from the quorum's echoes
        entry.agreed = self._agreed_early.pop(msg_id, None)
        self._pending[msg_id] = entry
        self._queues.setdefault(msg.origin, deque()).append(msg_id)
        if entry.agreed is not None:
            self._try_release(msg.origin)
            return
        instance = self._instance_for(msg_id)
        if instance is not None and not instance.delivered:
            # the cast is the origin's "initial"; our copy's digest is what
            # the origin told *us*
            instance.on_message(msg_id[0], ("ub-initial", digest)
                                if self.config.uniform_protocol == "twostep"
                                else ("br-initial", digest))
        self._try_release(msg.origin)

    def _instance_for(self, msg_id):
        instance = self._instances.get(msg_id)
        if instance is not None:
            return instance
        if msg_id in self._done:
            return None
        view = self.view
        origin = msg_id[0]
        if origin not in view.mbrs:
            return None

        def bcast(proto):
            out = Message(mk.KIND_UDELIV, self.me, view.vid,
                          ("ub", msg_id, proto), payload_size=26)
            self.send_down(out)

        protocol = (UniformBroadcast
                    if self.config.uniform_protocol == "twostep"
                    else BrachaBroadcast)
        try:
            instance = protocol(
                msg_id, list(view.mbrs), self.me, self.process.f, origin,
                bcast,
                on_deliver=lambda digest: self._on_agreed(msg_id, digest),
                on_misbehavior=self._misbehavior)
        except ValueError:
            return None  # view too small: casts deliver without agreement
        self._instances[msg_id] = instance
        return instance

    def _misbehavior(self, member, reason):
        if member != self.me:
            self.process.verbose_detector.illegal(member, reason)

    # ------------------------------------------------------------------
    def _on_proto(self, msg):
        payload = msg.payload
        if not isinstance(payload, tuple) or len(payload) != 3:
            self._misbehavior(msg.origin, "uniform:bad-proto")
            return
        tag, msg_id, body = payload
        if not isinstance(msg_id, tuple) or len(msg_id) != 2:
            self._misbehavior(msg.origin, "uniform:bad-id")
            return
        if tag == "ub":
            if msg_id in self._done:
                return
            instance = self._instance_for(msg_id)
            if instance is not None:
                instance.on_message(msg.origin, body)
        elif tag == "fetch":
            self._serve_fetch(msg.origin, msg_id)
        elif tag == "copy":
            self._on_copy(msg_id, body)
        else:
            self._misbehavior(msg.origin, "uniform:unknown-tag")

    def _on_agreed(self, msg_id, digest):
        entry = self._pending.get(msg_id)
        if entry is not None:
            entry.agreed = digest
            self._try_release(msg_id[0])
        else:
            # agreement beat the content; hold the verdict until the
            # reliable layer recovers the cast itself
            self._agreed_early[msg_id] = digest

    def _try_release(self, origin):
        queue = self._queues.get(origin)
        while queue:
            msg_id = queue[0]
            entry = self._pending.get(msg_id)
            if entry is None:
                queue.popleft()
                continue
            if entry.agreed is None:
                return
            if entry.agreed != entry.digest:
                # two-faced origin: our copy is the minority version; fetch
                # a copy matching the agreed digest from the echo quorum
                self._fetch(msg_id)
                return
            queue.popleft()
            self._pending.pop(msg_id, None)
            self._instances.pop(msg_id, None)
            self._done[msg_id] = entry.agreed
            self.delivered_uniform += 1
            self.count("uniform_delivered")
            self.send_up(entry.msg)
        self._check_flush()

    def _fetch(self, msg_id):
        out = Message(mk.KIND_UDELIV, self.me, self.view.vid,
                      ("fetch", msg_id, None), payload_size=26)
        self.send_down(out)

    def _serve_fetch(self, requester, msg_id):
        entry = self._pending.get(msg_id)
        payload = None
        if entry is not None:
            payload = (entry.msg.payload, entry.msg.payload_size)
        elif msg_id in self._done:
            return  # already released and dropped our buffer; others serve
        if payload is None:
            return
        out = Message(mk.KIND_UDELIV, self.me, self.view.vid,
                      ("copy", msg_id, payload),
                      payload_size=26 + payload[1], dest=requester)
        self.send_down(out)

    def _on_copy(self, msg_id, body):
        entry = self._pending.get(msg_id)
        if entry is None or entry.agreed is None or not isinstance(body, tuple):
            return
        payload, size = body
        if payload_digest(payload) != entry.agreed:
            return
        self.mismatches_recovered += 1
        self.count("mismatches_recovered")
        fixed = Message(mk.KIND_CAST, msg_id[0], entry.msg.view_id, payload,
                        size if isinstance(size, int) else 0, msg_id=msg_id)
        entry.msg = fixed
        entry.digest = entry.agreed
        self._try_release(msg_id[0])

    # ------------------------------------------------------------------
    # flush at view change
    # ------------------------------------------------------------------
    def flush(self, on_done):
        """Resolve the backlog, then call ``on_done``.

        Agreements for casts from correct origins complete on their own
        (control traffic keeps flowing while the view is wedged); casts
        whose agreement cannot complete -- a two-faced origin that reached
        no quorum -- are dropped after a timeout, at every member alike.
        """
        self._flush_cb = on_done
        self._flush_timer = self.sim.schedule(
            2 * self.config.consensus_msg_timeout, self._flush_expire)
        self._check_flush()

    def _check_flush(self):
        if self._flush_cb is None:
            return
        if self._pending:
            return
        done, self._flush_cb = self._flush_cb, None
        if self._flush_timer is not None:
            self._flush_timer.cancel()
            self._flush_timer = None
        done()

    def _flush_expire(self):
        self._flush_timer = None
        if self._flush_cb is None:
            return
        self.dropped_unresolved += len(self._pending)
        self._pending.clear()
        self._queues.clear()
        done, self._flush_cb = self._flush_cb, None
        done()
