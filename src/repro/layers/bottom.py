"""Bottom layer: network attach, one-shot signing, and message filtering.

This is the only place cryptography happens (paper section 1.2): every
outgoing message is signed exactly once, every incoming datagram verified
exactly once.  Filtering of bad messages -- corrupt (signature mismatch),
impersonated (claimed origin differs from the true network source), or
sent in a different view -- also happens here, so no higher layer ever
sees them (paper section 3.3).

The layer also charges the node's CPU for per-datagram processing and for
cryptographic work, which is what makes the simulated throughput finite
and lets the benchmarks reproduce the paper's crypto cost measurements.
"""

from __future__ import annotations

from repro.core import message as mkinds
from repro.layers.base import Layer

#: kinds a node may accept from outside its current view
CROSS_VIEW_KINDS = frozenset({mkinds.KIND_MERGE, mkinds.KIND_NEWVIEW})

#: modelled per-header wire overhead, bytes
HEADER_BYTES = 6


class BottomLayer(Layer):
    """The lowest micro-protocol layer; talks to the simulated network."""

    name = "bottom"

    #: perf-parity switch (tests/test_perf_parity.py): with this off,
    #: _process_pack_in verifies each frame through the per-message
    #: reference path instead of one verify_batch call per drain
    batch_verify = True

    def __init__(self):
        super().__init__()
        self.messages_signed = 0
        self.datagrams_in = 0
        self.dropped_bad_signature = 0
        self.dropped_wrong_view = 0
        self.dropped_wrong_group = 0
        self.dropped_impersonation = 0
        self.dropped_stale_incarnation = 0
        self.dropped_undecodable = 0
        self.packets_packed = 0
        self._pack_queues = {}   # dst -> [(msg, inner_size)]
        self._pack_bytes = {}    # dst -> running byte total of that queue
        self._pack_timers = {}   # dst -> Timer
        # crash-recovery: highest incarnation seen per transmitter.  Kept
        # across views on purpose -- a reincarnated peer's number must not
        # reset when the membership changes, or the dead incarnation's
        # stragglers would be accepted again.
        self._peer_inc = {}
        # corruption-triggered suspicion: consecutive signature rejections
        # per transmitter since the last view change
        self._sig_strikes = {}
        self._cpu_queue = None

    def state_sizes(self):
        return {
            "peer_inc": len(self._peer_inc),
            "sig_strikes": len(self._sig_strikes),
            "pack_queued": sum(len(q) for q in self._pack_queues.values()),
        }

    def attach(self, stack):
        super().attach(stack)
        # every event this layer schedules fires at a Cpu.charge deadline,
        # and those are non-decreasing per node -- so the whole CPU backlog
        # rides one serial queue and the global heap holds at most one
        # entry per node instead of one per queued datagram
        # (docs/PERFORMANCE.md, "The CPU path")
        self._cpu_queue = self.sim.serial_queue()
        # fixed at process construction; cached off the per-message path
        self._group_id = getattr(self.process, "group_id", None)

    # ------------------------------------------------------------------
    # downward: sign once, charge CPU, transmit per destination
    # ------------------------------------------------------------------
    def handle_down(self, msg):
        process = self.process
        if msg.dest is not None:
            receivers = (msg.dest,)
        else:
            receivers = tuple(m for m in self.view.mbrs if m != self.me)
        if not receivers:
            return
        group = self._group_id
        if group is not None and msg.group != group:
            # multi-group envelope: stamped before signing so the shard id
            # is covered by the signature -- a datagram replayed into a
            # different shard fails verification, not just the filter below
            msg.group = group
            msg._auth_cache = None
        auth = process.auth
        signature, sign_cost, sig_bytes = auth.sign(
            self.me, receivers, msg.auth_token())
        msg.signature = signature
        self.messages_signed += 1
        self.count("messages_signed")
        self.observe("sign_cpu", sign_cost)
        if process.incarnation:
            # transport metadata, pushed AFTER signing: the incarnation
            # number stays outside the signed content so archived copies
            # retransmitted by third parties (which reconstruct only the
            # signed headers) still verify.  It defends against *stale*
            # messages, not active forgery -- the impersonation check
            # already makes the network source authoritative.  First-boot
            # processes (incarnation 0) push nothing, so wire sizes and
            # seed-pinned timings are unchanged unless a restart happened.
            msg.push_header("inc", process.incarnation)
        host = self.config.host
        if self.config.packing:
            # per-packet costs are charged at pack-flush time instead
            total_cpu = sign_cost
        else:
            per_datagram = host.send_cpu
            if self.config.byzantine:
                per_datagram += host.byz_check_cpu
            total_cpu = sign_cost + per_datagram * len(receivers)
        size = msg.wire_size(HEADER_BYTES * len(msg.headers), sig_bytes)
        done = process.cpu.charge(total_cpu)
        self.sim.schedule_serial(self._cpu_queue, done,
                                 self._transmit, msg, receivers, size)

    def _transmit(self, msg, receivers, size):
        process = self.process
        behavior = process.behavior
        for dst in receivers:
            out = msg.clone_for(dst)
            if behavior is not None:
                out = behavior.filter_outgoing(dst, out)
                if out is None:
                    continue
            if self.config.packing:
                self._enqueue_packed(dst, out, size)
            else:
                process.network.send(self.me, dst, size, out)

    # ------------------------------------------------------------------
    # packing/batching optimization [33] (paper footnote 3: not used in
    # its measurements; the predicted 10x+ boost for small messages)
    # ------------------------------------------------------------------
    def _enqueue_packed(self, dst, out, size):
        # running byte total per queue: O(1) per enqueue (a sum() here made
        # a k-message burst cost O(k^2) in queue length)
        queue = self._pack_queues.get(dst)
        if queue is None:
            queue = self._pack_queues[dst] = []
            self._pack_bytes[dst] = 0
        queue.append((out, size))
        total = self._pack_bytes[dst] + size
        self._pack_bytes[dst] = total
        # the same (budget, delay) policy drives the wire coalescer --
        # StackConfig.packing_policy is the single definition of "when is
        # an aggregate full / stale" at both aggregation points
        max_bytes, flush_delay = self.config.packing_policy()
        if total >= max_bytes:
            self._flush_pack(dst)
        elif dst not in self._pack_timers:
            self._pack_timers[dst] = self.sim.schedule(
                flush_delay, self._flush_pack, dst)

    def _flush_pack(self, dst):
        timer = self._pack_timers.pop(dst, None)
        if timer is not None:
            timer.cancel()
        queue = self._pack_queues.pop(dst, None)
        total = self._pack_bytes.pop(dst, 0)
        if not queue:
            return
        # one per-packet CPU charge instead of one per message: this is
        # the entire saving packing buys
        host = self.config.host
        cost = host.send_cpu
        if self.config.byzantine:
            cost += host.byz_check_cpu
        done = self.process.cpu.charge(cost)
        container = ("pack", tuple(msg for msg, _size in queue))
        self.packets_packed += 1
        self.count("packets_packed")
        self.sim.schedule_serial(self._cpu_queue, done,
                                 self.process.network.send,
                                 self.me, dst, total, container)

    # ------------------------------------------------------------------
    # upward: charge CPU, verify once, filter, pass up
    # ------------------------------------------------------------------
    def on_datagram(self, src, msg):
        """Raw datagram arrival (called by the owning process)."""
        self.datagrams_in += 1
        host = self.config.host
        if isinstance(msg, tuple) and len(msg) == 2 and msg[0] == "pack":
            inner = msg[1]
            if not isinstance(inner, tuple):
                return
            cost = host.recv_cpu + self._per_message_in_cost() * len(inner)
            done = self.process.cpu.charge(cost)
            # one batched event for the whole packet instead of one per
            # inner message: the messages ran back-to-back either way
            # (consecutive heap sequence numbers at the same deadline), so
            # processing them in one callback preserves execution order
            # while saving k-1 heap operations per packet
            self.sim.schedule_serial(self._cpu_queue, done,
                                     self._process_pack_in, src, inner)
            return
        cost = host.recv_cpu + self._per_message_in_cost()
        done = self.process.cpu.charge(cost)
        self.sim.schedule_serial(self._cpu_queue, done,
                                 self._process_in, src, msg)

    def _process_pack_in(self, src, inner):
        process = self.process
        if self.batch_verify and self.config.byzantine and not process.stopped:
            # one verify_batch pass for the whole drain: the transport
            # metadata is popped up-front (all frames arrived in this one
            # callback either way, so the early pop is invisible), frames
            # failing the impersonation check are excluded exactly as the
            # per-message path never verifies them, and every
            # verdict-dependent side effect (drops, strikes, delivery)
            # still runs per-frame, in frame order
            incs = []
            items = []
            for msg in inner:
                incs.append(msg.pop_header("inc", 0))
                if msg.sender == src:
                    items.append((
                        msg.origin if msg.sender == msg.origin
                        else msg.sender,
                        msg.auth_token(), msg.signature))
            verdicts, _cost = process.auth.verify_batch(self.me, items)
            verdict_iter = iter(verdicts)
            finish = self._finish_in
            for msg, inc in zip(inner, incs):
                if process.stopped:
                    return
                if msg.sender != src:
                    self.dropped_impersonation += 1
                    self.count("drop_impersonation")
                    process.verbose_detector.illegal(
                        src, "bottom:impersonation")
                    continue
                if not next(verdict_iter):
                    self.dropped_bad_signature += 1
                    self.count("drop_bad_signature")
                    process.verbose_detector.illegal(
                        src, "bottom:bad-signature")
                    self._sig_strike(src)
                    continue
                finish(src, msg, inc)
            return
        process_in = self._process_in
        for one in inner:
            process_in(src, one)

    def _per_message_in_cost(self):
        cost = 0.0
        if self.config.byzantine:
            cost += self.config.host.byz_check_cpu
            if self.config.crypto != "none":
                cost += (self.process.auth.costs.sym_verify
                         if self.config.crypto == "sym"
                         else self.process.auth.costs.pub_verify)
        return cost

    def _process_in(self, src, msg):
        process = self.process
        if process.stopped:
            return
        # popped before verification so the remaining headers match the
        # signed content (the header is unsigned transport metadata)
        inc = msg.pop_header("inc", 0)
        if self.config.byzantine:
            # impersonation check: the claimed transmitter must be the true
            # network source (the paper assumes nodes cannot impersonate,
            # realized by cryptography / private lines -- section 2.2)
            if msg.sender != src:
                self.dropped_impersonation += 1
                self.count("drop_impersonation")
                process.verbose_detector.illegal(src, "bottom:impersonation")
                return
            ok, _cost = process.auth.verify(
                self.me, msg.origin if msg.sender == msg.origin else msg.sender,
                msg.auth_token(), msg.signature)
            if not ok:
                # a corrupt or forged message: its digest does not fit its
                # content; drop it before it reaches any layer
                self.dropped_bad_signature += 1
                self.count("drop_bad_signature")
                process.verbose_detector.illegal(src, "bottom:bad-signature")
                self._sig_strike(src)
                return
        self._finish_in(src, msg, inc)

    def _finish_in(self, src, msg, inc):
        """Post-verification filters and delivery, shared by the
        per-message and batched receive paths."""
        process = self.process
        if msg.group != self._group_id:
            # a message for another shard on the shared transport (or a
            # cross-shard replay): never let it reach this group's layers
            self.dropped_wrong_group += 1
            self.count("drop_wrong_group")
            return
        known = self._peer_inc.get(src, 0)
        if inc != known:
            if inc < known:
                # a straggler from a dead incarnation of a restarted peer:
                # reject it here so it cannot replay into the fresh stack
                self.dropped_stale_incarnation += 1
                self.count("drop_stale_incarnation")
                return
            self._peer_inc[src] = inc
        if (msg.view_id != process.view.vid
                and msg.kind not in CROSS_VIEW_KINDS):
            self.dropped_wrong_view += 1
            self.count("drop_wrong_view")
            return
        process.note_heard_from(src)
        self.send_up(msg)

    def note_undecodable(self, src):
        """An arriving datagram failed wire decoding (real-network runtime:
        truncated, bit-flipped, or garbage bytes).  The simulator never
        produces these -- its payloads are structured objects -- but on the
        wire they are exactly the corruption the signature check would have
        caught one step later, so they feed the same evidence trail: the
        verbose detector's illegal count and the corruption-strike path
        toward ``corruption_suspect_threshold``.  ``src`` is the claimed
        frame source when the header survived, else None (unattributable
        noise is counted but suspects nobody)."""
        if self.process.stopped:
            return
        self.dropped_undecodable += 1
        self.count("drop_undecodable")
        if src is not None and src in self.view.mbrs:
            self.process.verbose_detector.illegal(src, "bottom:undecodable")
            self._sig_strike(src)

    def _sig_strike(self, src):
        """Corruption-triggered suspicion: enough signature rejections from
        one transmitter are evidence its link (or the node itself) is
        feeding us garbage -- report it to the suspicion layer, which
        slanders so the group can agree to route around it."""
        threshold = self.config.corruption_suspect_threshold
        if not threshold:
            return
        strikes = self._sig_strikes.get(src, 0) + 1
        self._sig_strikes[src] = strikes
        if strikes == threshold:
            self.count("corruption_suspicions")
            self.process.suspicion.suspect_locally(
                src, reason="bottom:corruption")

    def on_view(self, view):
        # strikes are per-view evidence; the incarnation table is NOT
        # reset (see __init__)
        self._sig_strikes.clear()

    def stop(self):
        # crash semantics: a dead node's pack-flush timers must not fire
        # callbacks into the stopped stack
        for timer in self._pack_timers.values():
            timer.cancel()
        self._pack_timers.clear()
        self._pack_queues.clear()
        self._pack_bytes.clear()
