"""Byzantine membership maintenance (paper section 3.4).

The view-change state machine, per node:

::

    IDLE --(start-view-change)--> CONSENSUS     vector consensus on the
                                                suspicion vector
    CONSENSUS --decided--> SYNC                 wedge app stream, exchange
                                                SYNC reports (flush)
    SYNC --all survivors reported--> CUT        agreed cut; recover gaps,
                                                deliver exactly up to it
    CUT --complete--> AWAIT_VIEW                new coordinator uniformly
                                                broadcasts the new view
    AWAIT_VIEW --UB delivered + verified--> install

Byzantine defences at each step:

* the suspicion vector is agreed via :class:`VectorConsensus` so a
  Byzantine minority can never evict a correct member on its own;
* the new coordinator is *locally computable* (rank rotation), so every
  member knows who must produce the view and registers a fuzzy-mute
  expectation against it;
* the new-view message travels by Byzantine uniform broadcast, and members
  verify its content against what they can compute themselves before
  echoing (a coordinator sending a wrong view -- the paper's CoordBadView
  scenario -- is caught here and the change re-runs without it);
* a member withholds its uniform-broadcast echo until every message it
  knows of from the terminating view is deliverable locally (the flush
  rule of section 3.4.4), so installing members agree on delivered sets.

Merging (section 3.4.2): all nodes listen to coordinator gossip.  The
side with the *smaller* view identifier requests a merge; the target
coordinator announces the joiners to its own members (so the eventual view
is verifiable by everyone) and runs a normal view change that appends
them.  Joiners receive the installed view by direct message, cross-check
it among themselves, flush their own terminating view, and install.
"""

from __future__ import annotations

import hashlib

from repro.broadcast.bracha import BrachaBroadcast
from repro.broadcast.uniform import UniformBroadcast
from repro.core import message as mk
from repro.core.message import Message
from repro.core.view import View, ViewId, choose_coordinator
from repro.layers.base import Layer
from repro.layers.heartbeat import stack_fingerprint

IDLE = "idle"
CONSENSUS = "consensus"
SYNC = "sync"
CUT = "cut"
AWAIT_VIEW = "await-view"
JOINING = "joining"


def _digest(obj):
    return hashlib.sha256(repr(obj).encode("utf-8")).hexdigest()[:16]


class MembershipLayer(Layer):
    """Coordinator-driven Byzantine view management."""

    name = "membership"

    #: regression-revert switches (tests only).  Flipping either re-opens
    #: a bug the chaos campaign once found, so the tournament's search can
    #: prove it would re-discover them:
    #:
    #: * ``vid_counter_floor=False`` drops the never-reuse-a-counter floor
    #:   -- an aborted change plus a later singleton fallback can bind two
    #:   memberships to one vid (view-agreement violation; two concurrent
    #:   leaves sufficed);
    #: * ``oneshot_view_send=False`` lets every ack-matrix update re-enter
    #:   the coordinator's view send, whose zero-delay self-delivery then
    #:   feeds itself forever (livelock) when originate() re-broadcasts;
    #: * ``unsubscribe_stability=False`` leaves the per-change stability
    #:   subscription registered forever -- one dead listener per view
    #:   change, unbounded under churn (the leak the long-horizon soak
    #:   plane's BoundedStateChecker flags via ``stability.listeners``).
    vid_counter_floor = True
    oneshot_view_send = True
    unsubscribe_stability = True

    def __init__(self):
        super().__init__()
        self._state = IDLE
        self._epoch = 0
        self._consensus = None
        self._consensus_pending = []   # (sender, instance_id, payload)
        self._suspected_at_start = set()
        self._leavers = set()
        self._survivors = None
        self._failed = None
        self._new_coord = None
        self._sync_reports = {}
        self._sync_ord_k = {}
        self._sync_pending = []        # (origin, epoch, report, ord_k)
        self._sync_nudged = set()      # laggards we re-sent our report to
        self._sync_sent_wire = None    # our frozen report, for re-sends
        self._cut = None
        self._cut_done = False
        self._ub = None
        self._ub_pending = []
        self._ub_ready = False
        self._pending_joiners = None   # foreign View whose members join us
        self._merge_requested_at = {}
        self._merge_inflight = None    # (target coordinator, request time)
        self._rejoin_requested_at = -1e9
        self._regroup_timer = None
        self._join_offer = None        # (view, digest) received as a joiner
        self._join_echoes = {}
        self._join_timer = None        # fallback for a stalled join
        self._expectations = []
        self._waiting_stability = False
        self._flush_undecidable = False
        self._legacy_substab = False   # oneshot_view_send revert only
        # the highest view counter this node has ever attached to a view
        # it proposed on the wire or installed; never reset.  Any view we
        # CREATE later must use a strictly larger counter, or an aborted
        # change attempt and a later singleton fallback could bind two
        # different memberships to the same vid (view-agreement violation
        # found by the chaos campaign: two concurrent leaves sufficed)
        self._counter_floor = 0
        # measurement hooks used by the benchmarks
        self.view_changes = 0
        self.change_started_at = None
        self.last_change_duration = None
        self.leaving = False

    def state_sizes(self):
        return {
            "sync_reports": len(self._sync_reports),
            "sync_pending": len(self._sync_pending),
            "consensus_pending": len(self._consensus_pending),
            "ub_pending": len(self._ub_pending),
            "join_echoes": len(self._join_echoes),
            "merge_requests": len(self._merge_requested_at),
        }

    def _floor(self):
        """The vid-counter floor, or 0 with the regression revert on."""
        return self._counter_floor if self.vid_counter_floor else 0

    # ------------------------------------------------------------------
    # control plane
    # ------------------------------------------------------------------
    def on_view(self, view):
        self._reset_change_state()
        # change-attempt epochs restart per view: every agreement instance
        # id is scoped by vid.key() so uniqueness is unaffected, and a
        # common baseline is what lets members that joined through
        # different merge paths (different attempt counts) line their
        # epochs up for the next change -- critical in regroup mode
        # (f = 0), which has no consensus traffic to reconcile them
        self._epoch = 0
        self._leavers.clear()
        self._pending_joiners = None
        self._join_offer = None
        self._join_echoes = {}
        self._merge_requested_at.clear()
        self._merge_inflight = None
        self._rejoin_requested_at = -1e9

    def _reset_change_state(self):
        if self.unsubscribe_stability:
            # one unsubscribe per live registration: the stability wait
            # and the legacy-substab revert each subscribe separately
            if self._waiting_stability:
                self.process.stability.unsubscribe(self._on_stability_update)
            if self._legacy_substab:
                self.process.stability.unsubscribe(self._on_stability_update)
        self._state = IDLE
        self._consensus = None
        self._consensus_pending = []
        self._survivors = None
        self._failed = None
        self._new_coord = None
        self._sync_reports = {}
        self._sync_ord_k = {}
        self._sync_pending = []
        self._sync_nudged = set()
        self._sync_sent_wire = None
        self._cut = None
        self._cut_done = False
        self._ub = None
        self._ub_pending = []
        self._ub_ready = False
        self._waiting_stability = False
        self._flush_undecidable = False
        self._legacy_substab = False
        if self._join_timer is not None:
            self._join_timer.cancel()
            self._join_timer = None
        self._cancel_expectations()

    def _cancel_expectations(self):
        for exp in self._expectations:
            exp.cancel()
        self._expectations = []

    def stop(self):
        # crash semantics: a dead node's pending regroup retry must not
        # re-enter the view-change machinery (expectation timers live in
        # the mute detector, which the process cancels wholesale)
        if self._regroup_timer is not None:
            self._regroup_timer.cancel()
            self._regroup_timer = None
        if self._join_timer is not None:
            self._join_timer.cancel()
            self._join_timer = None
        self._cancel_expectations()

    def _expect(self, member, tag, timeout):
        exp = self.process.mute_detector.expect(member, tag, timeout)
        self._expectations.append(exp)
        return exp

    def on_control(self, event, data):
        if event == "start-view-change":
            self._begin(data.get("suspected", set()))
        elif event == "suspicions-updated":
            self._on_suspicions_updated(data.get("suspected", set()))
        elif event == "foreign-gossip":
            self._on_foreign_gossip(data["src"], data["view"],
                                    data["fingerprint"])

    # ------------------------------------------------------------------
    # message plane
    # ------------------------------------------------------------------
    def handle_up(self, msg):
        kind = msg.kind
        if kind == mk.KIND_CONSENSUS:
            self._on_consensus_msg(msg)
        elif kind == mk.KIND_SYNC:
            self._on_sync_msg(msg)
        elif kind == mk.KIND_UB:
            self._on_ub_msg(msg)
        elif kind == mk.KIND_LEAVE:
            self._on_leave(msg)
        elif kind == mk.KIND_MERGE:
            payload = msg.payload
            if isinstance(payload, tuple) and payload[:1] == ("rejoin",):
                self._on_rejoin_request(msg)
            else:
                self._on_merge_request(msg)
        elif kind == mk.KIND_MANNOUNCE:
            self._on_merge_announce(msg)
        elif kind == mk.KIND_NEWVIEW:
            self._on_join_offer(msg)
        else:
            self.send_up(msg)

    # ------------------------------------------------------------------
    # phase 1: consensus on the suspicion vector
    # ------------------------------------------------------------------
    def _begin(self, suspected, bump_epoch=True):
        if self._state != IDLE and bump_epoch:
            return
        if self.view.n == 1 and self._pending_joiners is None:
            return  # nothing to decide in a singleton view
        self._state = CONSENSUS
        self.count("view_changes_started")
        if self.change_started_at is None:
            self.change_started_at = self.sim.now
        self.stack.blocked = True
        self.stack.control("view-change-started")
        self._suspected_at_start = (set(suspected) | self._leavers)
        self._epoch += 1
        self._start_agreement()

    def _start_consensus_instance(self):
        view = self.view
        proposal = tuple(
            1 if member in self._suspected_at_start else 0
            for member in view.mbrs)
        instance_id = ("vc", view.vid.key(), self._epoch)
        process = self.process

        def bcast(payload):
            size = 12 + view.n
            out = Message(mk.KIND_CONSENSUS, self.me, view.vid,
                          (instance_id, payload), payload_size=size)
            self.send_down(out)

        def on_round(rnd, awaited):
            for member in awaited:
                if member != self.me:
                    self._expect(member, "consensus",
                                 self.config.consensus_msg_timeout)

        from repro.consensus.vector import VectorConsensus
        self._consensus = VectorConsensus(
            instance_id, list(view.mbrs), self.me, process.f, proposal,
            bcast,
            is_suspected=self._fd_suspects,
            on_decide=self._on_consensus_decided,
            on_misbehavior=self._on_peer_misbehavior,
            coordinator_seed=view.vid.key(),
            on_round=on_round)
        pending, self._consensus_pending = self._consensus_pending, []
        self._consensus.start()
        for sender, iid, payload in pending:
            if iid == instance_id:
                self._consensus.on_message(sender, payload)

    def _fd_suspects(self, member):
        process = self.process
        if process.suspicion.is_suspected(member):
            return True
        return (process.mute_levels.level(member)
                >= self.config.mute_suspect_threshold)

    def _on_peer_misbehavior(self, member, reason):
        if self.config.byzantine and member != self.me:
            self.process.verbose_detector.illegal(member, reason)

    def _on_consensus_msg(self, msg):
        payload = msg.payload
        if not isinstance(payload, tuple) or len(payload) != 2:
            self._on_peer_misbehavior(msg.origin, "membership:bad-consensus")
            return
        instance_id, proto = payload
        if (not isinstance(instance_id, tuple) or len(instance_id) != 3
                or instance_id[0] != "vc"):
            self._on_peer_misbehavior(msg.origin, "membership:bad-instance")
            return
        self.process.mute_detector.fulfil(msg.origin, "consensus")
        _tag, vid_key, epoch = instance_id
        if vid_key != self.view.vid.key():
            return
        if not isinstance(epoch, int) or epoch < 1 or epoch > self._epoch + 64:
            return
        if epoch > self._epoch:
            # another member detected failures (or a later attempt) first:
            # join its consensus epoch with our own local evidence
            self._consensus_pending.append((msg.origin, instance_id, proto))
            self._join_epoch(epoch)
            return
        if self._consensus is not None and instance_id == self._consensus.instance_id:
            self._consensus.on_message(msg.origin, proto)
        elif epoch == self._epoch and self._consensus is None:
            self._consensus_pending.append((msg.origin, instance_id, proto))
            self._begin(self.process.suspicion.suspected_set(),
                        bump_epoch=False)

    def _join_epoch(self, epoch):
        self._cancel_expectations()
        self._state = CONSENSUS
        if self.change_started_at is None:
            self.change_started_at = self.sim.now
        self.stack.blocked = True
        self.stack.control("view-change-started")
        self._suspected_at_start = (
            set(self.process.suspicion.suspected_set()) | self._leavers)
        self._epoch = epoch
        self._sync_reports = {}
        self._sync_ord_k = {}
        self._start_agreement()

    def _on_suspicions_updated(self, suspected):
        if self._consensus is not None:
            self._consensus.notify_suspicion_change()
        if self._state == CONSENSUS:
            fresh = set(suspected) - self._suspected_at_start
            if fresh and len(set(suspected) | self._leavers) > self.process.f:
                # the consensus floor of n - f responders is no longer
                # reachable; restart, which routes into regroup mode
                self._restart()
        elif self._state in (SYNC, CUT, AWAIT_VIEW):
            blocking = set(self._survivors or ()) & set(suspected)
            if blocking - self._suspected_at_start:
                # a survivor (possibly the new coordinator) failed during
                # the flush: re-run the agreement with the new evidence
                self._restart()

    def _restart(self):
        self._restart_at(self._epoch + 1)

    def _restart_at(self, epoch):
        self._cancel_expectations()
        self._state = CONSENSUS
        self._epoch = epoch
        self._suspected_at_start = (
            set(self.process.suspicion.suspected_set()) | self._leavers)
        self._sync_reports = {}
        self._sync_ord_k = {}
        self._sync_nudged = set()
        self._sync_sent_wire = None
        self._cut = None
        self._cut_done = False
        self._ub = None
        self._ub_pending = []
        self._ub_ready = False
        self._waiting_stability = False
        self._start_agreement()

    def _start_agreement(self):
        """Choose how to agree on the failed set.

        The vector consensus needs a core of n - f connected correct
        members; when more than f members are suspected (a partition or a
        mass crash), that core cannot exist and the consensus would never
        terminate.  The paper leaves this case open (section 3.4.5); we
        fall back to *regroup* mode: survivors converge on the suspicion
        set through slander exchange, then go straight to the flush -- the
        verified uniform broadcast of the new view still prevents a wrong
        membership from installing.
        """
        if len(self._suspected_at_start) > self.process.f:
            self._consensus = None
            epoch = self._epoch
            # one heartbeat of grace so slanders equalize suspicion sets
            timer = self.sim.schedule(self.config.heartbeat_interval,
                                      self._regroup_fire, epoch)
            self._regroup_timer = timer
        else:
            self._start_consensus_instance()

    def _regroup_fire(self, epoch):
        if epoch != self._epoch or self._state != CONSENSUS:
            return
        self._suspected_at_start = (
            set(self.process.suspicion.suspected_set()) | self._leavers)
        view = self.view
        vector = tuple(1 if m in self._suspected_at_start else 0
                       for m in view.mbrs)
        self._on_consensus_decided(vector)

    # ------------------------------------------------------------------
    # phase 2: flush (sync + cut)
    # ------------------------------------------------------------------
    def _on_consensus_decided(self, vector):
        view = self.view
        failed = {view.mbrs[k] for k, bit in enumerate(vector) if bit == 1}
        self._failed = failed
        if not failed and self._pending_joiners is None:
            # nothing to change after all; resume normal operation
            self._reset_change_state()
            self.change_started_at = None
            self.stack.blocked = False
            self.stack.control("view-change-aborted")
            return
        if self.me in failed:
            # the group agreed to exclude us; fall back to a singleton view
            # (counter carried forward -- view ids must stay monotonic in
            # our own history, Def 2.1 item 2) and try to merge back in
            fallback = View(ViewId(max(view.vid.counter,
                                       self._floor()) + 1, self.me),
                            (self.me,), coordinator=self.me, f=0,
                            underprovisioned=True)
            self._install(fallback)
            return
        survivors = [m for m in view.mbrs if m not in failed]
        self._survivors = survivors
        self._new_coord = choose_coordinator(view.vid.counter, survivors)
        self._state = SYNC
        self.process.reliable.wedge()
        self.stack.control("wedged")
        report = self.process.reliable.stream_state()
        # regroup territory: when the agreed survivor set is smaller than
        # n - f, no further ordering-consensus quorum can complete; freeze
        # the ordering layer so the watermarks we report stay true
        self._flush_undecidable = (
            len(survivors) < view.n - self.process.f)
        ord_k = self.process.ordering_freeze(self._flush_undecidable)
        wire_report = tuple(sorted(report.items(), key=repr))
        self._sync_sent_wire = (wire_report, ord_k)
        out = Message(mk.KIND_SYNC, self.me, view.vid,
                      ("report", self._epoch, wire_report, ord_k),
                      payload_size=8 + 6 * len(wire_report))
        self.send_down(out)
        self._sync_reports[self.me] = dict(report)
        self._sync_ord_k = {self.me: ord_k}
        # fold in reports that arrived ahead of us (regroup-mode epoch
        # reconciliation stashes them while we re-enter the agreement)
        pending, self._sync_pending = self._sync_pending, []
        for origin, epoch, peer_report, peer_ord_k in pending:
            if (epoch == self._epoch and origin in survivors
                    and origin not in self._sync_reports):
                self._sync_reports[origin] = peer_report
                self._sync_ord_k[origin] = peer_ord_k
        for member in survivors:
            if member != self.me and member not in self._sync_reports:
                self._expect(member, "sync", self.config.consensus_msg_timeout)
        self._maybe_finish_sync()

    def _resend_sync_report(self):
        """Repeat our frozen flush report (regroup-mode reconciliation)."""
        if self._sync_sent_wire is None:
            return
        wire_report, ord_k = self._sync_sent_wire
        out = Message(mk.KIND_SYNC, self.me, self.view.vid,
                      ("report", self._epoch, wire_report, ord_k),
                      payload_size=8 + 6 * len(wire_report))
        self.send_down(out)

    def _on_sync_msg(self, msg):
        payload = msg.payload
        if not isinstance(payload, tuple) or not payload:
            self._on_peer_misbehavior(msg.origin, "membership:bad-sync")
            return
        if payload[0] == "nv-echo":
            self._on_join_echo(msg)
            return
        if len(payload) != 4 or payload[0] != "report":
            self._on_peer_misbehavior(msg.origin, "membership:bad-sync")
            return
        _tag, epoch, wire_report, ord_k = payload
        self.process.mute_detector.fulfil(msg.origin, "sync")
        if msg.origin in self._sync_reports and epoch == self._epoch:
            return
        try:
            report = {origin: int(top) for origin, top in wire_report}
            ord_k = (int(ord_k[0]), int(ord_k[1]))
        except (TypeError, ValueError, IndexError):
            self._on_peer_misbehavior(msg.origin, "membership:bad-sync-body")
            return
        if (not isinstance(epoch, int) or isinstance(epoch, bool)
                or any(top < 0 for top in report.values())
                or min(ord_k) < 0):
            self._on_peer_misbehavior(msg.origin, "membership:bad-sync-body")
            return
        if self._state not in (SYNC, CUT, AWAIT_VIEW):
            # A peer's flush report racing ahead of our own consensus
            # decision (the ctl stream delivers it exactly once, and the
            # sender has no reason to repeat it at our epoch): dropping
            # it would wedge the flush forever once we do decide, so
            # stash it -- _on_consensus_decided folds stashed reports
            # that match the decided epoch and survivor set.
            if len(self._sync_pending) < 4 * max(1, self.view.n):
                self._sync_pending.append((msg.origin, epoch, report, ord_k))
            return
        if epoch != self._epoch:
            # Regroup mode (f = 0) runs no consensus instance, so the
            # epoch reconciliation of _join_epoch never happens; without
            # the rules below, members whose attempt counters diverged
            # (e.g. restarts fired on one side only) flush forever at
            # different epochs and drop each other's reports -- the
            # post-merge leave wedge the conformance workload exposed.
            if self._consensus is not None:
                return  # consensus traffic will reconcile; drop as before
            if self._epoch < epoch <= self._epoch + 64:
                # a peer is flushing ahead of us: adopt its epoch (the
                # report is kept and folded in once we re-enter SYNC)
                self._sync_pending.append((msg.origin, epoch, report, ord_k))
                self._restart_at(epoch)
            elif epoch < self._epoch and msg.origin not in self._sync_nudged:
                # a laggard flushing at a stale epoch: repeat our own
                # report once so it can adopt the current epoch
                self._sync_nudged.add(msg.origin)
                self._resend_sync_report()
            return
        self._sync_reports[msg.origin] = report
        self._sync_ord_k[msg.origin] = ord_k
        if self._state == SYNC:
            self._maybe_finish_sync()

    def _maybe_finish_sync(self):
        if self._state != SYNC:
            return
        for member in self._survivors:
            if member not in self._sync_reports:
                return
        cut = {origin: 0 for origin in self.view.mbrs}
        for member in self._survivors:
            for origin, top in self._sync_reports[member].items():
                if origin in cut and top > cut[origin]:
                    cut[origin] = top
        self._cut = cut
        self._state = CUT
        if self._new_coord != self.me:
            self._expect(self._new_coord, "newview",
                         self.config.newview_timeout)
        self.process.reliable.set_cut(cut, on_complete=self._on_cut_complete)

    def _on_cut_complete(self):
        if self._state != CUT:
            return
        epoch = self._epoch
        index = 1 if self._flush_undecidable else 0
        k_star = max((self._sync_ord_k.get(m, (0, 0))[index]
                      for m in self._survivors), default=0)
        # the app layers (total ordering / uniform delivery) finish their
        # agreed backlog now that every member holds exactly the cut; only
        # then may we echo the new view (paper section 3.4.4)
        self.process.flush_app(k_star,
                               lambda: self._after_app_flush(epoch),
                               undecidable=self._flush_undecidable)

    def _after_app_flush(self, epoch):
        if self._state != CUT or epoch != self._epoch:
            return
        self._cut_done = True
        self._state = AWAIT_VIEW
        self._ub_ready = True
        pending, self._ub_pending = self._ub_pending, []
        for sender, payload in pending:
            self._feed_ub(sender, payload)
        if self.me == self._new_coord:
            self._coordinator_try_send_view()

    # ------------------------------------------------------------------
    # phase 3: uniform broadcast of the new view
    # ------------------------------------------------------------------
    def _proposed_view(self):
        view = self.view
        joiners = ()
        counter = view.vid.counter + 1
        if self._pending_joiners is not None:
            joiners = tuple(sorted(self._pending_joiners.mbrs, key=repr))
            counter = max(counter, self._pending_joiners.vid.counter + 1)
        members = tuple(self._survivors) + joiners
        if self._new_coord == self.me:
            # only the creator can collide with its own past proposals
            counter = max(counter, self._floor() + 1)
        f = self.config.resilience(len(members))
        return View(ViewId(counter, self._new_coord), members,
                    coordinator=self._new_coord, f=f,
                    underprovisioned=(f == 0 and self.config.byzantine))

    def _coordinator_try_send_view(self):
        if not self._cut_done or self._state != AWAIT_VIEW:
            return
        if not self.oneshot_view_send and not self._legacy_substab:
            # reverted wiring: the pre-fix code subscribed to ack-matrix
            # updates unconditionally on entering AWAIT_VIEW, so every
            # update (including our own send's zero-delay self-delivery)
            # re-enters this method
            self._legacy_substab = True
            self.process.stability.subscribe(self._on_stability_update)
        survivors = self._survivors
        if not self.process.stability.all_stable(self._cut, survivors):
            if not self._waiting_stability:
                self._waiting_stability = True
                self.process.stability.subscribe(self._on_stability_update)
            return
        # the send below is one-shot per change: our own broadcast's
        # self-delivery bumps the ack matrix, which re-enters here through
        # _on_stability_update at zero delay
        if self._waiting_stability and self.unsubscribe_stability:
            # the cut went stable: this change's registration is spent
            self.process.stability.unsubscribe(self._on_stability_update)
        self._waiting_stability = False
        proposed = self._proposed_view()
        # the vid is about to go on the wire bound to this membership:
        # nothing this node creates later may reuse the counter
        self._counter_floor = max(self._counter_floor, proposed.vid.counter)
        value = (proposed.to_wire(),
                 tuple(sorted(self._cut.items(), key=repr)))
        ub = self._make_ub_instance()
        if ub is None:
            # view too small for the agreement protocol: send the view as a
            # plain broadcast (underprovisioned mode, DESIGN.md deviation 5);
            # build the message first -- installing the view resets all the
            # change state this closure reads
            out = Message(mk.KIND_UB, self.me, self.view.vid,
                          (("nv", self.view.vid.key(), self._epoch),
                           ("ub-plain", value)),
                          payload_size=24 + 8 * len(self._survivors))
            self.send_down(out)
            self._on_ub_delivered(value)
        else:
            ub.originate(value)

    def _on_stability_update(self):
        if self._state != AWAIT_VIEW:
            return
        if self._waiting_stability or not self.oneshot_view_send:
            self._coordinator_try_send_view()

    def _make_ub_instance(self):
        if self._ub is not None:
            return self._ub
        survivors = list(self._survivors)
        f = self.process.f
        instance_id = ("nv", self.view.vid.key(), self._epoch)

        def bcast(payload):
            out = Message(mk.KIND_UB, self.me, self.view.vid,
                          (instance_id, payload),
                          payload_size=24 + 8 * len(survivors))
            self.send_down(out)

        protocol = (UniformBroadcast if self.config.uniform_protocol == "twostep"
                    else BrachaBroadcast)
        try:
            self._ub = protocol(
                instance_id, survivors, self.me, f, self._new_coord, bcast,
                on_deliver=self._on_ub_delivered,
                on_misbehavior=self._on_peer_misbehavior)
        except ValueError:
            # n too small for the chosen protocol at this f; retry at f=0,
            # and below even that (tiny views) fall back to plain delivery
            self._ub = None
            if f > 0:
                try:
                    self._ub = protocol(
                        instance_id, survivors, self.me, 0, self._new_coord,
                        bcast, on_deliver=self._on_ub_delivered,
                        on_misbehavior=self._on_peer_misbehavior)
                except ValueError:
                    self._ub = None
        return self._ub

    def _on_ub_msg(self, msg):
        payload = msg.payload
        if not isinstance(payload, tuple) or len(payload) != 2:
            self._on_peer_misbehavior(msg.origin, "membership:bad-ub")
            return
        instance_id, proto = payload
        if (not isinstance(instance_id, tuple) or len(instance_id) != 3
                or instance_id[0] != "nv"
                or instance_id[1] != self.view.vid.key()):
            return
        if not self._ub_ready:
            self._ub_pending.append((msg.origin, (instance_id, proto)))
            return
        self._feed_ub(msg.origin, (instance_id, proto))

    def _feed_ub(self, sender, payload):
        instance_id, proto = payload
        if instance_id[2] != self._epoch or self._state != AWAIT_VIEW:
            return
        if not isinstance(proto, tuple) or len(proto) != 2:
            self._on_peer_misbehavior(sender, "membership:bad-ub-proto")
            return
        if proto[0] == "ub-plain":
            # underprovisioned fallback: accept the coordinator's word
            if sender == self._new_coord and self._ub is None:
                self._on_ub_delivered(proto[1])
            return
        if proto[0] in ("ub-initial", "br-initial"):
            self.process.mute_detector.fulfil(self._new_coord, "newview")
            if not self._verify_view_value(proto[1]):
                # the coordinator sent a wrong view (CoordBadView): do not
                # echo it, suspect the coordinator, and re-run the change
                self.process.verbose_detector.illegal(
                    self._new_coord, "membership:bad-view-content")
                self.process.suspicion.suspect_locally(
                    self._new_coord, reason="bad-view")
                return
        ub = self._make_ub_instance()
        if ub is not None:
            ub.on_message(sender, proto)

    def _verify_view_value(self, value):
        if not isinstance(value, tuple) or len(value) != 2:
            return False
        view_wire, cut_wire = value
        try:
            proposed = View.from_wire(view_wire)
            cut = {origin: int(top) for origin, top in cut_wire}
        except (TypeError, ValueError):
            return False
        expected = self._proposed_view()
        if proposed.mbrs != expected.mbrs:
            return False
        if proposed.coordinator != self._new_coord:
            return False
        if proposed.vid.counter < self.view.vid.counter + 1:
            return False
        if proposed.vid.creator != self._new_coord:
            return False
        if cut != self._cut:
            return False
        return True

    def _on_ub_delivered(self, value):
        if self._state != AWAIT_VIEW:
            return
        if not self._verify_view_value(value):
            # can only happen if >= quorum echoed a bad view, which needs
            # more than f Byzantine members; still never install it
            self.process.suspicion.suspect_locally(
                self._new_coord, reason="bad-view-delivered")
            return
        view_wire, _cut_wire = value
        new_view = View.from_wire(view_wire)
        joiners = [m for m in new_view.mbrs if m not in self.view.mbrs]
        self._install(new_view)
        if joiners and new_view.coordinator == self.me:
            for joiner in joiners:
                offer = Message(mk.KIND_NEWVIEW, self.me, new_view.vid,
                                ("joined", new_view.to_wire()),
                                payload_size=24 + 8 * new_view.n,
                                dest=joiner)
                self.send_down(offer)

    def _install(self, new_view):
        self._counter_floor = max(self._counter_floor,
                                  new_view.vid.counter)
        started = self.change_started_at
        self.view_changes += 1
        self.count("view_changes")
        if started is not None:
            self.last_change_duration = self.sim.now - started
            self.observe("view_change_seconds", self.last_change_duration)
        self.change_started_at = None
        self.process.install_view(new_view)

    # ------------------------------------------------------------------
    # leave
    # ------------------------------------------------------------------
    def _on_leave(self, msg):
        leaver = msg.origin
        if leaver == self.me or leaver not in self.view.mbrs:
            return
        if leaver in self._leavers:
            return
        self._leavers.add(leaver)
        self.process.suspicion.adopt(leaver, reason="leave")

    def announce_leave(self):
        """Called by the endpoint: politely announce departure."""
        self.leaving = True
        out = Message(mk.KIND_LEAVE, self.me, self.view.vid, ("leave",),
                      payload_size=6)
        self.send_down(out)

    # ------------------------------------------------------------------
    # merge (section 3.4.2)
    # ------------------------------------------------------------------
    def _on_foreign_gossip(self, src, foreign, fingerprint):
        view = self.view
        if fingerprint != stack_fingerprint(self.config):
            return
        if (self.me in foreign.mbrs
                and foreign.vid.key() > view.vid.key()
                and all(m in foreign.mbrs for m in view.mbrs)
                and self._state == IDLE and not self.leaving):
            # A newer view still names us a member: the group completed a
            # change whose final view message never reached us (a dropped
            # datagram on a lossy transport), and our heartbeats are now
            # view-filtered on their side while theirs are on ours.  The
            # merge path cannot heal this -- the views are not disjoint --
            # so ask the coordinator to resend the view offer instead:
            # one unicast round trip, re-verified by _on_join_offer, with
            # no extra view change.
            now = self.sim.now
            if now - self._rejoin_requested_at < self.config.gossip_interval:
                return
            self._rejoin_requested_at = now
            self.count("rejoin_requests")
            request = Message(mk.KIND_MERGE, self.me, view.vid, ("rejoin",),
                              payload_size=8, dest=foreign.coordinator)
            self.send_down(request)
            return
        if set(foreign.mbrs) & set(view.mbrs):
            return  # not disjoint: stale gossip about an ancestor view
        if self._state != IDLE or self.leaving:
            return
        if foreign.vid.key() > view.vid.key():
            # we are the smaller side: our coordinator must request a merge
            if view.coordinator == self.me:
                inflight = self._merge_inflight
                now = self.sim.now
                if (inflight is not None
                        and now - inflight[1] < 6 * self.config.gossip_interval
                        and inflight[0] != foreign.coordinator):
                    return  # one courtship at a time: avoids split joins
                last = self._merge_requested_at.get(foreign.coordinator, -1e9)
                if now - last < self.config.gossip_interval:
                    return
                # re-requests to the same target must NOT refresh the
                # courtship start: an unresponsive (crashed-after-gossip,
                # leaving, or Byzantine) coordinator would otherwise pin
                # us forever and starve every other merge candidate
                if inflight is not None and inflight[0] == foreign.coordinator:
                    self._merge_inflight = (foreign.coordinator, inflight[1])
                else:
                    self._merge_inflight = (foreign.coordinator, now)
                self._merge_requested_at[foreign.coordinator] = self.sim.now
                request = Message(mk.KIND_MERGE, self.me, view.vid,
                                  ("request", view.to_wire()),
                                  payload_size=24 + 8 * view.n,
                                  dest=foreign.coordinator)
                self.send_down(request)
            else:
                # expect our coordinator to pursue the merge; if no new view
                # arrives, the coordinator gains mute fuzziness
                self._expect(view.coordinator, "merge-progress",
                             6 * self.config.gossip_interval)

    def _on_rejoin_request(self, msg):
        """A current member missed our view install (its NEWVIEW datagram
        was lost) and asks for a resend after seeing the view in gossip.
        Resending is idempotent and touches no change state; the offer
        re-runs the full joiner-side verification at the requester."""
        view = self.view
        if self.me != view.coordinator or msg.origin == self.me:
            return
        if msg.origin not in view.mbrs:
            return
        self.count("rejoin_resends")
        offer = Message(mk.KIND_NEWVIEW, self.me, view.vid,
                        ("joined", view.to_wire()),
                        payload_size=24 + 8 * view.n, dest=msg.origin)
        self.send_down(offer)

    def _on_merge_request(self, msg):
        payload = msg.payload
        if (not isinstance(payload, tuple) or len(payload) != 2
                or payload[0] != "request"):
            self._on_peer_misbehavior(msg.origin, "membership:bad-merge")
            return
        try:
            foreign = View.from_wire(payload[1])
        except (TypeError, ValueError):
            self._on_peer_misbehavior(msg.origin, "membership:bad-merge-view")
            return
        view = self.view
        if (self.me != view.coordinator or self._state != IDLE
                or self.leaving):
            return
        if msg.origin != foreign.coordinator:
            return
        if set(foreign.mbrs) & set(view.mbrs):
            return
        if not foreign.vid.key() < view.vid.key():
            return
        self._pending_joiners = foreign
        announce = Message(mk.KIND_MANNOUNCE, self.me, view.vid,
                           ("announce", payload[1]),
                           payload_size=24 + 8 * foreign.n)
        self.send_down(announce)
        self._begin(self.process.suspicion.suspected_set())

    def _on_merge_announce(self, msg):
        payload = msg.payload
        if (not isinstance(payload, tuple) or len(payload) != 2
                or payload[0] != "announce"):
            self._on_peer_misbehavior(msg.origin, "membership:bad-announce")
            return
        if msg.origin != self.view.coordinator:
            self._on_peer_misbehavior(msg.origin, "membership:announce-usurper")
            return
        try:
            foreign = View.from_wire(payload[1])
        except (TypeError, ValueError):
            self._on_peer_misbehavior(msg.origin, "membership:bad-announce")
            return
        if set(foreign.mbrs) & set(self.view.mbrs):
            return
        if self._pending_joiners is None:
            self._pending_joiners = foreign
            self.process.mute_detector.fulfil(self.view.coordinator,
                                              "merge-progress")

    # ------------------------------------------------------------------
    # joiner side: receive and cross-check the merged view
    # ------------------------------------------------------------------
    def _on_join_offer(self, msg):
        payload = msg.payload
        if (not isinstance(payload, tuple) or len(payload) != 2
                or payload[0] != "joined"):
            return
        try:
            offered = View.from_wire(payload[1])
        except (TypeError, ValueError):
            return
        view = self.view
        if self.me not in offered:
            return
        if not all(member in offered for member in view.mbrs):
            return  # the target may not drop any of our members
        if not offered.vid.key() > view.vid.key():
            return
        if msg.sender not in offered.mbrs:
            return
        digest = _digest(payload[1])
        self._join_offer = (offered, digest)
        self.process.mute_detector.fulfil(view.coordinator, "merge-progress")
        if view.n == 1:
            self._install(offered)
            return
        # cross-check among our old members: a two-faced target coordinator
        # must not split us across different "merged" views
        self._state = JOINING
        echo = Message(mk.KIND_SYNC, self.me, view.vid,
                       ("nv-echo", digest, payload[1]), payload_size=24)
        self.send_down(echo)
        self._join_echoes[self.me] = digest
        # a co-member that moved on without us (it suspected us, or raced
        # into a different merge) will never echo; without an escape we
        # would wait forever in JOINING while our stale membership blocks
        # every future merge's disjointness guard
        if self._join_timer is not None:
            self._join_timer.cancel()
        self._join_timer = self.sim.schedule(self.config.newview_timeout,
                                             self._join_fallback)
        self._maybe_finish_join()

    def _join_fallback(self):
        """The cross-check never completed: abandon the join and fall back
        to a fresh singleton view (counter carried past everything we ever
        proposed or installed -- Def 2.1 item 2), from which the gossip
        machinery merges us back into whatever group exists now.  This is
        the joiner-side twin of the excluded-member fallback in
        ``_on_consensus_decided``."""
        self._join_timer = None
        if self._state != JOINING or self._join_offer is None:
            return
        view = self.view
        fallback = View(ViewId(max(view.vid.counter,
                                   self._floor()) + 1, self.me),
                        (self.me,), coordinator=self.me, f=0,
                        underprovisioned=True)
        self.count("join_fallbacks")
        self._install(fallback)

    def _on_join_echo(self, msg):
        payload = msg.payload
        if len(payload) != 3:
            return
        _tag, digest, view_wire = payload
        if msg.origin in self._join_echoes:
            if self._join_echoes[msg.origin] != digest:
                self._on_peer_misbehavior(msg.origin, "membership:join-equiv")
            return
        self._join_echoes[msg.origin] = digest
        if self._join_offer is None:
            # adopt the offer relayed by a peer member (we may have missed
            # the unicast); full verification still applies
            relayed = Message(mk.KIND_NEWVIEW, msg.origin, self.view.vid,
                              ("joined", view_wire), dest=self.me)
            relayed.sender = msg.sender
            self._on_join_offer(relayed)
            return
        self._maybe_finish_join()

    def _maybe_finish_join(self):
        if self._join_offer is None:
            return
        offered, digest = self._join_offer
        for member in self.view.mbrs:
            if self._join_echoes.get(member) != digest:
                return
        self._install(offered)
