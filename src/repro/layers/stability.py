"""Stability tracking (paper sections 3.1 and 3.4.4).

A broadcast message is *stable* once every member not considered faulty
has acknowledged it.  The tracker aggregates the periodic ack vectors from
:class:`repro.layers.reliable.ReliableLayer` into an ack matrix and
answers the two questions the system asks of it:

* flow control: how far has the slowest *low-fuzziness* member acked my
  stream?  (fuzzy optimization: slow nodes with high fuzziness do not hold
  the sender's window back -- paper section 3.1);
* flush: are all messages up to the agreed cut stable at every survivor?

It also performs buffer management (messages acknowledged by all
low-fuzziness members are trimmed from the retransmission archive) and
detects *ack laggards*, feeding the fuzzy mute level of members that stop
acknowledging -- which is how mute nodes are noticed between heartbeats.
"""

from __future__ import annotations


class StabilityTracker:
    """Ack matrix + stability queries for one process."""

    def __init__(self, process):
        self.process = process
        # member -> stream -> {origin: cum}.  Nested dicts instead of
        # (origin, stream) tuple keys: the ack feeds and flow-control
        # queries run once per drain per member, and the tuple build for
        # every probe was a measurable slice of the fig5 slope
        self._acked = {}
        self._listeners = []
        self._view = None
        self._scan_timer = None
        self._lag_strikes = {}

    # ------------------------------------------------------------------
    def start(self):
        config = self.process.config
        self._scan_timer = self.process.sim.schedule(
            config.ack_interval * 4, self._laggard_scan)

    def stop(self):
        if self._scan_timer is not None:
            self._scan_timer.cancel()
            self._scan_timer = None

    def reset(self, view):
        self._view = view
        self._acked = {}
        self._lag_strikes = {}

    def subscribe(self, callback):
        """``callback()`` after every ack-matrix update."""
        self._listeners.append(callback)

    def unsubscribe(self, callback):
        """Drop one registration of ``callback`` (no-op when absent).

        Subscribers that re-register per view change (the membership
        layer's stability wait) must pair every subscribe with an
        unsubscribe, or the listener list grows by one dead callback per
        change -- unbounded under view churn, and every ack-matrix
        update pays for the stale entries too.
        """
        try:
            self._listeners.remove(callback)
        except ValueError:
            pass

    def state_sizes(self):
        return {
            "ack_rows": sum(len(table)
                            for streams in self._acked.values()
                            for table in streams.values()),
            "lag_strikes": len(self._lag_strikes),
            "listeners": len(self._listeners),
        }

    # ------------------------------------------------------------------
    # feeds
    # ------------------------------------------------------------------
    def on_ack(self, member, vector):
        # hot path: called once per reliable-layer drain; entries are
        # max-merged, so callers may pass deltas (only the entries that
        # changed) and the table converges to the same state as if the
        # full vector were passed every time
        streams = self._acked.get(member)
        if streams is None:
            streams = self._acked[member] = {}
        for origin, stream, cum in vector:
            table = streams.get(stream)
            if table is None:
                table = streams[stream] = {}
            if cum > table.get(origin, 0):
                table[origin] = cum
        self._notify()

    def on_local_progress(self, vector):
        self.on_ack(self.process.node_id, vector)

    def on_matrix(self, rows):
        """Merge a gossiped ack matrix: per-(member, stream) maximum.

        Third-party rows are trusted as in the benign gossip stability of
        [29]; the Byzantine-hardened variant is the open problem the paper
        names in section 6.
        """
        for member, vector in rows:
            streams = self._acked.get(member)
            if streams is None:
                streams = self._acked[member] = {}
            for origin, stream, cum in vector:
                table = streams.get(stream)
                if table is None:
                    table = streams[stream] = {}
                if isinstance(cum, int) and cum > table.get(origin, 0):
                    table[origin] = cum
        self._notify()

    def matrix_rows(self):
        """The full known matrix as wire rows for gossip exchange."""
        rows = []
        for member, streams in self._acked.items():
            # flatten back to the canonical (origin, stream, cum) triples;
            # the wire rows are byte-identical to the flat-table encoding
            vector = tuple(sorted(((origin, stream, cum)
                                   for stream, table in streams.items()
                                   for origin, cum in table.items()),
                                  key=repr))
            rows.append((member, vector))
        rows.sort(key=repr)
        return tuple(rows)

    def _notify(self):
        # snapshot: a callback may unsubscribe itself (the membership
        # layer does, once its cut goes stable) without skipping peers
        for callback in tuple(self._listeners):
            callback()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def acked_seq(self, member, origin, stream="a"):
        streams = self._acked.get(member)
        if streams is None:
            return 0
        table = streams.get(stream)
        if table is None:
            return 0
        return table.get(origin, 0)

    def min_ack(self, origin, stream="a", members=None, ignore_fuzzy=True):
        """Lowest ack for ``origin``'s stream across ``members``.

        With ``ignore_fuzzy``, members whose mute fuzziness is above the
        suspicion threshold do not hold the result back -- the fuzzy
        flow-control optimization.
        """
        process = self.process
        if members is None:
            members = process.view.mbrs
        acked = self._acked
        # consult the fuzzy levels only when somebody IS fuzzy: the level
        # table is empty in the steady state, where the filter excludes
        # nobody (level 0.0 is below any positive threshold), and this
        # probe runs once per member per flow-control decision
        fuzzy = process.mute_levels._levels if ignore_fuzzy else None
        if fuzzy:
            me = process.node_id
            threshold = process.config.fuzzy_flow_threshold
        lowest = None
        for member in members:
            if fuzzy and member != me:
                if fuzzy.get(member, 0.0) >= threshold:
                    continue
            # inlined acked_seq: once per member per call
            value = 0
            streams = acked.get(member)
            if streams is not None:
                table = streams.get(stream)
                if table is not None:
                    value = table.get(origin, 0)
            if lowest is None or value < lowest:
                lowest = value
        return 0 if lowest is None else lowest

    def all_stable(self, cut, members):
        """Is every app message up to ``cut`` acked by all ``members``?"""
        for origin, last in cut.items():
            if last <= 0:
                continue
            for member in members:
                if self.acked_seq(member, origin, "a") < last:
                    return False
        return True

    # ------------------------------------------------------------------
    # laggard detection (fuzzy mute input between heartbeats)
    # ------------------------------------------------------------------
    def _laggard_scan(self):
        process = self.process
        config = process.config
        me = process.node_id
        my_top = self.acked_seq(me, me, "a")
        if my_top > 0 and self._view is not None:
            for member in self._view.mbrs:
                if member == me:
                    continue
                behind = my_top - self.acked_seq(member, me, "a")
                if behind > config.flow_window:
                    strikes = self._lag_strikes.get(member, 0) + 1
                    self._lag_strikes[member] = strikes
                    obs = process.obs
                    if obs is not None and obs.metrics_enabled:
                        obs.metrics.inc(me, "stability", "laggard_strikes")
                    if strikes >= 2:
                        process.mute_levels.raise_level(member, 1.0)
                else:
                    self._lag_strikes.pop(member, None)
        # buffer management: drop archived copies that every low-fuzziness
        # member has acknowledged (paper section 3.1)
        process.reliable.trim_archive()
        self._scan_timer = self.process.sim.schedule(
            config.ack_interval * 4, self._laggard_scan)
