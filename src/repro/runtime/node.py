"""One net-cluster node: the OS-process entry point.

``python -m repro.runtime.node SPEC.json`` boots a single
:class:`~repro.core.process.GroupProcess` on the asyncio UDP runtime,
plays its side of the cluster's :class:`~repro.runtime.workload.NetWorkload`,
and writes a :class:`~repro.runtime.report.NodeReport` JSON at the path
the spec names.  The driver (:mod:`repro.runtime.driver`) spawns one of
these per node and folds the reports back together.

The spec is plain JSON::

    {"node_id": 0,
     "addresses": {"0": ["127.0.0.1", 40001], "1": [...], ...},
     "seed": 7,
     "config": {"byzantine": true, "crypto": "sym"},
     "established": false,
     "workload": {... NetWorkload.to_jsonable() ...},
     "report": "/tmp/.../node0.report.json",
     "obs": false,
     "obs_export": null,
     "group": null,
     "group_nodes": null}

``group``/``group_nodes`` are the shard-plane fields (repro.shard): a
non-null ``group`` tags the process with its shard id (group-enveloped
gossip, group-stamped signed messages), and ``group_nodes`` restricts
the boot view to the shard's own member block while the address book
still spans the whole plane -- one socket per node, every shard
multiplexed over the shared bus.

Exit status 0 means the node's script completed; 1 means it timed out or
errored (the report still records whatever history it collected).
"""

from __future__ import annotations

import asyncio
import json
import sys
import time
import traceback

from repro.core.config import StackConfig
from repro.core.endpoint import GroupEndpoint
from repro.core.history import History
from repro.runtime.backend_asyncio import (AsyncioRuntime, install_uvloop,
                                           net_profile)
from repro.runtime.report import NodeReport
from repro.runtime.workload import NetWorkload, NodeScript

#: how often the supervising coroutine polls the script for completion
POLL_INTERVAL = 0.02

#: how long a node whose own script is complete stays up for the sake of
#: a peer whose heartbeats are stale.  A member that missed the final
#: view install needs the group alive while it falls back to a singleton
#: and rejoins (NEWVIEW resend) or is evicted and re-merged -- both
#: bounded well under this.  Peers that exited normally also read as
#: stale, so the wait must be bounded or the last node out would hang.
REJOIN_GRACE = 2.5


def build_config(spec_cfg):
    """A net-profiled StackConfig from the spec's config dict."""
    spec_cfg = dict(spec_cfg or {})
    if spec_cfg.pop("byzantine", True):
        base = StackConfig.byz(crypto=spec_cfg.pop("crypto", "sym"))
    else:
        base = StackConfig.benign(crypto=spec_cfg.pop("crypto", "none"))
    if spec_cfg:
        base = base.clone(**spec_cfg)
    return net_profile(base)


def _view_jsonable(view):
    return {"vid": [view.vid.counter, view.vid.creator],
            "mbrs": list(view.mbrs)}


def _stack_debug(process):
    """Membership-FSM snapshot recorded in failed reports: the first thing
    anyone triaging a net-smoke failure needs is what the node was stuck
    waiting for."""
    m = process.membership
    pending = m._pending_joiners
    return {
        "membership_state": m._state,
        "epoch": m._epoch,
        "coordinator": process.view.coordinator,
        "leaving": m.leaving,
        "merge_inflight": list(m._merge_inflight or ()) or None,
        "pending_joiners": list(pending.mbrs) if pending is not None else None,
        "join_offer": m._join_offer is not None,
        "suspected": sorted(process.suspicion.suspected_set()),
        "blocked": process.stack.blocked,
    }


async def run_node(spec, loop):
    """Run one node's workload to completion (or its deadline)."""
    node_id = spec["node_id"]
    addresses = {int(k): (v[0], int(v[1]))
                 for k, v in spec["addresses"].items()}
    workload = NetWorkload.from_jsonable(spec["workload"])
    config = build_config(spec.get("config"))

    runtime = AsyncioRuntime(node_id, addresses, seed=spec.get("seed", 0),
                             loop=loop)
    await runtime.open()

    obs = None
    if spec.get("obs"):
        from repro.obs import ObsConfig, ObservabilityPlane
        obs = ObservabilityPlane(runtime.clock, ObsConfig())

    group_id = spec.get("group")
    group_nodes = spec.get("group_nodes")
    members = ([int(n) for n in group_nodes] if group_nodes
               else addresses)
    initial = runtime.initial_view(
        members, established=spec.get("established", False))
    process = runtime.spawn_process(config, initial_view=initial, obs=obs,
                                    group_id=group_id)
    endpoint = GroupEndpoint(process)
    script = NodeScript(workload, endpoint, runtime.clock)

    wall_start = time.monotonic()
    process.start()
    try:
        while runtime.clock.now < workload.deadline:
            if script.done():
                break
            await asyncio.sleep(POLL_INTERVAL)
        # linger so peers still flushing can finish against our stack
        await asyncio.sleep(workload.linger)
        # script_complete() is not monotonic: a membership wobble after
        # the linger (a wedged member evicted, then re-merged) un-does
        # it, and done() additionally holds this node up while a peer's
        # heartbeats are stale.  Re-wait until the group is whole and
        # current again -- but only up to REJOIN_GRACE once our own
        # script is complete, because normally-exited peers are
        # indistinguishable from wedged ones.
        grace_end = runtime.clock.now + REJOIN_GRACE
        while not script.done() and runtime.clock.now < workload.deadline:
            if (script.script_complete()
                    and runtime.clock.now >= grace_end):
                break
            await asyncio.sleep(POLL_INTERVAL)
        ok = script.script_complete()
        error = None if ok else "deadline: %r" % (script.milestones(),)
    except Exception:
        ok = False
        error = traceback.format_exc()

    # drain the wire-path coalescer before the final snapshot: anything
    # still buffered belongs to this run's datagram accounting, and
    # process.stop() below crashes the transport (buffers dropped)
    runtime.transport.flush_pending(reason="final")
    counters = runtime.transport.counters()
    final_view = _view_jsonable(process.view)
    debug = _stack_debug(process)
    process.stop()
    # post-stop resource accounting: satellite leak-check evidence.  stop()
    # must have closed the per-process clock and the UDP socket.
    leaks = {"pending_timers": runtime.clock.pending,
             "clock_closed": runtime.clock.closed,
             "socket_closed": runtime.transport.closed}
    runtime.close()

    wall = dict(script.milestones())
    wall["wall_elapsed"] = time.monotonic() - wall_start
    # membership-layer measurement hooks, for benchmarks/bench_net_localhost
    wall["view_changes"] = process.membership.view_changes
    wall["last_change_duration"] = process.membership.last_change_duration
    report = NodeReport(node_id, process.history, final_view=final_view,
                        counters=counters, wall=wall, leaks=leaks,
                        ok=ok, error=error, debug=debug)
    if obs is not None and spec.get("obs_export"):
        obs.export_json(spec["obs_export"])
    return report


def main(argv=None):
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.runtime.node SPEC.json",
              file=sys.stderr)
        return 2
    with open(argv[0]) as handle:
        spec = json.load(handle)
    # optional perf extra: uvloop when installed (REPRO_UVLOOP=0 to veto);
    # must run before the loop is created to take effect
    install_uvloop()
    loop = asyncio.new_event_loop()
    asyncio.set_event_loop(loop)
    try:
        report = loop.run_until_complete(run_node(spec, loop))
    except Exception:
        # even a crashed node leaves a report behind for the driver
        report = NodeReport(spec["node_id"], History(spec["node_id"]),
                            ok=False, error=traceback.format_exc())
    finally:
        loop.close()
    report.save(spec["report"])
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
