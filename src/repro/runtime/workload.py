"""The cross-backend join/multicast/leave workload.

One declarative :class:`NetWorkload` drives both runtimes through the
*same* script, via the same :class:`NodeScript` per node:

1. every node boots in its own singleton view (a real cluster cannot
   assume a synchronized boot), and the gossip/merge machinery must
   assemble the common view;
2. when a node first installs the full n-member view it schedules its
   ``casts_per_node`` multicasts, one every ``cast_gap`` seconds;
3. if a *later* full view is installed (some member raced through a
   join fallback and re-merged), every node re-casts its own messages
   and receivers dedupe by ``(origin, index)`` -- the standard
   view-synchronous application idiom for messages that a late joiner
   can never retroactively receive;
4. the designated ``leaver`` (optional) announces a polite leave once it
   has delivered everyone's casts, and the group reconfigures around it.

Because the script only touches the public endpoint surface
(``on_view``/``on_cast`` callbacks, ``cast``, ``leave``) plus the
clock's ``schedule``, it is backend-agnostic by construction -- the
conformance test then asserts that the simulator execution and the
asyncio-UDP execution both satisfy Definitions 2.1/2.2 and agree on the
final view composition and on per-sender delivery order.
"""

from __future__ import annotations

from repro.core.history import EV_CAST_DELIVER
from repro.core.properties import check_virtual_synchrony
from repro.runtime.report import NodeReport, execution_from_reports


class NetWorkload:
    """Declarative parameters of one join/multicast/leave run."""

    __slots__ = ("n", "casts_per_node", "cast_gap", "payload_bytes",
                 "leaver", "deadline", "linger")

    def __init__(self, n=5, casts_per_node=3, cast_gap=0.05,
                 payload_bytes=16, leaver=None, deadline=8.0, linger=0.5):
        self.n = n
        self.casts_per_node = casts_per_node
        self.cast_gap = cast_gap
        self.payload_bytes = payload_bytes
        self.leaver = leaver          # node id, or None for no leave phase
        self.deadline = deadline      # per-node give-up horizon (seconds)
        self.linger = linger          # settle time after the script is done
        if leaver is not None and not 0 <= leaver < n:
            raise ValueError("leaver %r outside the %d-node cluster"
                             % (leaver, n))

    @property
    def expected_deliveries(self):
        """Cast deliveries each node owes: everyone's casts, own included."""
        return self.n * self.casts_per_node

    def to_jsonable(self):
        return {"n": self.n, "casts_per_node": self.casts_per_node,
                "cast_gap": self.cast_gap, "payload_bytes": self.payload_bytes,
                "leaver": self.leaver, "deadline": self.deadline,
                "linger": self.linger}

    @classmethod
    def from_jsonable(cls, obj):
        return cls(**obj)

    def __repr__(self):
        return ("NetWorkload(n=%d, casts=%d, leaver=%r)"
                % (self.n, self.casts_per_node, self.leaver))


class NodeScript:
    """Runs one node's side of the workload over the endpoint surface."""

    def __init__(self, workload, endpoint, clock):
        self.workload = workload
        self.endpoint = endpoint
        self.clock = clock
        self.me = endpoint.node_id
        self.formed_at = None         # clock time the full view appeared
        self.done_at = None
        self.sent = 0
        self.delivered = 0            # unique (origin, index) deliveries
        self.recasts = 0
        self.left = False
        self.left_at = None
        self._casts_scheduled = False
        self._cast_vid = None         # vid the casts were (re-)issued under
        self._delivered_ids = set()   # {(origin, index)} dedupe for re-casts
        endpoint.on_view = self._on_view
        endpoint.on_cast = self._on_cast

    # ------------------------------------------------------------------
    def _on_view(self, event):
        if len(event.view.mbrs) != self.workload.n:
            return
        if not self._casts_scheduled:
            self.formed_at = self.clock.now
            self._casts_scheduled = True
            self._cast_vid = event.view.vid
            for index in range(self.workload.casts_per_node):
                self.clock.schedule(index * self.workload.cast_gap,
                                    self._cast_one, index)
        elif event.view.vid != self._cast_vid and not self.left:
            # a LATER full view: someone joined late (e.g. via the join
            # fallback) and missed casts delivered in the earlier view.
            # View synchrony never redelivers across a view boundary, so
            # the application re-sends; receivers dedupe.
            self._cast_vid = event.view.vid
            self.recasts += 1
            for index in range(self.workload.casts_per_node):
                self.clock.schedule(index * self.workload.cast_gap,
                                    self._cast_one, index)

    def _cast_one(self, index):
        if self.endpoint.process.stopped or self.left:
            return
        self.endpoint.cast(("wl", self.me, index),
                           size=self.workload.payload_bytes)
        self.sent += 1

    def _on_cast(self, event):
        key = workload_cast_key(event.payload)
        if key is not None:
            if key in self._delivered_ids:
                return                # duplicate via an application re-cast
            self._delivered_ids.add(key)
        self.delivered += 1
        if (self.me == self.workload.leaver and not self.left
                and self.delivered >= self.workload.expected_deliveries):
            # heard everyone's casts: depart politely one gap later (the
            # delay lets the last delivery's acks drain first)
            self.clock.schedule(self.workload.cast_gap, self._leave)

    def _leave(self):
        if self.left or self.endpoint.process.stopped:
            return
        self.left = True
        self.left_at = self.clock.now
        self.endpoint.leave()

    # ------------------------------------------------------------------
    def script_complete(self):
        """This node's side of the script has fully played out.

        NOT monotonic: a survivor is complete only while its installed
        view is exactly the expected survivor set, so a post-completion
        membership wobble (e.g. a member evicted after missing a view
        install, then re-merged) flips it back to False until gossip
        heals the group -- the node runner re-waits on exactly that."""
        if self.formed_at is None or self.sent < self.workload.casts_per_node:
            return False
        if self.delivered < self.workload.expected_deliveries:
            return False
        leaver = self.workload.leaver
        if self.me == leaver:
            if not self.left:
                return False
        else:
            expected = set(range(self.workload.n))
            if leaver is not None:
                expected.discard(leaver)
            if set(self.endpoint.view.mbrs) != expected:
                return False
        return True

    def peers_live(self):
        """Every co-member's heartbeats are fresh.

        A member whose heartbeats have gone stale while still in our view
        is wedged in an older view (it missed the install, so its
        datagrams are view-filtered here and ours there).  Tearing this
        node down then would strand it -- it still needs the group alive
        for a NEWVIEW resend or an evict-and-remerge -- so the runner
        keeps the node up (bounded by its rejoin grace) until every
        member is demonstrably current.  Exited peers also look stale,
        which is why the runner bounds the wait instead of requiring
        liveness forever."""
        process = self.endpoint.process
        horizon = 6 * process.config.heartbeat_interval
        now = self.clock.now
        return all(now - process.last_heard(member) <= horizon
                   for member in self.endpoint.view.mbrs
                   if member != self.me)

    def done(self):
        """Script complete AND (for survivors) all co-members current."""
        if not self.script_complete():
            return False
        if self.me != self.workload.leaver and not self.peers_live():
            return False
        if self.done_at is None:
            self.done_at = self.clock.now
        return True

    def milestones(self):
        return {"formed_at": self.formed_at, "done_at": self.done_at,
                "left_at": self.left_at, "sent": self.sent,
                "delivered": self.delivered, "recasts": self.recasts}


def workload_cast_key(payload):
    """``(origin, index)`` of a workload cast payload, else None.

    Payloads cross a JSON report boundary on the net backend, so the
    tuple the script cast may come back as a list -- accept both.
    """
    if (isinstance(payload, (list, tuple)) and len(payload) == 3
            and payload[0] == "wl"):
        return (payload[1], payload[2])
    return None


# ----------------------------------------------------------------------
class WorkloadResult:
    """One workload run's outcome, backend-independent."""

    def __init__(self, backend, workload, reports, ok, elapsed,
                 artifacts_dir=None):
        self.backend = backend            # "sim" | "net"
        self.workload = workload
        self.reports = dict(reports)      # {node_id: NodeReport}
        self.ok = ok                      # every script reached done()
        self.elapsed = elapsed            # sim seconds / wall seconds
        self.artifacts_dir = artifacts_dir

    # ------------------------------------------------------------------
    def execution(self):
        """The run as an Execution; the leaver is not constrained (it
        stops participating mid-run, same convention the simulator's
        leave tests use)."""
        correct = set(self.reports)
        if self.workload.leaver is not None:
            correct.discard(self.workload.leaver)
        return execution_from_reports(self.reports.values(), correct=correct)

    def violations(self):
        """Definitions 2.1/2.2 safety clauses over the recorded run."""
        return check_virtual_synchrony(self.execution())

    # ------------------------------------------------------------------
    def survivors(self):
        leaver = self.workload.leaver
        return sorted(node for node in self.reports if node != leaver)

    def final_members(self):
        """The final membership at each survivor: {node: (members...)}."""
        return {node: self.reports[node].final_members()
                for node in self.survivors()}

    def common_final_members(self):
        """The one membership all survivors ended on, or None."""
        sets = set(self.final_members().values())
        if len(sets) == 1:
            return sets.pop()
        return None

    def per_sender_orders(self):
        """{survivor: {origin: [workload index, ...]}} in delivery order.

        Keyed on the workload payload (not the stack msg_id) and deduped
        to first delivery, so an application re-cast -- which gets a
        fresh stack msg_id -- does not perturb the cross-backend
        comparison.
        """
        orders = {}
        for node in self.survivors():
            per_origin = {}
            seen = set()
            for ev in self.reports[node].history.events:
                if ev[0] != EV_CAST_DELIVER:
                    continue
                key = workload_cast_key(ev[4])
                if key is None or key in seen:
                    continue
                seen.add(key)
                per_origin.setdefault(key[0], []).append(key[1])
            orders[node] = per_origin
        return orders

    def total_delivered(self):
        return sum(len(report.history.delivery_order())
                   for report in self.reports.values())

    def summary(self):
        return {
            "backend": self.backend,
            "ok": self.ok,
            "elapsed": self.elapsed,
            "violations": len(self.violations()),
            "final_members": {str(k): list(v) if v else None
                              for k, v in self.final_members().items()},
            "total_delivered": self.total_delivered(),
        }


# ----------------------------------------------------------------------
def run_sim_workload(workload, seed=0, config=None):
    """Execute the workload on the deterministic simulator backend."""
    from repro.core.config import StackConfig
    from repro.core.group import Group
    config = config or StackConfig.byz(crypto="sym")
    group = Group.bootstrap(workload.n, config=config, seed=seed,
                            established=False, start=False)
    scripts = {node: NodeScript(workload, endpoint, group.sim)
               for node, endpoint in group.endpoints.items()}
    group.start()
    all_done = lambda: all(script.done() for script in scripts.values())
    ok = group.run_until(all_done, timeout=workload.deadline)
    group.run(workload.linger)
    if not all_done():
        # same re-wait the net node runner does: done() is not monotonic,
        # and a linger-time membership wobble must be allowed to heal
        ok = group.run_until(all_done, timeout=workload.deadline)
    reports = {}
    for node, process in group.processes.items():
        view = process.view
        wall = dict(scripts[node].milestones())
        wall["view_changes"] = process.membership.view_changes
        wall["last_change_duration"] = process.membership.last_change_duration
        reports[node] = NodeReport(
            node, process.history,
            final_view={"vid": [view.vid.counter, view.vid.creator],
                        "mbrs": list(view.mbrs)},
            counters={"datagrams_sent": group.network.datagrams_sent},
            wall=wall, ok=scripts[node].done())
    elapsed = group.sim.now
    group.stop()
    return WorkloadResult("sim", workload, reports, ok, elapsed)
