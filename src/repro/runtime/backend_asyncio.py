"""The asyncio UDP runtime: one node of a real localhost cluster.

Each node of a net cluster is its own OS process (spawned by
:mod:`repro.runtime.driver`) running one :class:`AsyncioRuntime`: a
monotonic :class:`~repro.runtime.clock.AsyncioClock` plus a
:class:`~repro.runtime.transport.AsyncioTransport` bound to the node's
UDP port.  The unmodified :class:`~repro.core.process.GroupProcess` and
layer stack run on top.

``net_profile`` widens the failure-detection and retransmission timing
constants: the simulator's defaults (20 ms heartbeats, 80 ms mute
timeout) assume a noiseless virtual LAN, while a loaded CI host adds
scheduling jitter that would read as muteness and churn views.  The
profile is the real-network analogue of the MANET rescale in
``Group.bootstrap_adhoc``.
"""

from __future__ import annotations

import os

from repro.core.process import GroupProcess
from repro.core.view import View, ViewId, singleton_view
from repro.crypto.keys import KeyManager
from repro.runtime.clock import AsyncioClock
from repro.runtime.interface import Runtime
from repro.runtime.transport import AsyncioTransport


def install_uvloop():
    """Swap the default asyncio event-loop policy for uvloop if present.

    uvloop is an *optional* extra (``pip install .[perf]``): the runtime
    must work from a bare checkout, so a missing module is simply False.
    Set ``REPRO_UVLOOP=0`` (or ``off``/``no``/``false``) to keep the
    stock loop even when uvloop is importable -- e.g. to bisect a
    loop-dependent difference.  Returns True when uvloop was installed.
    Call it *before* creating the event loop; an already-running loop is
    unaffected by a policy change.
    """
    if os.environ.get("REPRO_UVLOOP", "").strip().lower() in (
            "0", "off", "no", "false"):
        return False
    try:
        import uvloop
    except ImportError:
        return False
    uvloop.install()
    return True


def net_profile(config):
    """Rescale a :class:`~repro.core.config.StackConfig` for real clocks.

    Only *floors* are applied: a caller that already asks for slower
    timers keeps them.
    """
    return config.clone(
        heartbeat_interval=max(config.heartbeat_interval, 0.05),
        mute_timeout=max(config.mute_timeout, 0.6),
        gossip_interval=max(config.gossip_interval, 0.1),
        consensus_msg_timeout=max(config.consensus_msg_timeout, 0.6),
        newview_timeout=max(config.newview_timeout, 1.0),
        retrans_timeout=max(config.retrans_timeout, 0.1),
        ack_interval=max(config.ack_interval, 0.04),
        fuzzy_decay_interval=max(config.fuzzy_decay_interval, 0.2),
        suspicion_settle_delay=max(config.suspicion_settle_delay, 0.02))


class AsyncioRuntime(Runtime):
    """Clock + UDP transport for one node; spawns its GroupProcess."""

    kind = "net"

    def __init__(self, node_id, addresses, seed=0, loop=None):
        self._clock = AsyncioClock(loop=loop, seed=seed)
        self._transport = AsyncioTransport(self._clock, node_id, addresses,
                                           loop=loop)
        self.node_id = node_id
        self.addresses = dict(addresses)

    @property
    def clock(self):
        return self._clock

    @property
    def transport(self):
        return self._transport

    async def open(self):
        """Bind the UDP socket; must run before :meth:`spawn_process`."""
        await self._transport.open()
        return self

    def close(self):
        self._transport.close()
        self._clock.close()

    # ------------------------------------------------------------------
    def initial_view(self, node_ids, established=False):
        """The boot view: a common view of the whole address book, or the
        node's singleton (gossip/merge then assembles the group -- the
        default, since a real cluster cannot assume a synchronized boot)."""
        if not established:
            return singleton_view(self.node_id)
        members = tuple(sorted(node_ids, key=repr))
        return View(ViewId(1, members[0]), members)

    def spawn_process(self, config, keys=None, initial_view=None, obs=None,
                      group_id=None, node_id=None):
        """Build a GroupProcess on this runtime.

        Wires the transport's undecodable-datagram reports into the
        bottom layer's corruption-suspicion path, the same escalation a
        signature rejection takes.

        ``group_id`` tags the process for the shard plane: the bottom
        layer stamps it into every signed message, the transport scopes
        its gossip, and wrong-group traffic is filtered on receive.
        ``node_id`` lets one OS process host members of several shards
        over the one shared socket (their address-book entries must all
        name this transport's bind address); default is the bind node.
        """
        keys = keys or KeyManager()
        node_id = self.node_id if node_id is None else node_id
        # adopt the stack's packing policy for the datagram coalescer
        self._transport.configure(config)
        if initial_view is None:
            initial_view = self.initial_view(self.addresses)
        view = initial_view
        if view.f == 0 and config.byzantine and not view.underprovisioned:
            f = config.resilience(view.n)
            view = View(view.vid, view.mbrs, coordinator=view.coordinator,
                        f=f, underprovisioned=(f == 0))
        process = GroupProcess(self._clock, self._transport, node_id,
                               config, keys, view, obs=obs,
                               group_id=group_id)
        # undecodable reports go to the hosting port so each shard's
        # corruption suspicion runs on its own stack
        port = self._transport._ports.get(node_id)
        if port is not None:
            port.on_undecodable = process.bottom.note_undecodable
        else:
            self._transport.on_undecodable = process.bottom.note_undecodable
        if obs is not None:
            self._clock.observer = obs
            self._transport.observer = obs
        return process

    def __repr__(self):
        return "AsyncioRuntime(node={!r}, peers={})".format(
            self.node_id, len(self.addresses))
