"""Monotonic wall-clock timers with the simulator's scheduling surface.

The protocol stack schedules everything through ``process.sim``:
``now``, ``schedule(delay, cb, *args)``, ``schedule_at(deadline, cb,
*args)``, and the per-node ``rng``.  :class:`AsyncioClock` implements
that exact surface over an asyncio event loop's monotonic clock, so the
unmodified layers run in real time.

Differences from the simulator, deliberate:

* time zero is the instant the clock is created (loop time is offset),
  so protocol timestamps stay small and comparable to simulated runs;
* a deadline slightly in the past is clamped to "as soon as possible"
  instead of raising -- real clocks race (a CPU-charge completion time
  computed a microsecond ago may already have passed), and the asyncio
  loop preserves FIFO order among same-deadline callbacks just like the
  simulator's insertion sequence;
* the clock tracks every armed timer and :meth:`close` cancels them all,
  which is what lets ``GroupProcess.stop`` guarantee that repeated
  start/stop cycles leak nothing (each node process owns its clock, so
  ``per_process`` is True and the process may close it).
"""

from __future__ import annotations

import asyncio
import random


class WallTimer:
    """Cancellable handle mirroring :class:`repro.sim.clock.Timer`."""

    __slots__ = ("deadline", "callback", "args", "cancelled", "_clock",
                 "_handle")

    def __init__(self, clock, deadline, callback, args):
        self.deadline = deadline
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._clock = clock
        self._handle = None

    def cancel(self):
        """Prevent the callback from firing.  Safe to call repeatedly."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._handle is not None:
            self._handle.cancel()
        self._clock._live.discard(self)

    @property
    def active(self):
        return not self.cancelled

    def __repr__(self):
        state = "cancelled" if self.cancelled else "armed"
        return "WallTimer(deadline={:.6f}, {})".format(self.deadline, state)


class AsyncioClock:
    """One node's real-time clock; the ``process.sim`` seam over asyncio."""

    #: a per-node clock may be closed by its owning GroupProcess on stop
    #: (the shared Simulator must not be -- see GroupProcess.stop)
    per_process = True

    def __init__(self, loop=None, seed=0):
        self._loop = loop or asyncio.get_event_loop()
        self._t0 = self._loop.time()
        self.rng = random.Random(seed)
        self._live = set()          # armed WallTimer objects
        self._events_processed = 0
        self.closed = False
        # optional observability hook, same contract as Simulator.observer
        self.observer = None

    # ------------------------------------------------------------------
    @property
    def now(self):
        """Seconds since this clock was created (monotonic)."""
        return self._loop.time() - self._t0

    @property
    def pending(self):
        """Number of armed timers (cancelled ones are dropped eagerly)."""
        return len(self._live)

    @property
    def events_processed(self):
        return self._events_processed

    # ------------------------------------------------------------------
    def schedule(self, delay, callback, *args):
        """Run ``callback(*args)`` ``delay`` real seconds from now."""
        return self.schedule_at(self.now + max(0.0, delay), callback, *args)

    def schedule_at(self, deadline, callback, *args):
        """Run ``callback(*args)`` at clock time ``deadline`` (clamped to
        the present if it already passed -- real clocks race)."""
        if self.closed:
            raise RuntimeError("schedule_at on a closed clock")
        timer = WallTimer(self, deadline, callback, args)
        timer._handle = self._loop.call_at(self._t0 + deadline,
                                           self._fire, timer)
        self._live.add(timer)
        return timer

    def serial_queue(self):
        """The asyncio loop already merges timers in O(log pending); no
        per-queue bookkeeping is worth it here (see Simulator.serial_queue)."""
        return None

    def schedule_serial(self, queue, deadline, callback, *args):
        """Surface parity with the simulator; plain ``schedule_at``."""
        del queue
        return self.schedule_at(deadline, callback, *args)

    def _fire(self, timer):
        self._live.discard(timer)
        if timer.cancelled or self.closed:
            return
        if self.observer is not None:
            self.observer.on_timer(self.now, timer)
        self._events_processed += 1
        timer.callback(*timer.args)

    # ------------------------------------------------------------------
    def close(self):
        """Cancel every armed timer; further firing is suppressed."""
        self.closed = True
        for timer in list(self._live):
            timer.cancelled = True
            if timer._handle is not None:
                timer._handle.cancel()
        self._live.clear()

    def __repr__(self):
        return "AsyncioClock(now={:.3f}, pending={}, closed={})".format(
            self.now, self.pending, self.closed)
