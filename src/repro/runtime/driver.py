"""Net-cluster driver: spawn n node processes, collect their reports.

``run_net_workload`` is the wire-side twin of
:func:`repro.runtime.workload.run_sim_workload`: it allocates one UDP
port per node on localhost, writes one spec JSON per node, launches each
node as ``python -m repro.runtime.node`` (a real OS process, so every
node has its own GIL, its own asyncio loop, and its own clock -- nothing
is shared but the wire), babysits them under a wall-clock timeout, and
folds the written :class:`~repro.runtime.report.NodeReport` files back
into a :class:`~repro.runtime.workload.WorkloadResult`.

On failure the artifacts directory (specs, reports, per-node
stdout/stderr, optional obs exports) is preserved and its path recorded
on the result, so CI can upload it.
"""

from __future__ import annotations

import json
import os
import shutil
import socket
import subprocess
import sys
import tempfile
import time

from repro.runtime.report import NodeReport
from repro.runtime.workload import WorkloadResult

#: margin added to the per-node deadline when computing the kill timeout
WALL_MARGIN = 5.0


def free_udp_ports(count, host="127.0.0.1"):
    """Reserve ``count`` distinct ephemeral UDP ports.

    All sockets are held open while collecting so the OS cannot hand the
    same port out twice; they are closed just before the nodes bind.
    The (tiny) close-to-bind race is acceptable for a test driver.
    """
    sockets = []
    try:
        for _ in range(count):
            sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            sock.bind((host, 0))
            sockets.append(sock)
        return [sock.getsockname()[1] for sock in sockets]
    finally:
        for sock in sockets:
            sock.close()


def _src_path():
    """The directory to put on PYTHONPATH so children import this repro."""
    import repro
    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def write_specs(workload, out_dir, seed=0, config=None, established=False,
                obs=False, host="127.0.0.1", shard_of=None):
    """Write one node spec per cluster member; returns [(node_id, path)].

    ``shard_of`` (optional, ``{node_id: shard_id}``) turns the cluster
    into a multi-group shard plane: every node keeps the full address
    book (one shared bus), but its spec carries its own ``group`` tag
    and the ``group_nodes`` of its shard block, so each shard boots and
    runs membership on its own while sockets multiplex all of them.
    """
    ports = free_udp_ports(workload.n, host=host)
    addresses = {node: [host, ports[node]] for node in range(workload.n)}
    specs = []
    for node in range(workload.n):
        group = shard_of.get(node) if shard_of else None
        group_nodes = (sorted(n for n, s in shard_of.items() if s == group)
                       if shard_of else None)
        spec = {
            "node_id": node,
            "addresses": {str(k): v for k, v in addresses.items()},
            "seed": seed,
            "config": config or {},
            "established": established,
            "workload": workload.to_jsonable(),
            "report": os.path.join(out_dir, "node%d.report.json" % node),
            "obs": bool(obs),
            "obs_export": (os.path.join(out_dir, "node%d.obs.json" % node)
                           if obs else None),
            "group": group,
            "group_nodes": group_nodes,
        }
        path = os.path.join(out_dir, "node%d.spec.json" % node)
        with open(path, "w") as handle:
            json.dump(spec, handle, indent=1)
        specs.append((node, path))
    return specs


def run_net_workload(workload, seed=0, config=None, established=False,
                     obs=False, out_dir=None, wall_timeout=None,
                     keep_artifacts="on-failure", shard_of=None):
    """Run the workload on a localhost UDP cluster of OS processes.

    Parameters
    ----------
    config:
        Spec-style dict (``{"byzantine": ..., "crypto": ...}``); each
        node rebuilds its StackConfig from it and applies ``net_profile``.
    wall_timeout:
        Hard kill horizon in wall seconds; defaults to the workload
        deadline + linger + a margin.
    keep_artifacts:
        "always" | "on-failure" | "never" -- whether the spec/report/log
        directory survives the call.
    """
    if wall_timeout is None:
        wall_timeout = workload.deadline + workload.linger + WALL_MARGIN
    own_dir = out_dir is None
    out_dir = out_dir or tempfile.mkdtemp(prefix="repro-net-")
    os.makedirs(out_dir, exist_ok=True)
    specs = write_specs(workload, out_dir, seed=seed, config=config,
                        established=established, obs=obs, shard_of=shard_of)

    env = dict(os.environ)
    src = _src_path()
    env["PYTHONPATH"] = (src + os.pathsep + env["PYTHONPATH"]
                         if env.get("PYTHONPATH") else src)

    children = []
    logs = []
    wall_start = time.monotonic()
    try:
        for node, spec_path in specs:
            log = open(os.path.join(out_dir, "node%d.log" % node), "w")
            logs.append(log)
            children.append((node, subprocess.Popen(
                [sys.executable, "-m", "repro.runtime.node", spec_path],
                stdout=log, stderr=subprocess.STDOUT, env=env)))
        deadline = wall_start + wall_timeout
        timed_out = []
        for node, child in children:
            remaining = max(0.1, deadline - time.monotonic())
            try:
                child.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                timed_out.append(node)
                child.kill()
                child.wait()
    finally:
        for _node, child in children:
            if child.poll() is None:
                child.kill()
                child.wait()
        for log in logs:
            log.close()
    elapsed = time.monotonic() - wall_start

    reports = {}
    for node, _spec_path in specs:
        path = os.path.join(out_dir, "node%d.report.json" % node)
        try:
            reports[node] = NodeReport.load(path)
        except (OSError, ValueError, KeyError) as err:
            reports[node] = NodeReport(
                node, _missing_history(node), ok=False,
                error="no report (%s)%s" % (
                    err, "; killed at wall timeout" if node in timed_out
                    else ""))

    ok = bool(reports) and all(r.ok for r in reports.values())
    result = WorkloadResult("net", workload, reports, ok, elapsed,
                            artifacts_dir=out_dir)
    if own_dir and (keep_artifacts == "never"
                    or (keep_artifacts == "on-failure" and ok)):
        shutil.rmtree(out_dir, ignore_errors=True)
        result.artifacts_dir = None
    return result


def _missing_history(node):
    from repro.core.history import History
    return History(node)
