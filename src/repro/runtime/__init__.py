"""Runtime backends: the clock + transport seams under the protocol stack.

The layer stack touches the outside world through exactly four seams: the
clock (``process.sim.now`` + timer scheduling), the transport
(``network.send`` / ``network.gossip_cast``), and the two upward callbacks
(``_on_datagram`` / ``_on_gossip``).  A :class:`Runtime` bundles one clock
and one transport behind those seams, which is what lets the *same,
unmodified* protocol stack run either

* inside the deterministic discrete-event simulator
  (:class:`SimRuntime` -- an adapter over the existing
  :class:`~repro.sim.scheduler.Simulator` and
  :class:`~repro.sim.network.Network`, byte-identical to pre-runtime
  bootstraps), or
* over real UDP sockets on localhost (:class:`AsyncioRuntime` -- one OS
  process per node, monotonic-clock timers, and the versioned wire codec
  of :mod:`repro.runtime.wire`).

See docs/RUNTIME.md for the interface contract and how to add a third
transport.  Nothing in this package opens a socket at import time; the
default test suite stays simulator-only and socket-free.
"""

from repro.runtime.interface import Runtime, SimRuntime
from repro.runtime.wire import (
    WIRE_VERSION,
    WireError,
    decode_frame,
    encode_frame,
)

__all__ = [
    "Runtime",
    "SimRuntime",
    "WIRE_VERSION",
    "WireError",
    "decode_frame",
    "encode_frame",
]
