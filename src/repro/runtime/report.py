"""Node run reports: serialized histories the property checker can read.

A net-cluster node is its own OS process, so its
:class:`~repro.core.history.History` cannot be inspected in-memory the
way the simulator's can.  Instead every node writes a JSON report at
teardown; the driver folds the reports back into real ``History``
objects and an :class:`~repro.core.history.Execution`, and the SAME
Definitions 2.1/2.2 checker that audits simulated runs audits the wire
run.  That shared oracle is what makes the sim-vs-wire conformance test
meaningful.
"""

from __future__ import annotations

import json

from repro.core.history import (
    EV_CAST,
    EV_CAST_DELIVER,
    EV_SEND,
    EV_SEND_DELIVER,
    EV_VIEW,
    Execution,
    History,
)
from repro.core.view import ViewId


def _vid_out(vid):
    return [vid.counter, vid.creator]


def _vid_in(obj):
    return ViewId(obj[0], obj[1])


def _mid_out(msg_id):
    """Message ids are (origin, counter) tuples; keep non-tuples as-is."""
    return list(msg_id) if isinstance(msg_id, tuple) else msg_id


def _mid_in(obj):
    return tuple(obj) if isinstance(obj, list) else obj


def event_to_jsonable(ev):
    kind = ev[0]
    if kind == EV_VIEW:
        return [kind, ev[1], _vid_out(ev[2]), list(ev[3])]
    if kind == EV_CAST:
        return [kind, ev[1], _mid_out(ev[2]), _vid_out(ev[3])]
    if kind == EV_CAST_DELIVER:
        return [kind, ev[1], _mid_out(ev[2]), ev[3], ev[4], _vid_out(ev[5])]
    if kind == EV_SEND:
        return [kind, ev[1], ev[2], _vid_out(ev[3])]
    if kind == EV_SEND_DELIVER:
        return [kind, ev[1], ev[2], ev[3], _vid_out(ev[4])]
    raise ValueError("unknown history event kind: %r" % (kind,))


def event_from_jsonable(obj):
    kind = obj[0]
    if kind == EV_VIEW:
        return (kind, obj[1], _vid_in(obj[2]), tuple(obj[3]))
    if kind == EV_CAST:
        return (kind, obj[1], _mid_in(obj[2]), _vid_in(obj[3]))
    if kind == EV_CAST_DELIVER:
        return (kind, obj[1], _mid_in(obj[2]), obj[3], obj[4],
                _vid_in(obj[5]))
    if kind == EV_SEND:
        return (kind, obj[1], obj[2], _vid_in(obj[3]))
    if kind == EV_SEND_DELIVER:
        return (kind, obj[1], obj[2], obj[3], _vid_in(obj[4]))
    raise ValueError("unknown history event kind: %r" % (kind,))


def history_to_jsonable(history):
    return {"node_id": history.node_id,
            "events": [event_to_jsonable(ev) for ev in history.events]}


def history_from_jsonable(obj):
    history = History(obj["node_id"])
    history.events = [event_from_jsonable(ev) for ev in obj["events"]]
    return history


# ----------------------------------------------------------------------
class NodeReport:
    """Everything one net node knows about its own run."""

    def __init__(self, node_id, history, final_view=None, counters=None,
                 wall=None, leaks=None, ok=True, error=None, debug=None):
        self.node_id = node_id
        self.history = history
        self.final_view = final_view      # {"vid": [c, r], "mbrs": [...]}
        self.counters = counters or {}
        self.wall = wall or {}            # wall-clock milestones
        self.leaks = leaks or {}          # post-stop resource accounting
        self.ok = ok
        self.error = error
        self.debug = debug                # stack snapshot, failed runs only

    def to_jsonable(self):
        return {
            "node_id": self.node_id,
            "ok": self.ok,
            "error": self.error,
            "history": history_to_jsonable(self.history),
            "final_view": self.final_view,
            "counters": self.counters,
            "wall": self.wall,
            "leaks": self.leaks,
            "debug": self.debug,
        }

    @classmethod
    def from_jsonable(cls, obj):
        return cls(obj["node_id"],
                   history_from_jsonable(obj["history"]),
                   final_view=obj.get("final_view"),
                   counters=obj.get("counters") or {},
                   wall=obj.get("wall") or {},
                   leaks=obj.get("leaks") or {},
                   ok=obj.get("ok", False),
                   error=obj.get("error"),
                   debug=obj.get("debug"))

    def save(self, path):
        with open(path, "w") as handle:
            json.dump(self.to_jsonable(), handle, indent=1)
        return path

    @classmethod
    def load(cls, path):
        with open(path) as handle:
            return cls.from_jsonable(json.load(handle))

    def final_members(self):
        if self.final_view is None:
            return None
        return tuple(self.final_view["mbrs"])


def execution_from_reports(reports, correct=None):
    """Fold node reports into an Execution for the property checker."""
    histories = {report.node_id: report.history for report in reports}
    return Execution(histories, correct=correct)
