"""Asyncio UDP transport: real datagrams behind the ``network`` seam.

One :class:`AsyncioTransport` serves one node (one OS process): it binds
a UDP socket on localhost and implements the exact surface the stack
uses on :class:`repro.sim.network.Network` -- ``attach``, ``send``,
``gossip_cast``, ``crash``, ``detach`` plus the datagram counters.

The **gossip bus** stands in for the paper's IP multicast: a gossip
frame is fanned out to every address in the static address book, member
or not, which reproduces the discovery property the merge protocol
depends on (any process on the LAN hears any coordinator's view
announcement).  On a localhost cluster the address book IS the LAN.

Wire-path aggregation (docs/PERFORMANCE.md, "The wire path"):

* **datagram coalescing** -- outgoing protocol frames are buffered per
  destination and flushed as one ``FRAME_BATCH`` datagram when the byte
  budget fills (``StackConfig.wire_mtu``, capped by
  :data:`MAX_DATAGRAM_BYTES`), when the backstop timer expires, or at
  the end of the current event-loop burst (a ``call_soon`` armed on the
  first buffered frame runs after every callback that was ready this
  iteration -- so a saturating burst aggregates, while a lone heartbeat
  leaves within the same loop turn).  Anything already pending to a
  peer rides the same flush, which is how ack vectors produced while
  draining a received batch piggyback onto datagrams being emitted
  anyway.
* **encode-once fan-out** -- the destination-independent prefix of an
  encoded ``Message`` is cached across ``clone_for`` siblings
  (:meth:`Message.wire_shares_body`), so an n-1-receiver broadcast
  serializes the shared body once; scratch/output buffers are reused
  ``bytearray`` objects, not per-frame allocations.
* **batch receive drain** -- an arriving batch is fully decoded and
  handed to the stack as one ``("pack", ...)`` container, so the bottom
  layer charges one per-datagram cost and the scheduler runs one
  callback for the whole batch (the same contract the simulator's pack
  queues already have).

Undecodable datagrams (truncated, bit-flipped, garbage) are counted and
reported through :attr:`on_undecodable` -- per *sub-frame* for batches,
so one corrupt sub-frame feeds corruption suspicion without discarding
its siblings; node wiring points that at
:meth:`repro.layers.bottom.BottomLayer.note_undecodable`
(docs/ROBUSTNESS.md).

Shard multiplexing (repro.shard): one transport -- one socket -- can
host SEVERAL attached processes (ports), one per group, when their
address-book entries share this transport's bind address.  Outgoing
frames carry their own source id (per-source frame prefixes and
coalescer buffers); incoming protocol frames are routed to the hosting
port by ``msg.dest``; gossip from a group-tagged port travels in a
``("grp", group_id, payload)`` envelope and is delivered only to ports
of the same group, so one shard's view announcements can never feed
another shard's merge machinery.  A single un-tagged port (the classic
one-node-one-process deployment) sees byte-identical datagrams to the
pre-shard wire format.
"""

from __future__ import annotations

import asyncio
import struct
import sys

from repro.core.message import Message
from repro.runtime.wire import (
    FRAME_BATCH,
    FRAME_DATAGRAM,
    FRAME_GOSSIP,
    SUBFRAME_OVERHEAD,
    WireError,
    decode_datagram,
    encode_frame,
    encode_message_prefix,
    encode_message_tail_into,
    encode_value_into,
    frame_prefix,
)

#: payloads above this encoded size cannot travel in one UDP datagram
MAX_DATAGRAM_BYTES = 65000

#: unconfigured-transport defaults; :meth:`AsyncioTransport.configure`
#: overrides them from StackConfig.packing_policy(wire=True)
DEFAULT_COALESCE_BYTES = 16000
DEFAULT_COALESCE_DELAY = 0.0008

_pack_u32 = struct.Struct("!I").pack


class _UdpProtocol(asyncio.DatagramProtocol):
    """Thin adapter routing socket events into the transport."""

    def __init__(self, transport):
        self.owner = transport

    def connection_made(self, transport):
        self.owner._udp = transport

    def datagram_received(self, data, addr):
        self.owner._on_datagram(data, addr)

    def error_received(self, exc):
        self.owner.socket_errors += 1


class _DestBuffer:
    """Pending coalesced sub-frames for one (source, destination) pair.

    Keyed by source too because a batch datagram names ONE source for
    all its sub-frames -- two co-hosted shard ports sending to the same
    peer address must not share a batch.
    """

    __slots__ = ("src", "dst", "addr", "buf", "frames", "timer")

    def __init__(self, src, dst, addr):
        self.src = src
        self.dst = dst
        self.addr = addr
        self.buf = bytearray()   # concatenated sub-frames, reused across flushes
        self.frames = 0
        self.timer = None


class _Port:
    """One attached process on this transport (one group's member)."""

    __slots__ = ("node_id", "deliver", "gossip_deliver", "group",
                 "crashed", "on_undecodable")

    def __init__(self, node_id, deliver, gossip_deliver, group):
        self.node_id = node_id
        self.deliver = deliver
        self.gossip_deliver = gossip_deliver
        self.group = group
        self.crashed = False
        self.on_undecodable = None


class AsyncioTransport:
    """Real UDP sockets for one node of a localhost cluster."""

    def __init__(self, clock, node_id, addresses, loop=None):
        """``addresses``: {node_id: (host, port)} for the whole cluster,
        including this node (its own entry is the bind address)."""
        self.clock = clock
        self.node_id = node_id
        self.addresses = dict(addresses)
        self._loop = loop or asyncio.get_event_loop()
        self._udp = None          # asyncio DatagramTransport once open
        #: node_id -> _Port; several hosted processes share this socket
        #: when their address-book entries equal the bind address
        self._ports = {}
        self.closed = False
        self.crashed = False
        # coalescing policy (reconfigured from StackConfig by the runtime)
        self.coalescing = True
        self.coalesce_max_bytes = DEFAULT_COALESCE_BYTES
        self.coalesce_delay = DEFAULT_COALESCE_DELAY
        # coalescer state
        self._dest_bufs = {}          # (src, addr) -> _DestBuffer
        self._burst_flush_armed = False
        # encode-once fan-out: (representative clone, shared prefix bytes)
        self._body_cache = None
        self._scratch = bytearray()   # reusable body-encode buffer
        # precomputed frame prefixes keyed by source node id (a hosted
        # shard port sends under its OWN id, not the bind node's)
        self._prefixes = {}
        self._src_prefixes(node_id)
        # counters mirroring repro.sim.network.Network; datagrams_* count
        # wire datagrams, frames_* count logical protocol frames
        self.datagrams_sent = 0
        self.datagrams_dropped = 0
        self.datagrams_delivered = 0
        self.frames_sent = 0
        self.frames_delivered = 0
        self.frames_dropped = 0
        self.gossips_sent = 0
        self.gossips_delivered = 0
        self.gossip_drops = 0
        self.undecodable = 0
        self.encode_failures = 0
        self.encode_cache_hits = 0
        self.oversize_drops = 0
        self.socket_errors = 0
        self.misrouted = 0
        self.bytes_out = 0
        self.bytes_in = 0
        self.flush_reasons = {"size": 0, "timer": 0, "burst": 0, "final": 0}
        self._oversize_warned = set()
        # hooks
        self.observer = None          # ObservabilityPlane, or None
        self.on_undecodable = None    # transport-wide callback(src_or_None)

    def _src_prefixes(self, src):
        """``(prefix_map, single_overhead, batch_overhead)`` for one
        source id, cached (prefix length varies with the encoded id)."""
        entry = self._prefixes.get(src)
        if entry is None:
            prefixes = {
                FRAME_DATAGRAM: frame_prefix(FRAME_DATAGRAM, src),
                FRAME_GOSSIP: frame_prefix(FRAME_GOSSIP, src),
                FRAME_BATCH: frame_prefix(FRAME_BATCH, src),
            }
            entry = (prefixes,
                     len(prefixes[FRAME_DATAGRAM]) + 4,
                     len(prefixes[FRAME_BATCH]) + 4)
            self._prefixes[src] = entry
        return entry

    def _live_ports(self):
        return [port for port in self._ports.values() if not port.crashed]

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def configure(self, config):
        """Adopt the stack's shared packing policy for the coalescer."""
        self.coalescing = bool(getattr(config, "wire_coalesce", True))
        max_bytes, delay = config.packing_policy(wire=True)
        self.coalesce_max_bytes = min(int(max_bytes), MAX_DATAGRAM_BYTES)
        self.coalesce_delay = delay

    async def open(self):
        """Bind the UDP endpoint on this node's address-book entry."""
        host, port = self.addresses[self.node_id]
        await self._loop.create_datagram_endpoint(
            lambda: _UdpProtocol(self), local_addr=(host, port))
        return self

    def close(self):
        """Release the socket; further sends and deliveries are dropped.

        A *graceful* close drains pending coalescer buffers first; a
        crash (:meth:`crash`) drops them, matching the simulator's
        crash semantics for pack queues.
        """
        if self.closed:
            return
        if not self.crashed:
            self.flush_pending(reason="final")
        self.closed = True
        self._drop_pending()
        self._body_cache = None
        if self._udp is not None:
            self._udp.close()
            self._udp = None

    # ------------------------------------------------------------------
    # the Network surface the stack uses
    # ------------------------------------------------------------------
    def attach(self, node_id, deliver, gossip_deliver=None, group=None):
        """Host ``node_id`` on this socket.

        Any node whose address-book entry equals this transport's bind
        address may attach (that is what lets one OS process run several
        shard members over one socket); ``group`` tags the port for
        gossip scoping and rides the same contract as
        :meth:`repro.sim.network.Network.attach`.
        """
        if self.addresses.get(node_id) != self.addresses[self.node_id]:
            raise ValueError("transport bound at %r cannot host node %r "
                             "(address-book entry differs)"
                             % (self.addresses[self.node_id], node_id))
        self._ports[node_id] = _Port(node_id, deliver, gossip_deliver, group)

    def detach(self, node_id):
        self._ports.pop(node_id, None)
        if not self._ports:
            self.close()

    def crash(self, node_id):
        """Crash semantics: silence the node and drop its pending
        coalescer buffers; the socket is released once every hosted
        port has crashed (a co-hosted shard member keeps it open)."""
        port = self._ports.get(node_id)
        if port is not None:
            port.crashed = True
            self._drop_pending(src=node_id)
        if port is None or not self._live_ports():
            self.crashed = True
            self._drop_pending()
            self.close()

    def send(self, src, dst, size_bytes, payload):
        """Unicast one protocol frame (``size_bytes`` is the *modelled*
        size; the wire carries the encoded frame, possibly coalesced
        into a batch datagram with other frames to the same peer)."""
        if self.closed or self.crashed:
            self.datagrams_dropped += 1
            return
        port = self._ports.get(src)
        if port is not None and port.crashed:
            self.datagrams_dropped += 1
            return
        addr = self.addresses.get(dst)
        if addr is None:
            self.datagrams_dropped += 1
            return
        if port is None and src != self.node_id:
            # exotic caller (the stack always sends as itself): keep the
            # faithful-source wire contract via the uncached slow path
            self._send_single(FRAME_DATAGRAM, src, payload, addr)
            return
        prefixes, single_overhead, _ = self._src_prefixes(src)
        body = self._encode_body(payload)
        if body is None:
            return
        if single_overhead + len(body) > MAX_DATAGRAM_BYTES:
            self._drop_oversize(payload, single_overhead + len(body))
            return
        if self.observer is not None:
            self.observer.on_datagram_sent(
                src, dst, SUBFRAME_OVERHEAD + len(body), payload)
        if not self.coalescing:
            data = b"".join((prefixes[FRAME_DATAGRAM],
                             _pack_u32(len(body)), body))
            if self._transmit(data, addr):
                self.datagrams_sent += 1
                self.frames_sent += 1
            else:
                self.frames_dropped += 1
            return
        self._enqueue(FRAME_DATAGRAM, src, dst, addr, body)

    def gossip_cast(self, src, size_bytes, payload):
        """Fan one gossip frame out to every address on the bus.

        The frame is encoded once for the whole fan-out.  The sent
        counter reflects *reachability*: it increments only when at
        least one per-address transmit succeeded, and every failed
        address is accounted in ``gossip_drops``.

        A group-tagged source wraps the payload in a ``("grp", group,
        payload)`` envelope; receivers deliver it only to same-group
        ports.  An un-tagged source (the classic deployment) sends the
        payload bare -- byte-identical to the pre-shard wire format.
        Shared addresses are deduplicated so a socket hosting several
        ports receives one copy, not one per hosted node.
        """
        if self.closed or self.crashed:
            return
        port = self._ports.get(src)
        if port is not None and port.crashed:
            return
        group = port.group if port is not None else None
        wire_payload = payload if group is None else ("grp", group, payload)
        try:
            if port is not None or src == self.node_id:
                body = self._encode_gossip_body(wire_payload)
                prefixes = self._src_prefixes(src)[0]
                data = b"".join((prefixes[FRAME_GOSSIP],
                                 _pack_u32(len(body)), body))
            else:
                data = encode_frame(FRAME_GOSSIP, src, wire_payload)
        except WireError:
            self.encode_failures += 1
            return
        if len(data) > MAX_DATAGRAM_BYTES:
            self._drop_oversize(payload, len(data))
            return
        sent_any = False
        seen_addrs = set()
        for node_id, addr in self.addresses.items():
            if node_id == src or addr in seen_addrs:
                continue
            seen_addrs.add(addr)
            if self._transmit(data, addr):
                sent_any = True
            else:
                self.gossip_drops += 1
        if sent_any:
            self.gossips_sent += 1
            if self.observer is not None:
                self.observer.on_gossip_sent(src, len(data))

    # ------------------------------------------------------------------
    # encode-once body cache + reusable buffers
    # ------------------------------------------------------------------
    def _encode_body(self, payload):
        """Encoded body bytes of one protocol payload, or None on failure.

        For ``Message`` payloads the destination-independent prefix is
        cached across the back-to-back ``clone_for`` siblings of one
        broadcast fan-out; only the (dest, msg_id) tail is re-encoded
        per receiver.
        """
        scratch = self._scratch
        del scratch[:]
        try:
            if type(payload) is Message:
                cached = self._body_cache
                if cached is not None and payload.wire_shares_body(cached[0]):
                    self.encode_cache_hits += 1
                else:
                    cached = (payload, encode_message_prefix(payload))
                    self._body_cache = cached
                scratch += cached[1]
                encode_message_tail_into(payload, scratch)
            else:
                encode_value_into(payload, scratch)
        except WireError:
            self.encode_failures += 1
            return None
        return bytes(scratch)

    def _encode_gossip_body(self, payload):
        scratch = self._scratch
        del scratch[:]
        encode_value_into(payload, scratch)
        return bytes(scratch)

    def _send_single(self, frame_type, src, payload, addr):
        try:
            data = encode_frame(frame_type, src, payload)
        except WireError:
            self.encode_failures += 1
            return
        if len(data) > MAX_DATAGRAM_BYTES:
            self._drop_oversize(payload, len(data))
            return
        if self._transmit(data, addr):
            self.datagrams_sent += 1
            self.frames_sent += 1
        else:
            self.frames_dropped += 1

    # ------------------------------------------------------------------
    # the coalescer
    # ------------------------------------------------------------------
    def _enqueue(self, frame_type, src, dst, addr, body):
        key = (src, addr)
        dest = self._dest_bufs.get(key)
        if dest is None:
            dest = self._dest_bufs[key] = _DestBuffer(src, dst, addr)
        batch_overhead = self._src_prefixes(src)[2]
        sub_len = SUBFRAME_OVERHEAD + len(body)
        # budget split: a frame that would overflow the pack flushes what
        # is pending first and starts a fresh datagram -- never dropped
        if (dest.frames
                and batch_overhead + len(dest.buf) + sub_len
                > self.coalesce_max_bytes):
            self._flush_dest(dest, "size")
        buf = dest.buf
        buf.append(frame_type)
        buf += _pack_u32(len(body))
        buf += body
        dest.frames += 1
        if batch_overhead + len(buf) >= self.coalesce_max_bytes:
            self._flush_dest(dest, "size")
            return
        if dest.timer is None:
            dest.timer = self.clock.schedule(
                self.coalesce_delay, self._on_flush_timer, key)
        if not self._burst_flush_armed:
            # end-of-burst flush: runs after every callback that was
            # already ready this event-loop iteration, so frames produced
            # by the same burst coalesce but nothing waits on a timer
            self._burst_flush_armed = True
            self._loop.call_soon(self._on_burst_flush)

    def _on_flush_timer(self, key):
        dest = self._dest_bufs.get(key)
        if dest is not None and dest.frames:
            dest.timer = None
            self._flush_dest(dest, "timer")

    def _on_burst_flush(self):
        self._burst_flush_armed = False
        self.flush_pending(reason="burst")

    def flush_pending(self, reason="burst"):
        """Emit every pending coalescer buffer now (end-of-burst hook;
        also called by the node runner before its final counter snapshot)."""
        if self.closed or self.crashed:
            return
        for dest in self._dest_bufs.values():
            if dest.frames:
                self._flush_dest(dest, reason)

    def _flush_dest(self, dest, reason):
        if dest.timer is not None:
            dest.timer.cancel()
            dest.timer = None
        count = dest.frames
        if not count:
            return
        buf = dest.buf
        prefixes = self._src_prefixes(dest.src)[0]
        if count == 1:
            # a lone frame travels as a plain (non-batch) datagram: the
            # sub-frame framing is stripped, saving the batch overhead
            frame_type = buf[0]
            data = b"".join((prefixes[frame_type],
                             bytes(buf[1:])))
        else:
            data = b"".join((prefixes[FRAME_BATCH],
                             _pack_u32(count), buf))
        if self._transmit(data, dest.addr):
            self.datagrams_sent += 1
            self.frames_sent += count
            self.flush_reasons[reason] = self.flush_reasons.get(reason, 0) + 1
            observer = self.observer
            if observer is not None:
                hook = getattr(observer, "on_coalesce_flush", None)
                if hook is not None:
                    hook(self.node_id, reason, count, len(data))
        else:
            self.frames_dropped += count
        del buf[:]                # reuse the bytearray across flushes
        dest.frames = 0

    def _drop_pending(self, src=None):
        for dest in self._dest_bufs.values():
            if src is not None and dest.src != src:
                continue
            if dest.timer is not None:
                dest.timer.cancel()
                dest.timer = None
            del dest.buf[:]
            dest.frames = 0

    def _drop_oversize(self, payload, size):
        """An encoded frame exceeds the hard datagram ceiling: surface it
        (metric + one stderr line per kind) instead of a silent vanish."""
        self.oversize_drops += 1
        kind = getattr(payload, "kind", None)
        if kind is None and isinstance(payload, tuple) and payload:
            kind = payload[0]
        observer = self.observer
        if observer is not None:
            hook = getattr(observer, "on_oversize_drop", None)
            if hook is not None:
                hook(self.node_id, kind)
        if kind not in self._oversize_warned:
            self._oversize_warned.add(kind)
            print("repro.runtime: node %r dropping oversize frame kind=%r: "
                  "%d encoded bytes > %d-byte datagram ceiling"
                  % (self.node_id, kind, size, MAX_DATAGRAM_BYTES),
                  file=sys.stderr)

    # ------------------------------------------------------------------
    def _transmit(self, data, addr):
        try:
            self._udp.sendto(data, addr)
        except (OSError, AttributeError):
            self.socket_errors += 1
            self.datagrams_dropped += 1
            return False
        self.bytes_out += len(data)
        return True

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------
    def _route_port(self, payload):
        """The hosted port a protocol frame is addressed to.

        Routing key is ``msg.dest`` (every stack payload is a Message or
        a ``("pack", ...)`` container of same-dest Messages).  A payload
        with no readable dest falls back to the lone live port -- the
        classic one-process deployment and raw-payload tests -- and is
        counted ``misrouted`` when several ports could claim it.
        """
        dest = getattr(payload, "dest", None)
        if (dest is None and isinstance(payload, tuple)
                and len(payload) == 2 and payload[0] == "pack"
                and payload[1]):
            dest = getattr(payload[1][0], "dest", None)
        port = self._ports.get(dest) if dest is not None else None
        if port is not None:
            return None if port.crashed else port
        live = self._live_ports()
        if len(live) == 1:
            return live[0]
        self.misrouted += 1
        return None

    def _report_undecodable(self, src):
        callback = self.on_undecodable
        if callback is not None:
            callback(src)
        for port in self._live_ports():
            if port.on_undecodable is not None:
                port.on_undecodable(src)

    def _on_datagram(self, data, addr):
        if self.closed or self.crashed:
            return
        self.bytes_in += len(data)
        # hand the codec a view so its offset walk never copies the
        # datagram; escaping values are materialized inside the decoder
        frames, errors = decode_datagram(memoryview(data))
        if errors:
            # per-sub-frame attribution: one corrupt sub-frame strikes
            # its source without discarding decodable siblings
            self.undecodable += len(errors)
            for err in errors:
                self._report_undecodable(err.src)
        if not frames:
            return
        delivered_any = False
        batch_src = None
        batch_port = None
        batch = None            # accumulated payloads, same (src, port)
        for frame_type, src, payload in frames:
            if frame_type == FRAME_GOSSIP:
                group = None
                inner = payload
                if (isinstance(payload, tuple) and len(payload) == 3
                        and payload[0] == "grp"):
                    group, inner = payload[1], payload[2]
                for port in self._live_ports():
                    if (port.gossip_deliver is None or port.node_id == src
                            or port.group != group):
                        continue
                    self.gossips_delivered += 1
                    delivered_any = True
                    if self.observer is not None:
                        self.observer.on_gossip_delivered(port.node_id, src)
                    port.gossip_deliver(src, inner)
                continue
            port = self._route_port(payload)
            if port is None or port.deliver is None:
                continue
            delivered_any = True
            self.frames_delivered += 1
            if self.observer is not None:
                self.observer.on_datagram_delivered(port.node_id, src,
                                                    payload)
            if batch is not None and (src != batch_src
                                      or port is not batch_port):
                self._deliver_batch(batch_port, batch_src, batch)
                batch = None
            if batch is None:
                batch_src, batch_port, batch = src, port, []
            batch.append(payload)
        if batch is not None:
            self._deliver_batch(batch_port, batch_src, batch)
        if delivered_any:
            self.datagrams_delivered += 1

    def _deliver_batch(self, port, src, payloads):
        """Drain all sub-frames from one source into the stack at once.

        A multi-frame batch enters the bottom layer as one ``("pack",
        (msg, ...))`` container -- one per-datagram CPU charge and one
        scheduler callback for the whole batch, the same contract the
        simulator's pack queues have.  Payloads that are themselves pack
        containers are flattened in wire order.
        """
        if len(payloads) == 1:
            port.deliver(src, payloads[0])
            return
        msgs = []
        for payload in payloads:
            if (isinstance(payload, tuple) and len(payload) == 2
                    and payload[0] == "pack"
                    and isinstance(payload[1], tuple)):
                msgs.extend(payload[1])
            else:
                msgs.append(payload)
        port.deliver(src, ("pack", tuple(msgs)))

    # ------------------------------------------------------------------
    def counters(self):
        """Snapshot of the transport counters (for reports/benchmarks)."""
        snapshot = {
            "datagrams_sent": self.datagrams_sent,
            "datagrams_dropped": self.datagrams_dropped,
            "datagrams_delivered": self.datagrams_delivered,
            "frames_sent": self.frames_sent,
            "frames_delivered": self.frames_delivered,
            "frames_dropped": self.frames_dropped,
            "gossips_sent": self.gossips_sent,
            "gossips_delivered": self.gossips_delivered,
            "gossip_drops": self.gossip_drops,
            "undecodable": self.undecodable,
            "encode_failures": self.encode_failures,
            "encode_cache_hits": self.encode_cache_hits,
            "oversize_drops": self.oversize_drops,
            "socket_errors": self.socket_errors,
            "misrouted": self.misrouted,
            "bytes_out": self.bytes_out,
            "bytes_in": self.bytes_in,
        }
        for reason, count in self.flush_reasons.items():
            snapshot["flush_" + reason] = count
        return snapshot
