"""Asyncio UDP transport: real datagrams behind the ``network`` seam.

One :class:`AsyncioTransport` serves one node (one OS process): it binds
a UDP socket on localhost and implements the exact surface the stack
uses on :class:`repro.sim.network.Network` -- ``attach``, ``send``,
``gossip_cast``, ``crash``, ``detach`` plus the datagram counters.

The **gossip bus** stands in for the paper's IP multicast: a gossip
frame is fanned out to every address in the static address book, member
or not, which reproduces the discovery property the merge protocol
depends on (any process on the LAN hears any coordinator's view
announcement).  On a localhost cluster the address book IS the LAN.

Undecodable datagrams (truncated, bit-flipped, garbage) are counted and
reported through :attr:`on_undecodable`; node wiring points that at
:meth:`repro.layers.bottom.BottomLayer.note_undecodable`, which folds
wire corruption into the same fuzzy-suspicion path that signature
rejections feed (docs/ROBUSTNESS.md).
"""

from __future__ import annotations

import asyncio

from repro.runtime.wire import (
    FRAME_DATAGRAM,
    FRAME_GOSSIP,
    WireError,
    decode_frame,
    encode_frame,
)

#: payloads above this encoded size cannot travel in one UDP datagram
MAX_DATAGRAM_BYTES = 65000


class _UdpProtocol(asyncio.DatagramProtocol):
    """Thin adapter routing socket events into the transport."""

    def __init__(self, transport):
        self.owner = transport

    def connection_made(self, transport):
        self.owner._udp = transport

    def datagram_received(self, data, addr):
        self.owner._on_datagram(data, addr)

    def error_received(self, exc):
        self.owner.socket_errors += 1


class AsyncioTransport:
    """Real UDP sockets for one node of a localhost cluster."""

    def __init__(self, clock, node_id, addresses, loop=None):
        """``addresses``: {node_id: (host, port)} for the whole cluster,
        including this node (its own entry is the bind address)."""
        self.clock = clock
        self.node_id = node_id
        self.addresses = dict(addresses)
        self._loop = loop or asyncio.get_event_loop()
        self._udp = None          # asyncio DatagramTransport once open
        self._deliver = None
        self._gossip_deliver = None
        self.closed = False
        self.crashed = False
        # counters mirroring repro.sim.network.Network
        self.datagrams_sent = 0
        self.datagrams_dropped = 0
        self.datagrams_delivered = 0
        self.gossips_sent = 0
        self.gossips_delivered = 0
        self.undecodable = 0
        self.encode_failures = 0
        self.socket_errors = 0
        self.bytes_out = 0
        self.bytes_in = 0
        # hooks
        self.observer = None          # ObservabilityPlane, or None
        self.on_undecodable = None    # callback(src_or_None)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def open(self):
        """Bind the UDP endpoint on this node's address-book entry."""
        host, port = self.addresses[self.node_id]
        await self._loop.create_datagram_endpoint(
            lambda: _UdpProtocol(self), local_addr=(host, port))
        return self

    def close(self):
        """Release the socket; further sends and deliveries are dropped."""
        if self.closed:
            return
        self.closed = True
        if self._udp is not None:
            self._udp.close()
            self._udp = None

    # ------------------------------------------------------------------
    # the Network surface the stack uses
    # ------------------------------------------------------------------
    def attach(self, node_id, deliver, gossip_deliver=None):
        if node_id != self.node_id:
            raise ValueError("transport of node %r cannot host node %r"
                             % (self.node_id, node_id))
        self._deliver = deliver
        self._gossip_deliver = gossip_deliver

    def detach(self, node_id):
        self._deliver = None
        self._gossip_deliver = None
        self.close()

    def crash(self, node_id):
        """Crash semantics: silence the node and release its socket."""
        self.crashed = True
        self.close()

    def send(self, src, dst, size_bytes, payload):
        """Unicast one protocol datagram (``size_bytes`` is the *modelled*
        size; the wire carries the encoded frame)."""
        if self.closed or self.crashed:
            self.datagrams_dropped += 1
            return
        addr = self.addresses.get(dst)
        if addr is None:
            self.datagrams_dropped += 1
            return
        data = self._encode(FRAME_DATAGRAM, src, payload)
        if data is None:
            return
        if self._transmit(data, addr):
            self.datagrams_sent += 1
            if self.observer is not None:
                self.observer.on_datagram_sent(src, dst, len(data), payload)

    def gossip_cast(self, src, size_bytes, payload):
        """Fan one gossip frame out to every address on the bus."""
        if self.closed or self.crashed:
            return
        data = self._encode(FRAME_GOSSIP, src, payload)
        if data is None:
            return
        for node_id, addr in self.addresses.items():
            if node_id == src:
                continue
            self._transmit(data, addr)
        self.gossips_sent += 1
        if self.observer is not None:
            self.observer.on_gossip_sent(src, len(data))

    # ------------------------------------------------------------------
    def _encode(self, frame_type, src, payload):
        try:
            data = encode_frame(frame_type, src, payload)
        except WireError:
            self.encode_failures += 1
            return None
        if len(data) > MAX_DATAGRAM_BYTES:
            self.encode_failures += 1
            return None
        return data

    def _transmit(self, data, addr):
        try:
            self._udp.sendto(data, addr)
        except (OSError, AttributeError):
            self.socket_errors += 1
            self.datagrams_dropped += 1
            return False
        self.bytes_out += len(data)
        return True

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------
    def _on_datagram(self, data, addr):
        if self.closed or self.crashed:
            return
        self.bytes_in += len(data)
        try:
            frame_type, src, payload = decode_frame(data)
        except WireError as err:
            self.undecodable += 1
            callback = self.on_undecodable
            if callback is not None:
                callback(err.src)
            return
        if frame_type == FRAME_GOSSIP:
            if self._gossip_deliver is not None:
                self.gossips_delivered += 1
                if self.observer is not None:
                    self.observer.on_gossip_delivered(self.node_id, src)
                self._gossip_deliver(src, payload)
            return
        if self._deliver is not None:
            self.datagrams_delivered += 1
            if self.observer is not None:
                self.observer.on_datagram_delivered(self.node_id, src, payload)
            self._deliver(src, payload)

    # ------------------------------------------------------------------
    def counters(self):
        """Snapshot of the transport counters (for reports/benchmarks)."""
        return {
            "datagrams_sent": self.datagrams_sent,
            "datagrams_dropped": self.datagrams_dropped,
            "datagrams_delivered": self.datagrams_delivered,
            "gossips_sent": self.gossips_sent,
            "gossips_delivered": self.gossips_delivered,
            "undecodable": self.undecodable,
            "encode_failures": self.encode_failures,
            "socket_errors": self.socket_errors,
            "bytes_out": self.bytes_out,
            "bytes_in": self.bytes_in,
        }
