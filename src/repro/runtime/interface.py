"""The Runtime interface: one clock + one transport under the stack.

A runtime bundles the two seams the protocol stack touches:

* ``clock`` -- the object handed to :class:`repro.core.process.GroupProcess`
  as ``sim``: must provide ``now``, ``schedule``, ``schedule_at``, ``rng``
  and return cancellable timers (see :class:`repro.sim.clock.Timer` /
  :class:`repro.runtime.clock.WallTimer` for the handle contract);
* ``transport`` -- the object handed as ``network``: must provide
  ``attach(node_id, deliver, gossip_deliver)``, ``send(src, dst, size,
  payload)``, ``gossip_cast(src, size, payload)``, ``crash(node_id)`` and
  ``detach(node_id)``.

:class:`SimRuntime` is the deterministic backend: a zero-behaviour-change
adapter over the existing :class:`~repro.sim.scheduler.Simulator` and
:class:`~repro.sim.network.Network` (it constructs them in exactly the
order the pre-runtime ``Group.bootstrap`` did, so seed-pinned histories
stay byte-identical).  The asyncio UDP backend lives in
:mod:`repro.runtime.backend_asyncio`; it is imported lazily so that
simulator-only users never load socket code.
"""

from __future__ import annotations


class Runtime:
    """Abstract clock + transport bundle; see the module docstring."""

    kind = "abstract"

    @property
    def clock(self):
        raise NotImplementedError

    @property
    def transport(self):
        raise NotImplementedError

    def close(self):
        """Release whatever the runtime holds (timers, sockets)."""


class SimRuntime(Runtime):
    """The deterministic simulator as a runtime (the default backend).

    Construction order mirrors the historical ``Group.bootstrap`` body
    exactly -- Simulator first, then topology, then Network -- because
    the simulator's RNG draw order is part of the frozen seed contract
    (docs/PERFORMANCE.md) and tier-1 asserts byte-identical histories.
    """

    kind = "sim"

    def __init__(self, n, seed=0, topology_cls=None, net_config=None):
        from repro.sim.network import Network, NetworkConfig
        from repro.sim.scheduler import Simulator
        from repro.sim.topology import BladeCenterTopology
        self.sim = Simulator(seed=seed)
        self.topology = (topology_cls or BladeCenterTopology)(n)
        self.network = Network(self.sim, self.topology,
                               net_config or NetworkConfig())

    @property
    def clock(self):
        return self.sim

    @property
    def transport(self):
        return self.network

    def close(self):
        """Nothing to release: the simulator owns no OS resources."""

    def __repr__(self):
        return "SimRuntime(now={:.6f}, pending={})".format(
            self.sim.now, self.sim.pending)
