"""Versioned, length-prefixed wire codec for the real-network runtime.

The simulator hands :class:`~repro.core.message.Message` objects between
nodes by reference; a real transport has to serialize them.  This module
defines the datagram format the asyncio UDP backend speaks:

``frame := MAGIC(2) VERSION(1) FRAMETYPE(1) src:value BODYLEN(4) body:value``

where ``value`` is a tagged, recursively-defined encoding of the small
Python value universe the protocol stack actually puts on the wire: None,
bools, ints, floats, strings, bytes, tuples, lists, dicts, (frozen)sets,
:class:`~repro.core.view.ViewId`, and whole ``Message`` structs (whose
field list is owned by :meth:`Message.wire_fields`, so the codec never
reaches into message internals).  The body of a datagram frame is either
one ``Message`` or the bottom layer's ``("pack", (msg, ...))`` container;
the body of a gossip frame is the plain gossip payload tuple.

Decoding is *total*: any input -- truncated, bit-flipped, or random
garbage -- either yields a value or raises :class:`WireError`; it never
raises anything else, never loops, and never allocates more than a small
multiple of the datagram size (collection counts are bounded by the bytes
remaining, so a flipped length byte cannot demand gigabytes).  Transports
route decode failures into the bottom layer's corruption-suspicion path
(:meth:`~repro.layers.bottom.BottomLayer.note_undecodable`) when the
claimed source survived decoding; :class:`WireError` carries it as
``err.src``.

Content authentication is *not* the codec's job: a bit flip that still
decodes (e.g. inside a string) reconstructs a message whose HMAC no
longer matches its content, and the bottom layer's signature check drops
it -- the same defense the simulator's Byzantine mutators exercise.
"""

from __future__ import annotations

import struct

MAGIC = b"JB"
WIRE_VERSION = 1

#: frame types
FRAME_DATAGRAM = 1   # unicast protocol datagram (Message or pack container)
FRAME_GOSSIP = 2     # gossip-bus announcement (plain payload)

_FRAME_TYPES = (FRAME_DATAGRAM, FRAME_GOSSIP)

#: value tags (one byte each)
_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT64 = 0x03
_T_BIGINT = 0x04
_T_FLOAT = 0x05
_T_STR = 0x06
_T_BYTES = 0x07
_T_TUPLE = 0x08
_T_LIST = 0x09
_T_DICT = 0x0A
_T_SET = 0x0B
_T_FROZENSET = 0x0C
_T_VIEWID = 0x0D
_T_MESSAGE = 0x0E

_MAX_DEPTH = 32
_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1

_pack_u32 = struct.Struct("!I").pack
_pack_i64 = struct.Struct("!q").pack
_pack_f64 = struct.Struct("!d").pack
_unpack_u32 = struct.Struct("!I").unpack_from
_unpack_i64 = struct.Struct("!q").unpack_from
_unpack_f64 = struct.Struct("!d").unpack_from


class WireError(ValueError):
    """A datagram failed to encode or decode.

    ``src`` is the frame's claimed source node when it was recovered
    before the failure (so receivers can feed corruption suspicion), or
    None when even the source field was unreadable.
    """

    def __init__(self, reason, src=None):
        super().__init__(reason)
        self.src = src


# ----------------------------------------------------------------------
# encoding
# ----------------------------------------------------------------------
def encode_value(obj):
    """Encode one value; raises :class:`WireError` on unsupported types."""
    out = bytearray()
    _encode(obj, out, 0)
    return bytes(out)


def _encode(obj, out, depth):
    if depth > _MAX_DEPTH:
        raise WireError("value nesting exceeds depth %d" % _MAX_DEPTH)
    if obj is None:
        out.append(_T_NONE)
    elif obj is True:
        out.append(_T_TRUE)
    elif obj is False:
        out.append(_T_FALSE)
    elif type(obj) is int:
        if _INT64_MIN <= obj <= _INT64_MAX:
            out.append(_T_INT64)
            out += _pack_i64(obj)
        else:
            raw = obj.to_bytes((obj.bit_length() + 8) // 8, "big", signed=True)
            out.append(_T_BIGINT)
            out += _pack_u32(len(raw))
            out += raw
    elif type(obj) is float:
        out.append(_T_FLOAT)
        out += _pack_f64(obj)
    elif type(obj) is str:
        raw = obj.encode("utf-8")
        out.append(_T_STR)
        out += _pack_u32(len(raw))
        out += raw
    elif type(obj) is bytes:
        out.append(_T_BYTES)
        out += _pack_u32(len(obj))
        out += obj
    elif type(obj) is tuple:
        out.append(_T_TUPLE)
        out += _pack_u32(len(obj))
        for item in obj:
            _encode(item, out, depth + 1)
    elif type(obj) is list:
        out.append(_T_LIST)
        out += _pack_u32(len(obj))
        for item in obj:
            _encode(item, out, depth + 1)
    elif type(obj) is dict:
        out.append(_T_DICT)
        out += _pack_u32(len(obj))
        for key, value in obj.items():
            _encode(key, out, depth + 1)
            _encode(value, out, depth + 1)
    elif type(obj) in (set, frozenset):
        out.append(_T_SET if type(obj) is set else _T_FROZENSET)
        # repr-sorted for a canonical encoding (sets have no order)
        items = sorted(obj, key=repr)
        out += _pack_u32(len(items))
        for item in items:
            _encode(item, out, depth + 1)
    else:
        # late imports keep this module loadable without the core package
        # in codec-only tooling, and avoid an import cycle with message.py
        from repro.core.message import Message
        from repro.core.view import ViewId
        if type(obj) is ViewId:
            out.append(_T_VIEWID)
            _encode(obj.counter, out, depth + 1)
            _encode(obj.creator, out, depth + 1)
        elif type(obj) is Message:
            out.append(_T_MESSAGE)
            for field in obj.wire_fields():
                _encode(field, out, depth + 1)
        else:
            raise WireError("unencodable value of type %s: %r"
                            % (type(obj).__name__, obj))


def encode_frame(frame_type, src, payload):
    """One complete datagram: header + source + length-prefixed body."""
    if frame_type not in _FRAME_TYPES:
        raise WireError("unknown frame type %r" % (frame_type,))
    body = encode_value(payload)
    out = bytearray(MAGIC)
    out.append(WIRE_VERSION)
    out.append(frame_type)
    _encode(src, out, 0)
    out += _pack_u32(len(body))
    out += body
    return bytes(out)


# ----------------------------------------------------------------------
# decoding
# ----------------------------------------------------------------------
def decode_value(data):
    """Decode one value from ``data``; the whole buffer must be consumed."""
    value, offset = _decode(data, 0, 0)
    if offset != len(data):
        raise WireError("trailing garbage after value (%d of %d bytes)"
                        % (offset, len(data)))
    return value


def _need(data, offset, nbytes):
    if offset + nbytes > len(data):
        raise WireError("truncated: need %d bytes at offset %d, have %d"
                        % (nbytes, offset, len(data) - offset))


def _count(data, offset, minimum_item_bytes=1):
    """Read a u32 collection count, bounded by the bytes remaining."""
    _need(data, offset, 4)
    count = _unpack_u32(data, offset)[0]
    offset += 4
    if count * minimum_item_bytes > len(data) - offset:
        raise WireError("count %d exceeds remaining %d bytes"
                        % (count, len(data) - offset))
    return count, offset


def _decode(data, offset, depth):
    if depth > _MAX_DEPTH:
        raise WireError("value nesting exceeds depth %d" % _MAX_DEPTH)
    _need(data, offset, 1)
    tag = data[offset]
    offset += 1
    if tag == _T_NONE:
        return None, offset
    if tag == _T_TRUE:
        return True, offset
    if tag == _T_FALSE:
        return False, offset
    if tag == _T_INT64:
        _need(data, offset, 8)
        return _unpack_i64(data, offset)[0], offset + 8
    if tag == _T_BIGINT:
        length, offset = _count(data, offset)
        _need(data, offset, length)
        raw = data[offset:offset + length]
        return int.from_bytes(raw, "big", signed=True), offset + length
    if tag == _T_FLOAT:
        _need(data, offset, 8)
        return _unpack_f64(data, offset)[0], offset + 8
    if tag == _T_STR:
        length, offset = _count(data, offset)
        _need(data, offset, length)
        raw = bytes(data[offset:offset + length])
        try:
            return raw.decode("utf-8"), offset + length
        except UnicodeDecodeError as err:
            raise WireError("invalid utf-8 in string: %s" % err)
    if tag == _T_BYTES:
        length, offset = _count(data, offset)
        _need(data, offset, length)
        return bytes(data[offset:offset + length]), offset + length
    if tag in (_T_TUPLE, _T_LIST, _T_SET, _T_FROZENSET):
        count, offset = _count(data, offset)
        items = []
        for _ in range(count):
            item, offset = _decode(data, offset, depth + 1)
            items.append(item)
        if tag == _T_TUPLE:
            return tuple(items), offset
        if tag == _T_LIST:
            return items, offset
        try:
            built = set(items) if tag == _T_SET else frozenset(items)
        except TypeError:
            raise WireError("unhashable set element")
        return built, offset
    if tag == _T_DICT:
        count, offset = _count(data, offset, minimum_item_bytes=2)
        table = {}
        for _ in range(count):
            key, offset = _decode(data, offset, depth + 1)
            value, offset = _decode(data, offset, depth + 1)
            try:
                table[key] = value
            except TypeError:
                raise WireError("unhashable dict key")
        return table, offset
    if tag == _T_VIEWID:
        from repro.core.view import ViewId
        counter, offset = _decode(data, offset, depth + 1)
        creator, offset = _decode(data, offset, depth + 1)
        if not isinstance(counter, int) or isinstance(counter, bool):
            raise WireError("view-id counter is not an int: %r" % (counter,))
        return ViewId(counter, creator), offset
    if tag == _T_MESSAGE:
        from repro.core.message import Message
        fields = []
        for _ in range(Message.WIRE_FIELD_COUNT):
            field, offset = _decode(data, offset, depth + 1)
            fields.append(field)
        try:
            return Message.from_wire_fields(fields), offset
        except (ValueError, TypeError) as err:
            raise WireError("malformed message struct: %s" % err)
    raise WireError("unknown value tag 0x%02x at offset %d"
                    % (tag, offset - 1))


def decode_frame(data):
    """``(frame_type, src, payload)`` of one datagram, or :class:`WireError`.

    Never raises anything but :class:`WireError` on arbitrary input; when
    the source field decoded before the failure it travels on
    ``err.src`` so the receiver can attribute the corruption.
    """
    src = None
    try:
        _need(data, 0, 4)
        if bytes(data[:2]) != MAGIC:
            raise WireError("bad magic %r" % (bytes(data[:2]),))
        if data[2] != WIRE_VERSION:
            raise WireError("unsupported wire version %d" % data[2])
        frame_type = data[3]
        if frame_type not in _FRAME_TYPES:
            raise WireError("unknown frame type %d" % frame_type)
        src, offset = _decode(data, 4, 0)
        _need(data, offset, 4)
        body_len = _unpack_u32(data, offset)[0]
        offset += 4
        if body_len != len(data) - offset:
            raise WireError("body length %d does not match remaining %d "
                            "bytes" % (body_len, len(data) - offset), src=src)
        payload, offset = _decode(data, offset, 0)
        if offset != len(data):
            raise WireError("trailing garbage after frame body", src=src)
        return frame_type, src, payload
    except WireError as err:
        if err.src is None:
            err.src = src
        raise
    except Exception as err:   # struct errors, recursion, anything exotic
        raise WireError("undecodable datagram: %s" % err, src=src)
