"""Versioned, length-prefixed wire codec for the real-network runtime.

The simulator hands :class:`~repro.core.message.Message` objects between
nodes by reference; a real transport has to serialize them.  This module
defines the datagram format the asyncio UDP backend speaks:

``frame := MAGIC(2) VERSION(1) FRAMETYPE(1) src:value BODYLEN(4) body:value``

where ``value`` is a tagged, recursively-defined encoding of the small
Python value universe the protocol stack actually puts on the wire: None,
bools, ints, floats, strings, bytes, tuples, lists, dicts, (frozen)sets,
:class:`~repro.core.view.ViewId`, and whole ``Message`` structs (whose
field list is owned by :meth:`Message.wire_fields`, so the codec never
reaches into message internals).  The body of a datagram frame is either
one ``Message`` or the bottom layer's ``("pack", (msg, ...))`` container;
the body of a gossip frame is the plain gossip payload tuple.

Version 2 adds the **batch container** the transport's datagram coalescer
emits -- many protocol frames from one source in one UDP datagram::

    batch := MAGIC(2) VERSION(1) FRAME_BATCH(1) src:value COUNT(4)
             { SUBTYPE(1) BODYLEN(4) body:value } * COUNT

Sub-frame bodies are individually length-prefixed, so decoding stays
total *per sub-frame*: a bit flip inside one body is attributed to the
frame's source (:func:`decode_datagram` collects it as a
:class:`WireError`) while every sibling sub-frame is still delivered --
the length prefix is the resynchronization point.  Only damage to the
batch header or to a sub-frame's own framing (type byte, length) loses
the rest of the datagram, exactly the blast radius a single v1 frame
already had.  v1 frames remain decodable (the single-frame layout is
unchanged; only the version byte moved), so a mixed-version cluster
drains in-flight traffic across an upgrade.

Decoding is *total*: any input -- truncated, bit-flipped, or random
garbage -- either yields a value or raises :class:`WireError`; it never
raises anything else, never loops, and never allocates more than a small
multiple of the datagram size (collection counts are bounded by the bytes
remaining, so a flipped length byte cannot demand gigabytes).  Transports
route decode failures into the bottom layer's corruption-suspicion path
(:meth:`~repro.layers.bottom.BottomLayer.note_undecodable`) when the
claimed source survived decoding; :class:`WireError` carries it as
``err.src``.

Content authentication is *not* the codec's job: a bit flip that still
decodes (e.g. inside a string) reconstructs a message whose HMAC no
longer matches its content, and the bottom layer's signature check drops
it -- the same defense the simulator's Byzantine mutators exercise.

Zero-copy decoding (docs/PERFORMANCE.md, "The CPU path"): the decoders
normalize their input to one :class:`memoryview` and walk it by offset.
Slices taken during the walk (string bodies, big-int magnitudes, batch
sub-frames) are views, not copies; bytes are materialized only where a
value *escapes* into a long-lived Python object (``_T_BYTES`` payloads,
and the str/int constructors which copy inherently).  Batch sub-frames
decode in place against their computed ``end`` offset instead of being
carved into per-sub-frame ``bytes`` bodies first.  The
:data:`ZERO_COPY` switch (tests/test_perf_parity.py,
tests/test_wire_codec.py) restores the copy-per-sub-frame reference
path; either way any buffer type -- ``bytes``, ``bytearray``,
``memoryview`` -- decodes to identical values and identical
frame-vs-error verdicts (only error *strings* may differ).
"""

from __future__ import annotations

import struct

#: perf-parity switch: False restores the copying reference decoder
ZERO_COPY = True

MAGIC = b"JB"
WIRE_VERSION = 3

#: versions this decoder accepts (v1 single frames share the v2 layout;
#: v3 appends the multi-group ``group`` field to the message struct)
DECODABLE_VERSIONS = (1, 2, 3)

#: versions that may carry the FRAME_BATCH container
_BATCH_VERSIONS = (2, 3)

#: frame types
FRAME_DATAGRAM = 1   # unicast protocol datagram (Message or pack container)
FRAME_GOSSIP = 2     # gossip-bus announcement (plain payload)
FRAME_BATCH = 3      # v2 coalescer container: many sub-frames, one source

#: types a frame may carry on its own (a batch is never nested)
_FRAME_TYPES = (FRAME_DATAGRAM, FRAME_GOSSIP)

#: per-sub-frame framing overhead inside a batch: type byte + length
SUBFRAME_OVERHEAD = 5

#: value tags (one byte each)
_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT64 = 0x03
_T_BIGINT = 0x04
_T_FLOAT = 0x05
_T_STR = 0x06
_T_BYTES = 0x07
_T_TUPLE = 0x08
_T_LIST = 0x09
_T_DICT = 0x0A
_T_SET = 0x0B
_T_FROZENSET = 0x0C
_T_VIEWID = 0x0D
_T_MESSAGE = 0x0E

_MAX_DEPTH = 32
_INT64_MIN = -(1 << 63)
_INT64_MAX = (1 << 63) - 1

_pack_u32 = struct.Struct("!I").pack
_pack_i64 = struct.Struct("!q").pack
_pack_f64 = struct.Struct("!d").pack
_unpack_u32 = struct.Struct("!I").unpack_from
_unpack_i64 = struct.Struct("!q").unpack_from
_unpack_f64 = struct.Struct("!d").unpack_from


class WireError(ValueError):
    """A datagram failed to encode or decode.

    ``src`` is the frame's claimed source node when it was recovered
    before the failure (so receivers can feed corruption suspicion), or
    None when even the source field was unreadable.
    """

    def __init__(self, reason, src=None):
        super().__init__(reason)
        self.src = src


# ----------------------------------------------------------------------
# encoding
# ----------------------------------------------------------------------
def encode_value(obj):
    """Encode one value; raises :class:`WireError` on unsupported types."""
    out = bytearray()
    _encode(obj, out, 0)
    return bytes(out)


def encode_value_into(obj, out, depth=0):
    """Encode one value into a caller-owned (reusable) bytearray.

    The hot-path variant of :func:`encode_value`: the transport keeps one
    scratch buffer per socket and clears it between frames, so steady-state
    encoding allocates no fresh ``bytearray`` per frame.
    """
    _encode(obj, out, depth)


def encode_message_prefix(msg):
    """The destination-independent leading bytes of one encoded Message.

    ``clone_for`` fan-out siblings share every wire field except the
    trailing ``(dest, msg_id)`` pair (:meth:`Message.wire_shared_fields`),
    so a broadcast to n-1 receivers can serialize this prefix once and
    append only the per-destination tail.  The output is the exact byte
    prefix :func:`encode_value` would produce for the whole message.
    """
    out = bytearray()
    out.append(_T_MESSAGE)
    for field in msg.wire_shared_fields():
        _encode(field, out, 1)
    return bytes(out)


def encode_message_tail_into(msg, out):
    """Append the per-destination tail fields after a shared prefix."""
    for field in msg.wire_tail_fields():
        _encode(field, out, 1)


def frame_prefix(frame_type, src):
    """``MAGIC VERSION FRAMETYPE src`` -- everything before the length.

    Constant per (frame type, source), so a transport precomputes one per
    frame type and assembles each outgoing datagram as
    ``prefix + u32(len(body)) + body`` (or ``prefix + u32(count) + subframes``
    for :data:`FRAME_BATCH`) without re-encoding its own node id.
    """
    out = bytearray(MAGIC)
    out.append(WIRE_VERSION)
    out.append(frame_type)
    _encode(src, out, 0)
    return bytes(out)


def encode_subframe_into(frame_type, body, out):
    """Append one batch sub-frame (``SUBTYPE BODYLEN body``) to ``out``."""
    if frame_type not in _FRAME_TYPES:
        raise WireError("unknown sub-frame type %r" % (frame_type,))
    out.append(frame_type)
    out += _pack_u32(len(body))
    out += body


def encode_batch(src, subframes):
    """One batch datagram from ``[(frame_type, payload), ...]``.

    The transport assembles batches incrementally from already-encoded
    bodies; this convenience encoder (tests, tooling) takes raw payloads.
    """
    out = bytearray(frame_prefix(FRAME_BATCH, src))
    out += _pack_u32(len(subframes))
    for frame_type, payload in subframes:
        encode_subframe_into(frame_type, encode_value(payload), out)
    return bytes(out)


def _encode(obj, out, depth):
    if depth > _MAX_DEPTH:
        raise WireError("value nesting exceeds depth %d" % _MAX_DEPTH)
    if obj is None:
        out.append(_T_NONE)
    elif obj is True:
        out.append(_T_TRUE)
    elif obj is False:
        out.append(_T_FALSE)
    elif type(obj) is int:
        if _INT64_MIN <= obj <= _INT64_MAX:
            out.append(_T_INT64)
            out += _pack_i64(obj)
        else:
            raw = obj.to_bytes((obj.bit_length() + 8) // 8, "big", signed=True)
            out.append(_T_BIGINT)
            out += _pack_u32(len(raw))
            out += raw
    elif type(obj) is float:
        out.append(_T_FLOAT)
        out += _pack_f64(obj)
    elif type(obj) is str:
        raw = obj.encode("utf-8")
        out.append(_T_STR)
        out += _pack_u32(len(raw))
        out += raw
    elif type(obj) is bytes:
        out.append(_T_BYTES)
        out += _pack_u32(len(obj))
        out += obj
    elif type(obj) is tuple:
        out.append(_T_TUPLE)
        out += _pack_u32(len(obj))
        for item in obj:
            _encode(item, out, depth + 1)
    elif type(obj) is list:
        out.append(_T_LIST)
        out += _pack_u32(len(obj))
        for item in obj:
            _encode(item, out, depth + 1)
    elif type(obj) is dict:
        out.append(_T_DICT)
        out += _pack_u32(len(obj))
        for key, value in obj.items():
            _encode(key, out, depth + 1)
            _encode(value, out, depth + 1)
    elif type(obj) in (set, frozenset):
        out.append(_T_SET if type(obj) is set else _T_FROZENSET)
        # repr-sorted for a canonical encoding (sets have no order)
        items = sorted(obj, key=repr)
        out += _pack_u32(len(items))
        for item in items:
            _encode(item, out, depth + 1)
    else:
        # late imports keep this module loadable without the core package
        # in codec-only tooling, and avoid an import cycle with message.py
        from repro.core.message import Message
        from repro.core.view import ViewId
        if type(obj) is ViewId:
            out.append(_T_VIEWID)
            _encode(obj.counter, out, depth + 1)
            _encode(obj.creator, out, depth + 1)
        elif type(obj) is Message:
            out.append(_T_MESSAGE)
            for field in obj.wire_fields():
                _encode(field, out, depth + 1)
        else:
            raise WireError("unencodable value of type %s: %r"
                            % (type(obj).__name__, obj))


def encode_frame(frame_type, src, payload):
    """One complete datagram: header + source + length-prefixed body."""
    if frame_type not in _FRAME_TYPES:
        raise WireError("unknown frame type %r" % (frame_type,))
    body = encode_value(payload)
    out = bytearray(MAGIC)
    out.append(WIRE_VERSION)
    out.append(frame_type)
    _encode(src, out, 0)
    out += _pack_u32(len(body))
    out += body
    return bytes(out)


# ----------------------------------------------------------------------
# decoding
# ----------------------------------------------------------------------
def _as_buffer(data):
    """Normalize decoder input: one flat buffer, no payload copy.

    With :data:`ZERO_COPY` on, anything buffer-like becomes a
    ``memoryview`` (free for ``bytes``/``bytearray``; an incoming view
    passes through).  With the switch off, the reference decoder runs on
    a plain ``bytes`` copy, so every slice below is a copy too.
    """
    if ZERO_COPY:
        if type(data) is memoryview:
            return data
        return memoryview(data)
    if type(data) is bytes:
        return data
    return bytes(data)


def decode_value(data):
    """Decode one value from ``data``; the whole buffer must be consumed."""
    data = _as_buffer(data)
    value, offset = _decode(data, 0, 0)
    if offset != len(data):
        raise WireError("trailing garbage after value (%d of %d bytes)"
                        % (offset, len(data)))
    return value


def _message_field_count(version):
    """How many fields a Message struct carries in ``version`` frames.

    v3 appended the multi-group ``group`` envelope; v1/v2 structs decode
    with ``group`` defaulting to None (from_wire_fields upgrades them),
    so a mixed-version cluster drains in-flight traffic across an
    upgrade exactly as the v1→v2 transition did.
    """
    from repro.core.message import Message
    if version >= 3:
        return Message.WIRE_FIELD_COUNT
    return Message.WIRE_FIELD_COUNT_V2


def _need(data, offset, nbytes):
    if offset + nbytes > len(data):
        raise WireError("truncated: need %d bytes at offset %d, have %d"
                        % (nbytes, offset, len(data) - offset))


def _count(data, offset, minimum_item_bytes=1):
    """Read a u32 collection count, bounded by the bytes remaining."""
    _need(data, offset, 4)
    count = _unpack_u32(data, offset)[0]
    offset += 4
    if count * minimum_item_bytes > len(data) - offset:
        raise WireError("count %d exceeds remaining %d bytes"
                        % (count, len(data) - offset))
    return count, offset


def _decode(data, offset, depth, msg_fields=None):
    if depth > _MAX_DEPTH:
        raise WireError("value nesting exceeds depth %d" % _MAX_DEPTH)
    _need(data, offset, 1)
    tag = data[offset]
    offset += 1
    if tag == _T_NONE:
        return None, offset
    if tag == _T_TRUE:
        return True, offset
    if tag == _T_FALSE:
        return False, offset
    if tag == _T_INT64:
        _need(data, offset, 8)
        return _unpack_i64(data, offset)[0], offset + 8
    if tag == _T_BIGINT:
        length, offset = _count(data, offset)
        _need(data, offset, length)
        raw = data[offset:offset + length]
        return int.from_bytes(raw, "big", signed=True), offset + length
    if tag == _T_FLOAT:
        _need(data, offset, 8)
        return _unpack_f64(data, offset)[0], offset + 8
    if tag == _T_STR:
        length, offset = _count(data, offset)
        _need(data, offset, length)
        # str() decodes straight out of the (view) slice; the only copy
        # is the str object itself, which escapes anyway
        try:
            return (str(data[offset:offset + length], "utf-8"),
                    offset + length)
        except UnicodeDecodeError as err:
            raise WireError("invalid utf-8 in string: %s" % err)
    if tag == _T_BYTES:
        length, offset = _count(data, offset)
        _need(data, offset, length)
        return bytes(data[offset:offset + length]), offset + length
    if tag in (_T_TUPLE, _T_LIST, _T_SET, _T_FROZENSET):
        count, offset = _count(data, offset)
        items = []
        for _ in range(count):
            item, offset = _decode(data, offset, depth + 1, msg_fields)
            items.append(item)
        if tag == _T_TUPLE:
            return tuple(items), offset
        if tag == _T_LIST:
            return items, offset
        try:
            built = set(items) if tag == _T_SET else frozenset(items)
        except TypeError:
            raise WireError("unhashable set element")
        return built, offset
    if tag == _T_DICT:
        count, offset = _count(data, offset, minimum_item_bytes=2)
        table = {}
        for _ in range(count):
            key, offset = _decode(data, offset, depth + 1, msg_fields)
            value, offset = _decode(data, offset, depth + 1, msg_fields)
            try:
                table[key] = value
            except TypeError:
                raise WireError("unhashable dict key")
        return table, offset
    if tag == _T_VIEWID:
        from repro.core.view import ViewId
        counter, offset = _decode(data, offset, depth + 1, msg_fields)
        creator, offset = _decode(data, offset, depth + 1, msg_fields)
        if not isinstance(counter, int) or isinstance(counter, bool):
            raise WireError("view-id counter is not an int: %r" % (counter,))
        return ViewId(counter, creator), offset
    if tag == _T_MESSAGE:
        from repro.core.message import Message
        fields = []
        for _ in range(msg_fields if msg_fields is not None
                       else Message.WIRE_FIELD_COUNT):
            field, offset = _decode(data, offset, depth + 1, msg_fields)
            fields.append(field)
        try:
            return Message.from_wire_fields(fields), offset
        except (ValueError, TypeError) as err:
            raise WireError("malformed message struct: %s" % err)
    raise WireError("unknown value tag 0x%02x at offset %d"
                    % (tag, offset - 1))


def decode_frame(data):
    """``(frame_type, src, payload)`` of one datagram, or :class:`WireError`.

    Never raises anything but :class:`WireError` on arbitrary input; when
    the source field decoded before the failure it travels on
    ``err.src`` so the receiver can attribute the corruption.
    """
    src = None
    data = _as_buffer(data)
    try:
        _need(data, 0, 4)
        # memoryview compares content against bytes directly -- no
        # 2-byte copy per datagram just to check the magic
        if data[:2] != MAGIC:
            raise WireError("bad magic %r" % (bytes(data[:2]),))
        if data[2] not in DECODABLE_VERSIONS:
            raise WireError("unsupported wire version %d" % data[2])
        msg_fields = _message_field_count(data[2])
        frame_type = data[3]
        if frame_type not in _FRAME_TYPES:
            raise WireError("unknown frame type %d" % frame_type)
        src, offset = _decode(data, 4, 0)
        _need(data, offset, 4)
        body_len = _unpack_u32(data, offset)[0]
        offset += 4
        if body_len != len(data) - offset:
            raise WireError("body length %d does not match remaining %d "
                            "bytes" % (body_len, len(data) - offset), src=src)
        payload, offset = _decode(data, offset, 0, msg_fields)
        if offset != len(data):
            raise WireError("trailing garbage after frame body", src=src)
        return frame_type, src, payload
    except WireError as err:
        if err.src is None:
            err.src = src
        raise
    except Exception as err:   # struct errors, recursion, anything exotic
        raise WireError("undecodable datagram: %s" % err, src=src)


def decode_datagram(data):
    """Total, batch-aware decode of one received UDP datagram.

    Returns ``(frames, errors)`` where ``frames`` is ``[(frame_type, src,
    payload), ...]`` in wire order and ``errors`` is a list of
    :class:`WireError` (one per undecodable frame or sub-frame, each
    carrying ``err.src`` when the source survived).  Never raises: a
    plain frame yields one entry on exactly one of the two lists; inside
    a batch, a corrupt sub-frame *body* lands on ``errors`` while its
    siblings -- located through the per-sub-frame length prefix -- still
    decode.  Damage to the batch header or to sub-frame framing itself
    drops the remainder of the datagram with a single error, the same
    blast radius a v1 frame had.
    """
    data = _as_buffer(data)
    if len(data) < 4 or data[:2] != MAGIC or data[3] != FRAME_BATCH:
        try:
            return [decode_frame(data)], []
        except WireError as err:
            return [], [err]
    frames, errors = [], []
    src = None
    try:
        if data[2] not in _BATCH_VERSIONS:   # batches exist only from v2 on
            raise WireError("unsupported batch wire version %d" % data[2])
        msg_fields = _message_field_count(data[2])
        src, offset = _decode(data, 4, 0)
        count, offset = _count(data, offset,
                               minimum_item_bytes=SUBFRAME_OVERHEAD + 1)
    except WireError as err:
        if err.src is None:
            err.src = src
        return frames, [err]
    except Exception as err:
        return frames, [WireError("undecodable batch header: %s" % err,
                                  src=src)]
    for _ in range(count):
        try:
            _need(data, offset, SUBFRAME_OVERHEAD)
            sub_type = data[offset]
            if sub_type not in _FRAME_TYPES:
                raise WireError("unknown sub-frame type %d" % sub_type,
                                src=src)
            body_len = _unpack_u32(data, offset + 1)[0]
            offset += SUBFRAME_OVERHEAD
            _need(data, offset, body_len)
        except WireError as err:
            # framing damage: the resynchronization point itself is gone
            if err.src is None:
                err.src = src
            errors.append(err)
            return frames, errors
        end = offset + body_len
        try:
            if ZERO_COPY:
                # decode in place against the sub-frame's end offset: no
                # per-sub-frame body copy.  A body that would have failed
                # "truncated" in isolation instead decodes past ``end``
                # and fails the stop check -- same per-sub-frame verdict,
                # different error string; allocation stays bounded by the
                # datagram size either way.
                payload, stop = _decode(data, offset, 0, msg_fields)
                if stop != end:
                    raise WireError("sub-frame body length mismatch",
                                    src=src)
            else:
                body = bytes(data[offset:end])
                payload, stop = _decode(body, 0, 0, msg_fields)
                if stop != len(body):
                    raise WireError("trailing garbage in sub-frame",
                                    src=src)
            frames.append((sub_type, src, payload))
        except WireError as err:
            if err.src is None:
                err.src = src
            errors.append(err)
        except Exception as err:
            errors.append(WireError("undecodable sub-frame: %s" % err,
                                    src=src))
        offset = end              # resync to the next length-prefixed frame
    if offset != len(data):
        errors.append(WireError("trailing garbage after batch", src=src))
    return frames, errors
