"""Live resharding on the asyncio UDP backend.

The sim plane runs migrations through :class:`~repro.shard.manager
.ShardManager`; this module is the net-backend counterpart.  Every node
is a full :class:`~repro.runtime.backend_asyncio.AsyncioRuntime` -- its
own UDP socket, its own wall clock, the unmodified layer stack -- all
sharing one event loop, with each shard an established group scoped by
``group_id`` over the shared localhost bus and a
:class:`~repro.shard.rsm.ShardReplica` bound to every endpoint.

The migration itself is THE SAME state machine as on the simulator: the
plane exposes the manager-shaped surface
:class:`~repro.shard.reshard.ReshardCoordinator` reads (``.sim`` with
``now``, ``.directory``, ``.groups``, plus the replica map), and
:func:`run_net_migration` drives ``poll()`` from a coroutine instead of
between simulator slices.  Nothing in the epoch seam -- sealing,
install idempotency, fencing, retirement -- is reimplemented for real
time; that is the point of building reconfiguration out of ordinary
totally-ordered commands.

:func:`run_reshard_conformance` is the packaged scenario the net-marked
test and ``python -m repro reshard --net`` both run: boot a plane, seed
keys, migrate while a fenced client keeps writing, then assert key
conservation and exactly-once application -- the same oracle the sim
campaign uses.
"""

from __future__ import annotations

import asyncio
import time

from repro.core.config import StackConfig
from repro.core.endpoint import GroupEndpoint
from repro.runtime.backend_asyncio import AsyncioRuntime, net_profile
from repro.runtime.clock import AsyncioClock
from repro.shard.directory import ShardDirectory
from repro.shard.reshard import ReshardCoordinator
from repro.shard.rsm import ShardReplica

#: how often coroutines yield to the loop while watching replica state
POLL_INTERVAL = 0.01


class NetShardPlane:
    """A multi-shard plane on the asyncio backend, one OS process.

    Hosting every node in one process (rather than one process per node
    like the conformance driver) keeps the directory and the replica
    map observable from the coordinator without inventing a control
    protocol -- exactly the trust model of the sim plane, where the
    coordinator is a client with visibility into replica state.  The
    datagrams are still real: one UDP socket per node, every cast on
    the wire.
    """

    def __init__(self, clock, directory, groups, replicas, runtimes,
                 processes, config):
        self.sim = clock               # manager-shaped: .now for pacing
        self.directory = directory
        self.groups = groups           # {shard: (node_id, ...)}
        self.replicas = replicas       # {shard: {node_id: ShardReplica}}
        self.runtimes = runtimes       # {node_id: AsyncioRuntime}
        self.processes = processes     # {node_id: GroupProcess}
        self.config = config
        self.shard_of = {node: shard
                         for shard, nodes in groups.items()
                         for node in nodes}

    # ------------------------------------------------------------------
    def route(self, key, epoch=None):
        return self.directory.route(key, epoch)

    def live_replica(self, shard):
        for node_id in sorted(self.replicas[shard]):
            replica = self.replicas[shard][node_id]
            if not replica.endpoint.process.stopped:
                return replica
        return None

    def machines(self, shard):
        return [replica.machine
                for node_id, replica in sorted(self.replicas[shard].items())
                if not replica.endpoint.process.stopped]

    def shard_digests(self, shard):
        return {node_id: replica.state_digest()
                for node_id, replica in self.replicas[shard].items()
                if not replica.endpoint.process.stopped}

    async def until(self, predicate, timeout=5.0):
        """Await ``predicate()`` under a wall deadline; True on success."""
        deadline = self.sim.now + timeout
        while self.sim.now < deadline:
            if predicate():
                return True
            await asyncio.sleep(POLL_INTERVAL)
        return bool(predicate())

    async def views_formed(self, timeout=10.0):
        """Every shard's members agree on the full per-shard view."""
        def formed():
            return all(
                process.view.n == len(self.groups[self.shard_of[node]])
                for node, process in self.processes.items()
                if not process.stopped)
        return await self.until(formed, timeout=timeout)

    def stop(self):
        for process in self.processes.values():
            if not process.stopped:
                process.stop()
        for runtime in self.runtimes.values():
            runtime.close()


async def boot_plane(shards, nodes_per_shard, ring_shards=None, seed=0,
                     config=None, host="127.0.0.1"):
    """Boot ``shards`` established groups over real localhost UDP."""
    from repro.runtime.driver import free_udp_ports
    base = config or StackConfig.byz(total_order=True, crypto="none")
    if not base.total_order:
        raise ValueError("the sharded service requires total_order=True")
    cfg = net_profile(base)
    if ring_shards is None:
        ring_shards = shards
    n_total = shards * nodes_per_shard
    ports = free_udp_ports(n_total, host=host)
    addresses = {node: (host, ports[node]) for node in range(n_total)}
    loop = asyncio.get_event_loop()
    clock = AsyncioClock(loop=loop, seed=seed)   # the plane's own clock:
    # node clocks are per-process (closed by GroupProcess.stop), and the
    # coordinator's pacing reads must survive any node's teardown
    directory = ShardDirectory(ring_shards,
                               ring_slots=cfg.shard.ring_slots,
                               epoch=cfg.shard.epoch)
    groups, replicas, runtimes, processes = {}, {}, {}, {}
    for shard in range(shards):
        node_ids = tuple(range(shard * nodes_per_shard,
                               (shard + 1) * nodes_per_shard))
        groups[shard] = node_ids
        replicas[shard] = {}
        for node in node_ids:
            runtime = AsyncioRuntime(node, addresses, seed=seed + node,
                                     loop=loop)
            await runtime.open()
            initial = runtime.initial_view(node_ids, established=True)
            process = runtime.spawn_process(cfg, initial_view=initial,
                                            group_id=shard)
            endpoint = GroupEndpoint(process)
            replicas[shard][node] = ShardReplica(endpoint,
                                                 epoch=directory.epoch)
            runtimes[node] = runtime
            processes[node] = process
    for process in processes.values():
        process.start()
    return NetShardPlane(clock, directory, groups, replicas, runtimes,
                         processes, cfg)


# ----------------------------------------------------------------------
# the migration, driven from a coroutine
# ----------------------------------------------------------------------
async def run_net_migration(plane, shards=None, ring_slots=None,
                            phase_timeout=1.0, timeout=30.0):
    """Run one epoch migration on the net plane; returns the coordinator.

    Identical protocol to the simulator path -- same
    :class:`ReshardCoordinator`, same ordered commands -- only the
    pacing loop awaits the event loop instead of running sim slices.
    """
    coordinator = ReshardCoordinator(plane, plane.replicas,
                                     phase_timeout=phase_timeout)
    coordinator.start(shards=shards, ring_slots=ring_slots)
    deadline = plane.sim.now + timeout
    while coordinator.state == "migrating" and plane.sim.now < deadline:
        await asyncio.sleep(POLL_INTERVAL * 5)
        coordinator.poll()
    return coordinator


class NetShardClient:
    """The re-route-and-retry client, asyncio flavour.

    Same rules as :class:`~repro.shard.rsm.ShardClient`: stamp the
    cached epoch into every op envelope, observe the verdict through
    replica state, refresh-and-re-route on ``stale``/``moved``, resubmit
    the SAME op id on ``early``/``wait`` or timeout.
    """

    def __init__(self, plane, name="net-client", timeout=3.0, attempts=40):
        self.plane = plane
        self.name = name
        self.timeout = timeout
        self.attempts = attempts
        self.epoch = plane.directory.epoch
        self._seq = 0
        self.retries = 0
        self.fences = {"stale": 0, "early": 0, "wait": 0, "moved": 0}

    def refresh(self):
        self.epoch = self.plane.directory.epoch
        return self.epoch

    async def op(self, key, sub, op_id=None):
        if op_id is None:
            self._seq += 1
            op_id = (self.name, self._seq)
        attempt = 0
        for _try in range(self.attempts):
            attempt += 1
            if not self.plane.directory.has_epoch(self.epoch):
                self.refresh()
            epoch = self.epoch
            shard = self.plane.route(key, epoch)
            replica = self.plane.live_replica(shard)
            if replica is None:
                await asyncio.sleep(0.1)
                continue
            token = (op_id, attempt)
            replica.submit(("op", op_id, attempt, epoch, key, sub))
            seen = await self.plane.until(
                lambda: self._outcome(shard, op_id, token) is not None,
                timeout=self.timeout)
            if not seen:
                self.retries += 1
                continue
            reason, payload = self._outcome(shard, op_id, token)
            if reason == "ok":
                return ("ok", payload)
            self.fences[reason] = self.fences.get(reason, 0) + 1
            if reason in ("stale", "moved"):
                self.refresh()
            else:
                await asyncio.sleep(0.05)
        return ("failed", None)

    def _outcome(self, shard, op_id, token):
        for machine in self.plane.machines(shard):
            record = machine.op_results.get(op_id)
            if record is not None:
                return ("ok", record[1])
            fence = machine.fence_log.get(token)
            if fence is not None:
                return fence
        return None

    async def set(self, key, value, **kw):
        return await self.op(key, ("set", key, value), **kw)

    async def incr(self, key, delta=1, **kw):
        return await self.op(key, ("incr", key, delta), **kw)


def key_conservation(plane, expected):
    """The campaign's conservation oracle on the net plane: every key on
    exactly one shard, the ring's owner, at its expected value, with no
    outbox residue."""
    violations = []
    locations = {}
    for shard in sorted(plane.groups):
        machines = plane.machines(shard)
        if not machines:
            violations.append("shard %d has no live replica" % shard)
            continue
        machine = machines[0]
        for token, sealed in machine.outbox.items():
            violations.append("shard %d outbox residue %r (%d keys)"
                              % (shard, token, len(sealed[1])))
        for key in machine.data:
            locations.setdefault(key, []).append(shard)
    for key, value in sorted(expected.items(), key=repr):
        homes = locations.get(key, [])
        if not homes:
            violations.append("key %r lost (on no shard)" % (key,))
            continue
        if len(homes) > 1:
            violations.append("key %r duplicated on shards %r" % (key, homes))
            continue
        owner = plane.route(key)
        if homes[0] != owner:
            violations.append("key %r on shard %d, ring owns it to %d"
                              % (key, homes[0], owner))
        found = plane.machines(homes[0])[0].data.get(key)
        if found != value:
            violations.append("key %r value %r != expected %r"
                              % (key, found, value))
    return violations


# ----------------------------------------------------------------------
# the packaged conformance scenario
# ----------------------------------------------------------------------
async def _conformance(shards, nodes_per_shard, ring_shards, keys, rounds,
                       seed, wall_timeout):
    plane = await boot_plane(shards, nodes_per_shard,
                             ring_shards=ring_shards, seed=seed)
    try:
        formed = await plane.views_formed(timeout=wall_timeout / 2.0)
        if not formed:
            return {"ok": False,
                    "violations": ["shard views never formed"],
                    "migration": None, "fences": {}, "elapsed": None}
        client = NetShardClient(plane, name="conf-%d" % seed)
        key_names = ["net:%d" % i for i in range(keys)]
        expected = {}
        for key in key_names:
            status, _res = await client.set(key, 0)
            if status != "ok":
                return {"ok": False,
                        "violations": ["seed write %r failed" % key],
                        "migration": None, "fences": dict(client.fences),
                        "elapsed": None}
            expected[key] = 0

        # the migration and the write workload run CONCURRENTLY on the
        # loop: increments race the epoch seam exactly as in the sim test
        async def workload():
            for round_no in range(rounds):
                for key in key_names:
                    op_id = ("net-inc", seed, key, round_no)
                    status, _res = await client.incr(key, op_id=op_id)
                    if status != "ok":
                        return ["op %r failed" % (op_id,)]
                    expected[key] += 1
            return []

        migration, op_failures = await asyncio.gather(
            run_net_migration(plane, shards=shards, timeout=wall_timeout),
            workload())
        violations = list(op_failures)
        if migration.state != "done":
            violations.append("migration stuck in %r" % migration.state)
        if len(plane.directory.epochs()) != 1:
            violations.append("stale epochs not retired: %r"
                              % (plane.directory.epochs(),))
        violations += key_conservation(plane, expected)
        # replicas of every shard converge on one digest, epoch included
        for shard in sorted(plane.groups):
            converged = await plane.until(
                lambda shard=shard: len(set(
                    plane.shard_digests(shard).values())) == 1,
                timeout=5.0)
            if not converged:
                violations.append("shard %d digests diverge: %r"
                                  % (shard, plane.shard_digests(shard)))
        metrics = migration.migration_metrics()
        return {"ok": not violations, "violations": violations,
                "migration": metrics, "fences": dict(client.fences),
                "resubmits": migration.resubmits}
    finally:
        plane.stop()


def run_reshard_conformance(shards=2, nodes_per_shard=3, ring_shards=1,
                            keys=12, rounds=2, seed=0, wall_timeout=30.0):
    """Boot a real-UDP plane, migrate under concurrent writes, check the
    conservation + exactly-once oracle.  Returns a report dict with
    ``ok``/``violations``/``migration``/``fences``/``elapsed``."""
    from repro.runtime.backend_asyncio import install_uvloop
    install_uvloop()
    started = time.monotonic()
    loop = asyncio.new_event_loop()
    asyncio.set_event_loop(loop)
    try:
        report = loop.run_until_complete(_conformance(
            shards, nodes_per_shard, ring_shards, keys, rounds, seed,
            wall_timeout))
    finally:
        loop.close()
    report["elapsed"] = time.monotonic() - started
    report["backend"] = "net"
    report["seed"] = seed
    return report
