"""Multi-group sharded service plane (ROADMAP item 1).

The paper's single-group protocol pays O(n^2) per broadcast and hits a
throughput wall near n=50 (PAPER.md Fig. 5).  Scaling to "millions of
users" therefore means running *many small groups* -- each with the
small-quorum efficiency the protocol was measured at -- behind a routing
layer, not one big group.  This package is that plane:

* :class:`~repro.shard.directory.ShardDirectory` -- static-epoch
  consistent-hash table mapping keys to shards;
* :class:`~repro.shard.manager.ShardManager` -- N independent groups
  over ONE shared runtime (clock, network, pairwise-key cache,
  observability plane), each group tagged with its shard id at the
  bottom layer so one transport multiplexes them all;
* :class:`~repro.shard.cluster.Cluster` -- the documented front door
  (``Cluster.create(runtime=..., shards=..., config=...)``);
* :mod:`~repro.shard.rsm` -- the sharded replicated KV store with
  idempotent two-phase cross-shard transfers.
"""

from repro.shard.cluster import Cluster
from repro.shard.directory import HashRing, ShardDirectory
from repro.shard.manager import ShardManager
from repro.shard.rsm import (
    ShardedKVStore,
    ShardedRSM,
    ShardReplica,
    TransferCoordinator,
)

__all__ = [
    "Cluster",
    "HashRing",
    "ShardDirectory",
    "ShardManager",
    "ShardReplica",
    "ShardedKVStore",
    "ShardedRSM",
    "TransferCoordinator",
]
