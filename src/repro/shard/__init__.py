"""Multi-group sharded service plane (ROADMAP item 1).

The paper's single-group protocol pays O(n^2) per broadcast and hits a
throughput wall near n=50 (PAPER.md Fig. 5).  Scaling to "millions of
users" therefore means running *many small groups* -- each with the
small-quorum efficiency the protocol was measured at -- behind a routing
layer, not one big group.  This package is that plane:

* :class:`~repro.shard.directory.ShardDirectory` -- epoch-versioned
  consistent-hash table mapping keys to shards, with
  :func:`~repro.shard.directory.ring_diff` computing exactly which key
  arcs move between two tables;
* :class:`~repro.shard.manager.ShardManager` -- N independent groups
  over ONE shared runtime (clock, network, pairwise-key cache,
  observability plane), each group tagged with its shard id at the
  bottom layer so one transport multiplexes them all;
* :class:`~repro.shard.cluster.Cluster` -- the documented front door
  (``Cluster.create(runtime=..., shards=..., config=...)``), including
  live resharding via ``Cluster.reshard(...)``;
* :mod:`~repro.shard.rsm` -- the sharded replicated KV store with
  idempotent two-phase cross-shard transfers, epoch fencing, and the
  re-route-and-retry :class:`~repro.shard.rsm.ShardClient`;
* :class:`~repro.shard.reshard.ReshardCoordinator` -- live migration of
  key ownership between epochs, built on totally-ordered commands;
* :mod:`~repro.shard.chaos` -- the sharded chaos driver (fault plans
  with mid-run ``reshard_at``, key-conservation checking).
"""

from repro.shard.cluster import Cluster
from repro.shard.directory import (
    HashRing,
    ShardDirectory,
    arc_contains,
    hash_key,
    ring_diff,
)
from repro.shard.manager import ShardManager
from repro.shard.reshard import ReshardCoordinator
from repro.shard.rsm import (
    ShardClient,
    ShardedKVStore,
    ShardedRSM,
    ShardReplica,
    TransferCoordinator,
)

__all__ = [
    "Cluster",
    "HashRing",
    "ReshardCoordinator",
    "ShardClient",
    "ShardDirectory",
    "ShardManager",
    "ShardReplica",
    "ShardedKVStore",
    "ShardedRSM",
    "TransferCoordinator",
    "arc_contains",
    "hash_key",
    "ring_diff",
]
