"""Cluster: the documented front door of the package.

``Cluster.create(runtime=..., shards=..., config=...)`` is the one entry
point the docs teach: it covers the classic single-group experiment
(``shards=1``, the exact seed-pinned histories ``Group.bootstrap`` always
produced) and the multi-group service plane (``shards=N`` over one shared
runtime) with the same surface.  ``Group.bootstrap`` remains supported as
the one-shard special case; direct ``Group(...)`` construction is
deprecated.
"""

from __future__ import annotations

from repro.core.config import StackConfig
from repro.shard.manager import ShardManager
from repro.shard.reshard import ReshardCoordinator
from repro.shard.rsm import ShardedRSM


class Cluster:
    """A sharded (or single-group) cluster behind one facade."""

    def __init__(self, manager):
        self.manager = manager
        self._rsm = None

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, runtime=None, shards=None, config=None, seed=0,
               nodes_per_shard=None, topology_cls=None, net_config=None,
               established=True, start=True, behaviors=None, overrides=None,
               ring_shards=None):
        """Build a cluster.

        ``shards``/``nodes_per_shard`` default from ``config.shard``;
        ``runtime`` lets several planes (or a caller-owned experiment)
        share one :class:`~repro.runtime.interface.SimRuntime`.  All
        other parameters mean what they mean on ``Group.bootstrap``,
        with ``behaviors`` keyed by global node id.  ``ring_shards``
        puts only the first K groups on the initial hash ring, keeping
        the rest as spare capacity for a live :meth:`reshard`.
        """
        manager = ShardManager.create(
            shards=shards, nodes_per_shard=nodes_per_shard, config=config
            or StackConfig.byz(), seed=seed, runtime=runtime,
            topology_cls=topology_cls, net_config=net_config,
            established=established, start=start, behaviors=behaviors,
            overrides=overrides, ring_shards=ring_shards)
        return cls(manager)

    # ------------------------------------------------------------------
    # surface delegated to the manager
    # ------------------------------------------------------------------
    @property
    def shards(self):
        return len(self.manager.groups)

    @property
    def directory(self):
        return self.manager.directory

    @property
    def config(self):
        return self.manager.config

    @property
    def metrics(self):
        return self.manager.metrics

    @property
    def sim(self):
        return self.manager.sim

    @property
    def group(self):
        """The single group of a ``shards=1`` cluster (the classic
        experiment object, with ``endpoints``, ``crash``, ...)."""
        if len(self.manager.groups) != 1:
            raise ValueError("cluster has %d shards; use .shard_group(s)"
                             % len(self.manager.groups))
        return next(iter(self.manager.groups.values()))

    def shard_group(self, shard):
        return self.manager.group(shard)

    def endpoint(self, shard, node_id):
        return self.manager.endpoint(shard, node_id)

    def route(self, key):
        return self.manager.route(key)

    def run(self, duration, max_events=None):
        return self.manager.run(duration, max_events=max_events)

    def run_until(self, predicate, timeout=5.0, max_events=None):
        return self.manager.run_until(predicate, timeout,
                                      max_events=max_events)

    def run_until_stable_views(self, timeout=5.0):
        return self.manager.run_until_stable_views(timeout)

    def stop(self):
        self.manager.stop()

    def stop_shard(self, shard):
        self.manager.stop_shard(shard)

    # ------------------------------------------------------------------
    # the replicated service on top
    # ------------------------------------------------------------------
    def sharded_rsm(self, phase_timeout=3.0):
        """Attach a :class:`ShardedRSM` (requires ``total_order=True``).

        Memoized: a cluster runs ONE service (replicas own the endpoint
        callbacks), and resharding must move the same replicas clients
        talk to -- ``phase_timeout`` only takes effect on the first call.
        """
        if self._rsm is None:
            self._rsm = ShardedRSM(self.manager,
                                   phase_timeout=phase_timeout)
        return self._rsm

    def resharder(self, phase_timeout=3.0):
        """A non-blocking :class:`ReshardCoordinator` over this cluster's
        service (the chaos planes drive its ``start``/``poll`` directly
        so faults interleave mid-migration)."""
        return ReshardCoordinator(self.manager, self.sharded_rsm().replicas,
                                  phase_timeout=phase_timeout)

    def reshard(self, shards=None, ring_slots=None, timeout=60.0,
                phase_timeout=3.0):
        """Live-reshard to a new ring; blocks until the migration is done.

        Installs epoch ``e+1`` over ``shards`` groups (and/or a new
        ``ring_slots``), streams every moved key range between shard
        groups as totally-ordered commands, fences + re-routes client
        operations meanwhile, and retires epoch ``e`` once every range
        is acked.  Returns the coordinator (``.state == "done"`` on
        success; on timeout the migration stays resumable via
        ``coordinator.run()``).
        """
        coordinator = self.resharder(phase_timeout=phase_timeout)
        coordinator.start(shards=shards, ring_slots=ring_slots)
        coordinator.run(timeout=timeout)
        return coordinator

    def __repr__(self):
        return "Cluster(shards={}, nodes={})".format(
            self.shards, len(self.manager.shard_of))
