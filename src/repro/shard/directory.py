"""Key -> shard routing: a consistent-hash ring with a static epoch table.

Routing must be a pure function of ``(key, epoch)`` -- every client, test,
and benchmark computes the same shard for the same key with no
coordination, which is what makes the directory safe to replicate freely.
The ring hashes each shard onto ``ring_slots`` virtual points (SHA-256,
platform-independent -- ``hash()`` is salted per process and would break
cross-run determinism); a key routes to the owner of the first point at or
after its own hash, wrapping around.

Epochs version the table: resharding installs a new ring under
``epoch + 1`` while the old one stays queryable, so in-flight operations
stamped with the epoch they were routed under can be detected as stale
instead of silently landing on the wrong shard.  This reproduction ships
static epochs only (the table never changes mid-run); the fencing hook is
the seam a dynamic-resharding follow-up would drive.
"""

from __future__ import annotations

import bisect
import hashlib


def _point(label):
    """A 64-bit ring coordinate from a stable string label."""
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """One immutable consistent-hash ring over ``shards`` groups."""

    __slots__ = ("shards", "ring_slots", "_points", "_owners")

    def __init__(self, shards, ring_slots=64):
        if shards < 1:
            raise ValueError("a ring needs at least one shard")
        if ring_slots < 1:
            raise ValueError("a shard needs at least one ring slot")
        self.shards = shards
        self.ring_slots = ring_slots
        pairs = sorted(
            (_point("shard:%d:slot:%d" % (shard, slot)), shard)
            for shard in range(shards)
            for slot in range(ring_slots))
        self._points = [point for point, _shard in pairs]
        self._owners = [shard for _point, shard in pairs]

    def shard_for(self, key):
        """The shard owning ``key`` (any repr-stable value)."""
        where = _point("key:%r" % (key,))
        index = bisect.bisect_right(self._points, where) % len(self._points)
        return self._owners[index]

    def spread(self, keys):
        """``{shard: count}`` of how ``keys`` distribute (test/diagnostic)."""
        counts = {}
        for key in keys:
            shard = self.shard_for(key)
            counts[shard] = counts.get(shard, 0) + 1
        return counts

    def __repr__(self):
        return "HashRing(shards={}, ring_slots={})".format(
            self.shards, self.ring_slots)


class ShardDirectory:
    """The routing table: ``epoch -> HashRing``, one current epoch."""

    def __init__(self, shards, ring_slots=64, epoch=0):
        self.epoch = epoch
        self._rings = {epoch: HashRing(shards, ring_slots)}

    @property
    def shards(self):
        return self._rings[self.epoch].shards

    def ring(self, epoch=None):
        return self._rings[self.epoch if epoch is None else epoch]

    def route(self, key, epoch=None):
        """The shard ``key`` lives on under ``epoch`` (default: current).

        Raises ``KeyError`` for an unknown epoch -- a router holding a
        stale table must fail loudly, not guess.
        """
        return self.ring(epoch).shard_for(key)

    def install_epoch(self, epoch, shards, ring_slots=64):
        """Register a new table version and make it current.

        Old epochs remain queryable so stale-routed operations can be
        recognized (and re-routed) rather than misdelivered.
        """
        if epoch <= self.epoch:
            raise ValueError("epoch %r is not newer than %r"
                             % (epoch, self.epoch))
        self._rings[epoch] = HashRing(shards, ring_slots)
        self.epoch = epoch

    def __repr__(self):
        return "ShardDirectory(epoch={}, shards={})".format(
            self.epoch, self.shards)
