"""Key -> shard routing: a consistent-hash ring with a static epoch table.

Routing must be a pure function of ``(key, epoch)`` -- every client, test,
and benchmark computes the same shard for the same key with no
coordination, which is what makes the directory safe to replicate freely.
The ring hashes each shard onto ``ring_slots`` virtual points (SHA-256,
platform-independent -- ``hash()`` is salted per process and would break
cross-run determinism); a key routes to the owner of the first point at or
after its own hash, wrapping around.

Epochs version the table: resharding installs a new ring under
``epoch + 1`` while the old one stays queryable, so in-flight operations
stamped with the epoch they were routed under can be detected as stale
instead of silently landing on the wrong shard.  Live resharding
(:mod:`repro.shard.reshard`) drives that seam: :func:`ring_diff` computes
the arcs whose owner changes between two rings, the migration streams
exactly those arcs' keys between shards, and ``retire_epoch`` drops the
old table once every arc is acked on its new owner.
"""

from __future__ import annotations

import bisect
import hashlib


def _point(label):
    """A 64-bit ring coordinate from a stable string label."""
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def hash_key(key):
    """``key``'s 64-bit ring coordinate (any repr-stable value)."""
    return _point("key:%r" % (key,))


def arc_contains(lo, hi, point):
    """Is ``point`` inside the half-open ring arc ``[lo, hi)``?

    Closed-at-lo/open-at-hi matches the router's ``bisect_right``: every
    point in ``[lo, hi)`` (``lo``, ``hi`` consecutive ring points) maps
    to the same owner.  Arcs wrap: ``lo >= hi`` denotes the arc through
    zero (and the degenerate ``lo == hi`` full circle, which
    :func:`ring_diff` never emits but the membership test stays total
    for).
    """
    if lo < hi:
        return lo <= point < hi
    return point >= lo or point < hi


def arcs_contain(arcs, point):
    """Is ``point`` inside any of the ``(lo, hi)`` arcs?"""
    for lo, hi in arcs:
        if arc_contains(lo, hi, point):
            return True
    return False


def ring_diff(old, new):
    """The arcs whose owner changes from ``old`` ring to ``new`` ring.

    Returns a tuple of ``(lo, hi, old_owner, new_owner)`` with
    ``old_owner != new_owner``; every arc is half-open ``[lo, hi)`` in the
    64-bit point space and the arcs are disjoint.  A key's owner changes
    between the rings **iff** its :func:`hash_key` falls inside one of the
    returned arcs -- the property the migration (and the hypothesis suite)
    is built on.  Between two consecutive boundary points of the union of
    both rings, each ring's owner is constant (that is what consistent
    hashing means), so checking one representative per segment is exact.
    Adjacent segments with the same owner pair are merged, so a typical
    reshard yields a few hundred arcs, not one per virtual point.
    """
    boundaries = sorted(set(old._points) | set(new._points))
    count = len(boundaries)
    arcs = []
    for index, lo in enumerate(boundaries):
        hi = boundaries[(index + 1) % count]   # last segment wraps to 0
        src = old.owner_of_point(lo)
        dst = new.owner_of_point(lo)
        if src == dst:
            continue
        # merge with the previous arc when contiguous and same owner pair
        if arcs and arcs[-1][1] == lo and arcs[-1][2:] == (src, dst):
            arcs[-1] = (arcs[-1][0], hi, src, dst)
        else:
            arcs.append((lo, hi, src, dst))
    # the zero seam: the wrap arc and the first arc may be two halves
    if (len(arcs) >= 2 and arcs[0][0] == arcs[-1][1]
            and arcs[0][2:] == arcs[-1][2:]):
        arcs[0] = (arcs[-1][0], arcs[0][1], arcs[0][2], arcs[0][3])
        arcs.pop()
    return tuple(arcs)


class HashRing:
    """One immutable consistent-hash ring over ``shards`` groups."""

    __slots__ = ("shards", "ring_slots", "_points", "_owners")

    def __init__(self, shards, ring_slots=64):
        if shards < 1:
            raise ValueError("a ring needs at least one shard")
        if ring_slots < 1:
            raise ValueError("a shard needs at least one ring slot")
        self.shards = shards
        self.ring_slots = ring_slots
        pairs = sorted(
            (_point("shard:%d:slot:%d" % (shard, slot)), shard)
            for shard in range(shards)
            for slot in range(ring_slots))
        self._points = [point for point, _shard in pairs]
        self._owners = [shard for _point, shard in pairs]

    def shard_for(self, key):
        """The shard owning ``key`` (any repr-stable value)."""
        return self.owner_of_point(hash_key(key))

    def owner_of_point(self, point):
        """The shard owning ring coordinate ``point``."""
        index = bisect.bisect_right(self._points, point) % len(self._points)
        return self._owners[index]

    def spread(self, keys):
        """``{shard: count}`` of how ``keys`` distribute (test/diagnostic)."""
        counts = {}
        for key in keys:
            shard = self.shard_for(key)
            counts[shard] = counts.get(shard, 0) + 1
        return counts

    def __repr__(self):
        return "HashRing(shards={}, ring_slots={})".format(
            self.shards, self.ring_slots)


class ShardDirectory:
    """The routing table: ``epoch -> HashRing``, one current epoch."""

    def __init__(self, shards, ring_slots=64, epoch=0):
        self.epoch = epoch
        self._rings = {epoch: HashRing(shards, ring_slots)}

    @property
    def shards(self):
        return self._rings[self.epoch].shards

    def ring(self, epoch=None):
        return self._rings[self.epoch if epoch is None else epoch]

    def route(self, key, epoch=None):
        """The shard ``key`` lives on under ``epoch`` (default: current).

        Raises ``KeyError`` for an unknown epoch -- a router holding a
        stale table must fail loudly, not guess.
        """
        return self.ring(epoch).shard_for(key)

    def install_epoch(self, epoch, shards, ring_slots=64):
        """Register a new table version and make it current.

        Old epochs remain queryable so stale-routed operations can be
        recognized (and re-routed) rather than misdelivered.
        """
        if epoch <= self.epoch:
            raise ValueError("epoch %r is not newer than %r"
                             % (epoch, self.epoch))
        self._rings[epoch] = HashRing(shards, ring_slots)
        self.epoch = epoch

    def retire_epoch(self, epoch):
        """Forget a superseded table once its migration is fully acked.

        Only non-current epochs can retire -- the live table must always
        stay routable.  Retiring an already-forgotten epoch is a no-op so
        a resumed migration can retire idempotently.
        """
        if epoch == self.epoch:
            raise ValueError("cannot retire the current epoch %r" % (epoch,))
        self._rings.pop(epoch, None)

    def epochs(self):
        """The registered epochs, oldest first."""
        return tuple(sorted(self._rings))

    def has_epoch(self, epoch):
        return epoch in self._rings

    def moved_arcs(self, old_epoch=None, new_epoch=None):
        """:func:`ring_diff` between two registered epochs.

        Defaults to the two newest tables -- mid-migration, that is
        exactly the (retiring, installing) pair.
        """
        known = self.epochs()
        if new_epoch is None:
            new_epoch = known[-1]
        if old_epoch is None:
            older = [e for e in known if e < new_epoch]
            if not older:
                raise ValueError("no epoch older than %r" % (new_epoch,))
            old_epoch = older[-1]
        return ring_diff(self._rings[old_epoch], self._rings[new_epoch])

    def __repr__(self):
        return "ShardDirectory(epoch={}, shards={})".format(
            self.epoch, self.shards)
