"""Live resharding: migrate key ownership from epoch e to epoch e+1.

The coordinator is a *client* of the shard groups, exactly like the
cross-shard :class:`~repro.shard.rsm.TransferCoordinator`: every protocol
step is an ordinary totally-ordered command on ONE shard, observed
through replica state and resubmitted verbatim on timeout.  Nothing here
needs its own consensus -- the paper's ordering + view-change machinery
is the substrate, which is the whole point of building reconfiguration
on a group-communication stack.

The epoch lifecycle (see docs/SHARDING.md for the failure matrix):

1. ``start()`` installs the epoch ``e+1`` ring into the directory and
   computes :func:`~repro.shard.directory.ring_diff` -- the exact arcs
   whose owner changes.  Clients may already route under ``e+1``; shards
   still at ``e`` fence those ops ``early`` (retried), so no window is
   unserved and none is double-served.
2. ``mig_begin`` is ordered on EVERY shard: each machine deterministically
   seals its outgoing arcs' keys (and their dedup records) into an
   outbox, registers the arcs it is owed as in-flight, and bumps its
   epoch.  From this point ops on moving keys fence (``stale`` at the
   old owner, ``wait`` at the new one) -- the fences ARE the lock.
3. Per ``(src, dst)`` pair: the coordinator reads the sealed payload off
   any live source replica (every replica sealed identically -- same
   command, same position in the total order) and orders ``mig_install``
   on the destination.  Install is idempotent by the ``(epoch, src)``
   token, so crashes and view changes are handled by blind resubmission.
4. After the install is acked, ``mig_retire`` on the source drops the
   outbox copy, and once every pair is retired the old epoch's table is
   retired from the directory.  Keys are in exactly one of source data /
   source outbox / destination data at every ordered point -- the
   key-conservation invariant the chaos campaign asserts.

The coordinator is poll-driven: :meth:`poll` inspects machine state and
(re)submits whatever the pacing timer allows, never blocking, so a chaos
plan can interleave crashes, partitions, and view changes between polls.
:meth:`run` is the blocking convenience loop on top.
"""

from __future__ import annotations

from repro.shard.directory import ring_diff


class ReshardCoordinator:
    """Drives one ``epoch -> epoch + 1`` migration over a ShardManager."""

    def __init__(self, manager, replicas, phase_timeout=3.0):
        self.manager = manager
        self.replicas = replicas       # {shard: {node_id: ShardReplica}}
        self.phase_timeout = phase_timeout
        self.state = "idle"            # idle -> migrating -> done
        self.epoch = None
        self.old_epoch = None
        self.arcs = ()
        self.pairs = {}                # (src, dst) -> arcs
        self.pair_phase = {}           # (src, dst) -> seal|install|retire|done
        self.pair_payload = {}         # (src, dst) -> (items, records)
        self.begin_cmds = {}           # shard -> mig_begin command
        self.begun = set()
        self.resubmits = 0
        self._last_submit = {}         # submission key -> sim time
        self.metrics = {}              # per-epoch migration metrics

    # ------------------------------------------------------------------
    # starting / resuming
    # ------------------------------------------------------------------
    def start(self, shards=None, ring_slots=None):
        """Install epoch ``e+1`` and begin migrating; returns the epoch.

        ``shards`` / ``ring_slots`` default to the current ring's values;
        at least one must change (same ring twice would be a no-op
        migration, almost certainly a caller bug).  ``shards`` may grow
        up to the number of built groups (scale-out onto spare groups)
        or shrink to 1 (drain-down).
        """
        if self.state == "migrating":
            raise RuntimeError("a migration is already in flight")
        directory = self.manager.directory
        old_ring = directory.ring()
        if shards is None:
            shards = old_ring.shards
        if ring_slots is None:
            ring_slots = old_ring.ring_slots
        if shards > len(self.manager.groups):
            raise ValueError(
                "cannot reshard to %d shards: only %d groups are built"
                % (shards, len(self.manager.groups)))
        if (shards, ring_slots) == (old_ring.shards, old_ring.ring_slots):
            raise ValueError("reshard target equals the current ring")
        self.old_epoch = directory.epoch
        self.epoch = self.old_epoch + 1
        directory.install_epoch(self.epoch, shards, ring_slots=ring_slots)
        self._plan(directory.ring(self.old_epoch), directory.ring())
        self.metrics = {
            "epoch": self.epoch, "from_shards": old_ring.shards,
            "to_shards": shards, "arcs": len(self.arcs),
            "pairs": len(self.pairs), "keys_moved": 0,
            "started_at": self.manager.sim.now, "finished_at": None,
        }
        self.state = "migrating"
        self.poll()
        return self.epoch

    def resume(self):
        """Adopt an in-flight migration (e.g. after a coordinator crash).

        Rebuilds the plan from the directory's two newest epochs; the
        per-pair phases then re-derive themselves from machine state in
        :meth:`poll` -- already-installed pairs are recognized by their
        ``installed`` token, already-retired ones by the absent outbox.
        """
        directory = self.manager.directory
        epochs = directory.epochs()
        if len(epochs) < 2:
            raise RuntimeError("no migration in flight to resume")
        self.old_epoch, self.epoch = epochs[-2], epochs[-1]
        self._plan(directory.ring(self.old_epoch), directory.ring())
        self.metrics = {
            "epoch": self.epoch,
            "from_shards": directory.ring(self.old_epoch).shards,
            "to_shards": directory.ring().shards, "arcs": len(self.arcs),
            "pairs": len(self.pairs), "keys_moved": 0,
            "started_at": self.manager.sim.now, "finished_at": None,
        }
        self.state = "migrating"
        self.poll()
        return self.epoch

    def _plan(self, old_ring, new_ring):
        self.arcs = ring_diff(old_ring, new_ring)
        out_moves = {}    # src -> {dst: [arc, ...]}
        in_moves = {}     # dst -> {src: [arc, ...]}
        self.pairs = {}
        for lo, hi, src, dst in self.arcs:
            out_moves.setdefault(src, {}).setdefault(dst, []).append((lo, hi))
            in_moves.setdefault(dst, {}).setdefault(src, []).append((lo, hi))
            self.pairs.setdefault((src, dst), [])
            self.pairs[(src, dst)].append((lo, hi))
        self.pairs = {pair: tuple(arcs)
                      for pair, arcs in sorted(self.pairs.items())}
        self.pair_phase = {pair: "seal" for pair in self.pairs}
        self.pair_payload = {}
        # EVERY shard gets a begin (even move-free ones): the epoch bump
        # is what turns clients' "early" fences into served ops
        self.begin_cmds = {}
        for shard in sorted(self.manager.groups):
            outs = tuple(sorted(
                (dst, tuple(arcs))
                for dst, arcs in out_moves.get(shard, {}).items()))
            ins = tuple(sorted(
                (src, tuple(arcs))
                for src, arcs in in_moves.get(shard, {}).items()))
            self.begin_cmds[shard] = ("mig_begin", self.epoch, outs, ins)
        self.begun = set()
        self._last_submit = {}

    # ------------------------------------------------------------------
    # machine observation
    # ------------------------------------------------------------------
    def _machines(self, shard):
        for node_id in sorted(self.replicas[shard]):
            replica = self.replicas[shard][node_id]
            if not replica.endpoint.process.stopped:
                yield replica.machine

    def _any(self, shard, pred):
        return any(pred(m) for m in self._machines(shard))

    def _submit(self, shard, command, tag):
        """Paced submission: resubmit ``command`` through the first live
        replica at most once per ``phase_timeout``."""
        now = self.manager.sim.now
        last = self._last_submit.get(tag)
        if last is not None and now - last < self.phase_timeout:
            return
        for node_id in sorted(self.replicas[shard]):
            replica = self.replicas[shard][node_id]
            if not replica.endpoint.process.stopped:
                if last is not None:
                    self.resubmits += 1
                replica.submit(command)
                self._last_submit[tag] = now
                return

    # ------------------------------------------------------------------
    # the state machine
    # ------------------------------------------------------------------
    def poll(self):
        """Advance the migration as far as machine state allows.

        Cheap, idempotent, never blocking: chaos drivers call this
        between fault ops, :meth:`run` calls it between sim slices.
        Returns the coordinator state.
        """
        if self.state != "migrating":
            return self.state
        epoch = self.epoch
        for shard, command in self.begin_cmds.items():
            if shard in self.begun:
                continue
            if self._any(shard, lambda m: m.epoch >= epoch):
                self.begun.add(shard)
            else:
                self._submit(shard, command, ("begin", shard))
        for pair, arcs in self.pairs.items():
            src, dst = pair
            phase = self.pair_phase[pair]
            if phase == "done":
                continue
            if phase == "seal":
                if src not in self.begun:
                    continue
                # resume shortcut: a pair whose install already landed is
                # past sealing no matter what the outbox says
                if self._any(dst, lambda m: (epoch, src) in m.installed):
                    self.pair_phase[pair] = phase = "retire"
                else:
                    payload = None
                    for machine in self._machines(src):
                        if machine.epoch >= epoch:
                            payload = machine.outbox.get((epoch, dst))
                            if payload is not None:
                                break
                    if payload is None:
                        continue   # only lagging replicas visible; wait
                    self.pair_payload[pair] = (payload[1], payload[2])
                    self.metrics["keys_moved"] += len(payload[1])
                    self.pair_phase[pair] = phase = "install"
            if phase == "install":
                if self._any(dst, lambda m: (epoch, src) in m.installed):
                    self.pair_phase[pair] = phase = "retire"
                elif dst in self.begun:
                    items, records = self.pair_payload[pair]
                    self._submit(
                        dst, ("mig_install", epoch, src, items, records),
                        ("install", pair))
                else:
                    continue   # install before begin would be refused
            if phase == "retire":
                gone = self._any(
                    src, lambda m: (m.epoch >= epoch
                                    and (epoch, dst) not in m.outbox))
                if gone:
                    self.pair_phase[pair] = "done"
                else:
                    self._submit(src, ("mig_retire", epoch, dst),
                                 ("retire", pair))
        if len(self.begun) == len(self.begin_cmds) and all(
                phase == "done" for phase in self.pair_phase.values()):
            directory = self.manager.directory
            if directory.has_epoch(self.old_epoch):
                directory.retire_epoch(self.old_epoch)
            self.metrics["finished_at"] = self.manager.sim.now
            self.metrics["resubmits"] = self.resubmits
            self.metrics["fencing"] = self.fencing_totals()
            self.state = "done"
        return self.state

    def run(self, timeout=60.0, slice_=0.25):
        """Poll + advance the plane until done or ``timeout`` sim-seconds.

        Returns True when the migration completed.  On False the
        migration is NOT rolled back -- it stays resumable: call ``run``
        again (e.g. after the chaos plan heals the network).
        """
        deadline = self.manager.sim.now + timeout
        while self.poll() != "done":
            if self.manager.sim.now >= deadline:
                return False
            self.manager.run(min(slice_, self.phase_timeout / 2.0))
        return True

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def keys_in_flight(self):
        """Keys sealed out of their source but not yet acked installed."""
        return sum(len(self.pair_payload[pair][0])
                   for pair, phase in self.pair_phase.items()
                   if phase == "install" and pair in self.pair_payload)

    def fencing_totals(self):
        """Fencing drops per reason, summed across shards.

        Per shard the count is the max over live replicas: every replica
        applies the same fences at the same ordered points, so max is the
        converged per-shard value (not inflated by the replication
        factor).
        """
        totals = {}
        for shard in self.replicas:
            per_shard = {}
            for machine in self._machines(shard):
                for reason, count in machine.fenced.items():
                    per_shard[reason] = max(per_shard.get(reason, 0), count)
            for reason, count in per_shard.items():
                totals[reason] = totals.get(reason, 0) + count
        return totals

    def migration_metrics(self):
        """The per-epoch migration metrics dict (live gauges included)."""
        metrics = dict(self.metrics)
        metrics["state"] = self.state
        metrics["keys_in_flight"] = self.keys_in_flight()
        metrics["pairs_done"] = sum(
            1 for phase in self.pair_phase.values() if phase == "done")
        if "fencing" not in metrics:
            metrics["fencing"] = self.fencing_totals()
            metrics["resubmits"] = self.resubmits
        return metrics

    def __repr__(self):
        return "ReshardCoordinator(state={}, epoch={}, pairs={})".format(
            self.state, self.epoch, len(self.pairs))
