"""The sharded replicated KV store and its cross-shard transfer protocol.

Each shard runs one totally-ordered RSM (:mod:`repro.apps.rsm`); single-key
commands route by the directory and never coordinate across shards.  The
one multi-shard operation is ``transfer`` -- move an integer amount from a
key on the source shard to a key on the destination shard -- implemented
as a two-phase protocol whose every step is an *ordinary totally-ordered
command* on one shard:

1. ``xfer_prepare`` (source shard): atomically debit the amount and park
   it under the transfer id in the pending table (or record an abort if
   the balance is short);
2. ``xfer_credit`` (destination shard): credit the amount;
3. ``xfer_commit`` (source shard): release the pending entry -- or
   ``xfer_abort``, which refunds it.

Every command carries the full ``(txid, key, amount)`` tuple and every
replica keeps a finished-transfer table, so each step is **idempotent**:
the coordinator may blindly resubmit after a timeout or a shard-side view
change and the state machine applies each step at most once.  That is the
entire recovery story -- atomicity across the two shards comes from
"debit is parked until credit is known durable", not from any cross-shard
locking, and a crashed coordinator leaves at worst a parked debit that
``xfer_abort`` refunds.
"""

from __future__ import annotations

import hashlib

from repro.apps.rsm import KVStore, Replica


class ShardedKVStore(KVStore):
    """A KVStore that also speaks the two-phase transfer commands.

    Plain KV commands (``set``/``del``/``incr``/``append``) behave exactly
    as in the base class; the ``xfer_*`` family maintains two extra
    tables, both covered by the digest so replica-divergence checks see
    transfer state too:

    * ``pending``  -- txid -> (key, amount) debited, awaiting commit;
    * ``finished`` -- txid -> outcome, the idempotency/dedup record.
    """

    def __init__(self):
        super().__init__()
        self.pending = {}
        self.finished = {}

    def apply(self, origin, command):
        if not isinstance(command, tuple) or not command:
            return None
        op = command[0]
        if op == "xfer_prepare" and len(command) == 4:
            _, txid, key, amount = command
            self.applied += 1
            if txid in self.pending or txid in self.finished:
                return ("xfer", txid, "duplicate")
            balance = self.data.get(key, 0)
            if (not isinstance(balance, int) or not isinstance(amount, int)
                    or amount < 0 or balance < amount):
                self.finished[txid] = "aborted"
                return ("xfer", txid, "aborted")
            self.data[key] = balance - amount
            self.pending[txid] = (key, amount)
            return ("xfer", txid, "prepared")
        if op == "xfer_credit" and len(command) == 4:
            _, txid, key, amount = command
            self.applied += 1
            if txid in self.finished:
                return ("xfer", txid, "duplicate")
            base = self.data.get(key, 0)
            if isinstance(base, int) and isinstance(amount, int):
                self.data[key] = base + amount
            self.finished[txid] = "credited"
            return ("xfer", txid, "credited")
        if op == "xfer_commit" and len(command) == 2:
            _, txid = command
            self.applied += 1
            if self.finished.get(txid) in ("committed", "aborted"):
                return ("xfer", txid, "duplicate")
            self.pending.pop(txid, None)
            self.finished[txid] = "committed"
            return ("xfer", txid, "committed")
        if op == "xfer_abort" and len(command) == 2:
            _, txid = command
            self.applied += 1
            if self.finished.get(txid) in ("committed", "aborted"):
                return ("xfer", txid, "duplicate")
            parked = self.pending.pop(txid, None)
            if parked is not None:
                key, amount = parked
                self.data[key] = self.data.get(key, 0) + amount
            self.finished[txid] = "aborted"
            return ("xfer", txid, "aborted")
        return super().apply(origin, command)

    def digest(self):
        canon = (tuple(sorted(self.data.items(), key=repr)),
                 tuple(sorted(self.pending.items(), key=repr)),
                 tuple(sorted(self.finished.items(), key=repr)))
        return hashlib.sha256(repr(canon).encode("utf-8")).hexdigest()[:16]


class ShardReplica(Replica):
    """A Replica whose snapshots carry the transfer tables, so a member
    rejoining mid-transfer (state transfer after a view change) resumes
    with the same pending/finished state its peers have."""

    def __init__(self, endpoint, machine=None):
        super().__init__(endpoint, machine=machine or ShardedKVStore())

    def _snapshot(self):
        m = self.machine
        if isinstance(m, ShardedKVStore):
            return ("skv", tuple(sorted(m.data.items(), key=repr)),
                    tuple(sorted(m.pending.items(), key=repr)),
                    tuple(sorted(m.finished.items(), key=repr)), m.applied)
        return super()._snapshot()

    def _install_snapshot(self, snapshot):
        m = self.machine
        if (isinstance(snapshot, tuple) and len(snapshot) == 5
                and snapshot[0] == "skv" and isinstance(m, ShardedKVStore)):
            m.data = dict(snapshot[1])
            m.pending = dict(snapshot[2])
            m.finished = dict(snapshot[3])
            m.applied = snapshot[4]
            return
        super()._install_snapshot(snapshot)


class TransferCoordinator:
    """Drives one cross-shard transfer through its phases.

    The coordinator is a *client*: it submits commands through any live
    replica of the relevant shard and watches replica state to learn the
    ordered outcome.  Timeouts (e.g. the submitting member crashed and
    the shard is mid-view-change) are handled by resubmitting the SAME
    command -- same txid -- through another live replica; idempotency in
    :class:`ShardedKVStore` makes the retry safe whether or not the
    first submission survived the flush.
    """

    def __init__(self, manager, replicas, phase_timeout=3.0, attempts=4):
        self.manager = manager
        self.replicas = replicas       # {shard: {node_id: ShardReplica}}
        self.phase_timeout = phase_timeout
        self.attempts = attempts
        self.retries = 0

    # ------------------------------------------------------------------
    def _live(self, shard):
        for node_id in sorted(self.replicas[shard]):
            replica = self.replicas[shard][node_id]
            if not replica.endpoint.process.stopped:
                yield replica

    def _machines(self, shard):
        return [replica.machine for replica in self._live(shard)]

    def _phase(self, shard, command, done):
        """Submit ``command`` on ``shard`` until ``done(machine)`` holds on
        some live replica; resubmits with the same txid on timeout."""
        for _attempt in range(self.attempts):
            submitter = next(iter(self._live(shard)), None)
            if submitter is None:
                return False
            submitter.submit(command)
            ok = self.manager.run_until(
                lambda: any(done(m) for m in self._machines(shard)),
                timeout=self.phase_timeout)
            if ok:
                return True
            self.retries += 1
        return False

    # ------------------------------------------------------------------
    def transfer(self, txid, src_key, dst_key, amount):
        """Run the whole protocol; returns the outcome string.

        ``"committed"``  -- debited on the source shard, credited on the
        destination; ``"aborted"`` -- no net effect (insufficient funds,
        or the credit could not be ordered and the debit was refunded);
        ``"failed"`` -- a phase could not complete within the retry
        budget (e.g. a shard lost its quorum); the parked debit, if any,
        is still refundable by resubmitting ``xfer_abort`` later.
        """
        src_shard = self.manager.route(src_key)
        dst_shard = self.manager.route(dst_key)
        if src_shard == dst_shard:
            # the degenerate same-shard case is one ordered command pair
            ok = self._phase(
                src_shard, ("xfer_prepare", txid, src_key, amount),
                lambda m: txid in m.pending or txid in m.finished)
            if not ok:
                return "failed"
            if self._outcome(src_shard, txid) == "aborted":
                return "aborted"
            self._phase(src_shard, ("xfer_credit", txid, dst_key, amount),
                        lambda m: m.finished.get(txid) is not None)
            ok = self._phase(src_shard, ("xfer_commit", txid),
                             lambda m: m.finished.get(txid) == "committed")
            return "committed" if ok else "failed"
        ok = self._phase(src_shard, ("xfer_prepare", txid, src_key, amount),
                         lambda m: txid in m.pending or txid in m.finished)
        if not ok:
            return "failed"
        if self._outcome(src_shard, txid) == "aborted":
            return "aborted"
        ok = self._phase(dst_shard, ("xfer_credit", txid, dst_key, amount),
                         lambda m: m.finished.get(txid) == "credited")
        if not ok:
            # destination unreachable: refund the parked debit
            refunded = self._phase(
                src_shard, ("xfer_abort", txid),
                lambda m: m.finished.get(txid) == "aborted")
            return "aborted" if refunded else "failed"
        ok = self._phase(src_shard, ("xfer_commit", txid),
                         lambda m: m.finished.get(txid) == "committed")
        return "committed" if ok else "failed"

    def _outcome(self, shard, txid):
        for machine in self._machines(shard):
            if txid in machine.pending:
                return "prepared"
            outcome = machine.finished.get(txid)
            if outcome is not None:
                return outcome
        return None


class ShardedRSM:
    """The whole service: one :class:`ShardReplica` per endpoint, key
    routing, and cross-shard transfers -- the object the quickstart and
    the benchmarks drive."""

    def __init__(self, manager, phase_timeout=3.0):
        self.manager = manager
        self.replicas = {
            shard: {node_id: ShardReplica(endpoint)
                    for node_id, endpoint in group.endpoints.items()}
            for shard, group in manager.groups.items()}
        self.coordinator = TransferCoordinator(manager, self.replicas,
                                               phase_timeout=phase_timeout)
        self._txid_seq = 0

    def submit(self, key, command, size=32):
        """Order a single-key command on the shard owning ``key``."""
        shard = self.manager.route(key)
        for node_id in sorted(self.replicas[shard]):
            replica = self.replicas[shard][node_id]
            if not replica.endpoint.process.stopped:
                return replica.submit(command, size=size)
        raise RuntimeError("shard %r has no live replica" % (shard,))

    def get(self, key):
        """Read ``key`` from a live replica of its shard (local read --
        the RSM's agreed state, not a linearizable quorum read)."""
        shard = self.manager.route(key)
        for node_id in sorted(self.replicas[shard]):
            replica = self.replicas[shard][node_id]
            if not replica.endpoint.process.stopped:
                return replica.machine.data.get(key)
        raise RuntimeError("shard %r has no live replica" % (shard,))

    def transfer(self, src_key, dst_key, amount, txid=None):
        if txid is None:
            self._txid_seq += 1
            txid = ("tx", self._txid_seq, repr(src_key), repr(dst_key))
        return self.coordinator.transfer(txid, src_key, dst_key, amount)

    def shard_digests(self, shard):
        """Per-replica state digests of one shard (divergence check)."""
        return {node_id: replica.state_digest()
                for node_id, replica in self.replicas[shard].items()
                if not replica.endpoint.process.stopped}
