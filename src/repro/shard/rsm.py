"""The sharded replicated KV store and its cross-shard transfer protocol.

Each shard runs one totally-ordered RSM (:mod:`repro.apps.rsm`); single-key
commands route by the directory and never coordinate across shards.  The
one multi-shard operation is ``transfer`` -- move an integer amount from a
key on the source shard to a key on the destination shard -- implemented
as a two-phase protocol whose every step is an *ordinary totally-ordered
command* on one shard:

1. ``xfer_prepare`` (source shard): atomically debit the amount and park
   it under the transfer id in the pending table (or record an abort if
   the balance is short);
2. ``xfer_credit`` (destination shard): credit the amount;
3. ``xfer_commit`` (source shard): release the pending entry -- or
   ``xfer_abort``, which refunds it.

Every command carries the full ``(txid, key, amount)`` tuple and every
replica keeps a finished-transfer table, so each step is **idempotent**:
the coordinator may blindly resubmit after a timeout or a shard-side view
change and the state machine applies each step at most once.  That is the
entire recovery story -- atomicity across the two shards comes from
"debit is parked until credit is known durable", not from any cross-shard
locking, and a crashed coordinator leaves at worst a parked debit that
``xfer_abort`` refunds.

Live resharding reuses the same trick.  The machine is **epoch-aware**:
every client operation travels in an ``("op", op_id, attempt, epoch, key,
sub)`` envelope and is either *applied* (recorded in ``op_results``, the
dedup table that makes resubmitting the same ``op_id`` safe) or *fenced*
with a reason (recorded in ``fence_log`` so the client can observe the
verdict through replica state, exactly how transfer outcomes are
observed).  Fencing is **total**: every envelope terminates in exactly
one of ``ok`` / ``stale`` / ``early`` / ``wait`` / ``moved`` -- nothing
is silently dropped.  Migration itself is three more ordinary
totally-ordered commands (``mig_begin`` / ``mig_install`` /
``mig_retire``, see :mod:`repro.shard.reshard`), so a view change in the
middle of a migration is recovered the same way as a mid-transfer one:
resubmit the SAME command and let idempotency sort it out.
"""

from __future__ import annotations

import hashlib
from collections import deque

from repro.apps.rsm import KVStore, Replica
from repro.shard.directory import arcs_contain, hash_key


class ShardedKVStore(KVStore):
    """A KVStore that also speaks the two-phase transfer commands.

    Plain KV commands (``set``/``del``/``incr``/``append``) behave exactly
    as in the base class; the ``xfer_*`` family maintains two extra
    tables, both covered by the digest so replica-divergence checks see
    transfer state too:

    * ``pending``  -- txid -> (key, amount) debited, awaiting commit;
    * ``finished`` -- txid -> outcome, the idempotency/dedup record.

    The resharding extension adds the epoch machinery:

    * ``epoch``      -- the directory epoch this machine serves; bumped
      only by an ordered ``mig_begin``, so every replica fences the same
      operations at the same point in the total order;
    * ``outbox``     -- ``(epoch, dst) -> (arcs, items, records)``: keys
      sealed out of this shard at ``mig_begin``, parked until the
      destination's install is acked and ``mig_retire`` releases them
      (the key-conservation invariant: a key is always in exactly one of
      source ``data``, source ``outbox``, destination ``data``);
    * ``in_flight``  -- ``(epoch, src) -> arcs`` this shard is *expecting*
      from a migration; operations on keys inside those arcs fence with
      ``wait`` until the install lands, which is what makes a
      read-modify-write during migration linearizable instead of
      last-writer-wins;
    * ``installed``  -- ``(epoch, src)`` tokens of applied installs (the
      migration-level dedup record; cleared at the next ``mig_begin``);
    * ``op_results`` -- ``op_id -> (key, result)``, the client-op dedup
      table (FIFO-capped).  Records whose key migrates move WITH the key,
      so an op applied on the source and retried on the destination still
      applies exactly once;
    * ``fence_log``  -- ``(op_id, attempt) -> (reason, epoch)``, a
      FIFO-capped journal of fencing verdicts clients poll for.
    """

    #: dedup/fence journals are FIFO-capped so the bounded-state checker
    #: (repro.tournament.bounded) sees a flat ceiling under endless load
    OP_RECORDS_CAP = 4096
    FENCE_LOG_CAP = 1024

    def __init__(self, epoch=0):
        super().__init__()
        self.pending = {}
        self.finished = {}
        self.epoch = epoch
        self.outbox = {}
        self.in_flight = {}
        self.installed = set()
        self.op_results = {}
        self._op_order = deque()
        self.fence_log = {}
        self._fence_order = deque()
        self.fenced = {"stale": 0, "early": 0, "wait": 0, "moved": 0}

    # -- bounded-journal helpers --------------------------------------
    def _record_op(self, op_id, key, result):
        self.op_results[op_id] = (key, result)
        self._op_order.append(op_id)
        while len(self._op_order) > self.OP_RECORDS_CAP:
            self.op_results.pop(self._op_order.popleft(), None)

    def _record_fence(self, op_id, attempt, reason):
        self.fenced[reason] = self.fenced.get(reason, 0) + 1
        token = (op_id, attempt)
        if token not in self.fence_log:
            self._fence_order.append(token)
        self.fence_log[token] = (reason, self.epoch)
        while len(self._fence_order) > self.FENCE_LOG_CAP:
            self.fence_log.pop(self._fence_order.popleft(), None)
        return ("op", op_id, reason, self.epoch)

    def apply(self, origin, command):
        if not isinstance(command, tuple) or not command:
            return None
        op = command[0]
        if op == "op" and len(command) == 6:
            _, op_id, attempt, epoch, key, sub = command
            self.applied += 1
            prior = self.op_results.get(op_id)
            if prior is not None:
                # the resubmit-same-op_id path: replay the recorded result
                return ("op", op_id, "ok", prior[1])
            if epoch < self.epoch:
                # routed under a superseded table: the key may live
                # elsewhere now -- client must re-route under the new one
                return self._record_fence(op_id, attempt, "stale")
            if epoch > self.epoch:
                # client saw the new table before this shard's mig_begin
                # was ordered; retrying is safe, the bump is coming
                return self._record_fence(op_id, attempt, "early")
            point = hash_key(key)
            for (mig_epoch, _src), arcs in self.in_flight.items():
                if mig_epoch == self.epoch and arcs_contain(arcs, point):
                    # the key is ours under this epoch but still in
                    # transit; applying now would race the install
                    return self._record_fence(op_id, attempt, "wait")
            for (mig_epoch, _dst), sealed in self.outbox.items():
                if mig_epoch == self.epoch \
                        and arcs_contain(sealed[0], point):
                    # sealed out of this shard -- only a misrouting
                    # client lands here, but fencing must stay total
                    return self._record_fence(op_id, attempt, "moved")
            result = KVStore.apply(self, origin, sub)
            self._record_op(op_id, key, result)
            return ("op", op_id, "ok", result)
        if op == "mig_begin" and len(command) == 4:
            _, epoch, out_moves, in_moves = command
            self.applied += 1
            if epoch <= self.epoch:
                return ("mig", epoch, "duplicate")
            # tokens of the superseded migration have served their dedup
            # purpose once a newer epoch begins
            self.installed = {t for t in self.installed if t[0] >= epoch}
            for dst, arcs in out_moves:
                arcs = tuple(tuple(a) for a in arcs)
                items = tuple(sorted(
                    ((k, v) for k, v in self.data.items()
                     if arcs_contain(arcs, hash_key(k))), key=repr))
                for k, _v in items:
                    del self.data[k]
                records = tuple(sorted(
                    ((oid, kr) for oid, kr in self.op_results.items()
                     if arcs_contain(arcs, hash_key(kr[0]))), key=repr))
                for oid, _kr in records:
                    del self.op_results[oid]
                self.outbox[(epoch, dst)] = (arcs, items, records)
            for src, arcs in in_moves:
                self.in_flight[(epoch, src)] = tuple(tuple(a) for a in arcs)
            self.epoch = epoch
            return ("mig", epoch, "begun")
        if op == "mig_install" and len(command) == 5:
            _, epoch, src, items, records = command
            self.applied += 1
            token = (epoch, src)
            if token in self.installed:
                return ("mig", epoch, "duplicate")
            if token not in self.in_flight:
                # a late install for an arc this machine never registered
                # (e.g. replayed after a newer mig_begin): refusing keeps
                # the conservation invariant -- never apply blind
                return ("mig", epoch, "unexpected")
            for k, v in items:
                self.data[k] = v
            for oid, kr in records:
                self._record_op(oid, kr[0], kr[1])
            del self.in_flight[token]
            self.installed.add(token)
            return ("mig", epoch, "installed")
        if op == "mig_retire" and len(command) == 3:
            _, epoch, dst = command
            self.applied += 1
            if self.outbox.pop((epoch, dst), None) is None:
                return ("mig", epoch, "duplicate")
            return ("mig", epoch, "retired")
        if op == "xfer_prepare" and len(command) == 4:
            _, txid, key, amount = command
            self.applied += 1
            if txid in self.pending or txid in self.finished:
                return ("xfer", txid, "duplicate")
            balance = self.data.get(key, 0)
            if (not isinstance(balance, int) or not isinstance(amount, int)
                    or amount < 0 or balance < amount):
                self.finished[txid] = "aborted"
                return ("xfer", txid, "aborted")
            self.data[key] = balance - amount
            self.pending[txid] = (key, amount)
            return ("xfer", txid, "prepared")
        if op == "xfer_credit" and len(command) == 4:
            _, txid, key, amount = command
            self.applied += 1
            if txid in self.finished:
                return ("xfer", txid, "duplicate")
            base = self.data.get(key, 0)
            if isinstance(base, int) and isinstance(amount, int):
                self.data[key] = base + amount
            self.finished[txid] = "credited"
            return ("xfer", txid, "credited")
        if op == "xfer_commit" and len(command) == 2:
            _, txid = command
            self.applied += 1
            if self.finished.get(txid) in ("committed", "aborted"):
                return ("xfer", txid, "duplicate")
            self.pending.pop(txid, None)
            self.finished[txid] = "committed"
            return ("xfer", txid, "committed")
        if op == "xfer_abort" and len(command) == 2:
            _, txid = command
            self.applied += 1
            if self.finished.get(txid) in ("committed", "aborted"):
                return ("xfer", txid, "duplicate")
            parked = self.pending.pop(txid, None)
            if parked is not None:
                key, amount = parked
                self.data[key] = self.data.get(key, 0) + amount
            self.finished[txid] = "aborted"
            return ("xfer", txid, "aborted")
        return super().apply(origin, command)

    def digest(self):
        canon = (tuple(sorted(self.data.items(), key=repr)),
                 tuple(sorted(self.pending.items(), key=repr)),
                 tuple(sorted(self.finished.items(), key=repr)),
                 self.epoch,
                 tuple(sorted(self.outbox.items(), key=repr)),
                 tuple(sorted(self.in_flight.items(), key=repr)),
                 tuple(sorted(self.installed, key=repr)),
                 tuple(sorted(self.op_results.items(), key=repr)))
        return hashlib.sha256(repr(canon).encode("utf-8")).hexdigest()[:16]

    def state_sizes(self):
        """Per-table entry counts for bounded-state checking."""
        return {"data": len(self.data), "pending": len(self.pending),
                "finished": len(self.finished), "outbox": len(self.outbox),
                "in_flight": len(self.in_flight),
                "installed": len(self.installed),
                "op_results": len(self.op_results),
                "fence_log": len(self.fence_log)}


class ShardReplica(Replica):
    """A Replica whose snapshots carry the transfer AND migration tables,
    so a member rejoining mid-transfer or mid-migration (state transfer
    after a view change) resumes with the same epoch/outbox/dedup state
    its peers have."""

    def __init__(self, endpoint, machine=None, epoch=0):
        super().__init__(endpoint,
                         machine=machine or ShardedKVStore(epoch=epoch))

    def _snapshot(self):
        m = self.machine
        if isinstance(m, ShardedKVStore):
            return ("skv2", tuple(sorted(m.data.items(), key=repr)),
                    tuple(sorted(m.pending.items(), key=repr)),
                    tuple(sorted(m.finished.items(), key=repr)), m.applied,
                    m.epoch,
                    tuple(sorted(m.outbox.items(), key=repr)),
                    tuple(sorted(m.in_flight.items(), key=repr)),
                    tuple(sorted(m.installed, key=repr)),
                    tuple(sorted(m.op_results.items(), key=repr)),
                    tuple(m._op_order),
                    tuple(sorted(m.fence_log.items(), key=repr)),
                    tuple(m._fence_order),
                    tuple(sorted(m.fenced.items())))
        return super()._snapshot()

    def _install_snapshot(self, snapshot):
        m = self.machine
        if (isinstance(snapshot, tuple) and len(snapshot) == 14
                and snapshot[0] == "skv2" and isinstance(m, ShardedKVStore)):
            m.data = dict(snapshot[1])
            m.pending = dict(snapshot[2])
            m.finished = dict(snapshot[3])
            m.applied = snapshot[4]
            m.epoch = snapshot[5]
            m.outbox = dict(snapshot[6])
            m.in_flight = dict(snapshot[7])
            m.installed = set(snapshot[8])
            m.op_results = dict(snapshot[9])
            m._op_order = deque(snapshot[10])
            m.fence_log = dict(snapshot[11])
            m._fence_order = deque(snapshot[12])
            m.fenced = dict(snapshot[13])
            return
        if (isinstance(snapshot, tuple) and len(snapshot) == 5
                and snapshot[0] == "skv" and isinstance(m, ShardedKVStore)):
            # pre-migration snapshot form, still accepted
            m.data = dict(snapshot[1])
            m.pending = dict(snapshot[2])
            m.finished = dict(snapshot[3])
            m.applied = snapshot[4]
            return
        super()._install_snapshot(snapshot)


class TransferCoordinator:
    """Drives one cross-shard transfer through its phases.

    The coordinator is a *client*: it submits commands through any live
    replica of the relevant shard and watches replica state to learn the
    ordered outcome.  Timeouts (e.g. the submitting member crashed and
    the shard is mid-view-change) are handled by resubmitting the SAME
    command -- same txid -- through another live replica; idempotency in
    :class:`ShardedKVStore` makes the retry safe whether or not the
    first submission survived the flush.
    """

    def __init__(self, manager, replicas, phase_timeout=3.0, attempts=4):
        self.manager = manager
        self.replicas = replicas       # {shard: {node_id: ShardReplica}}
        self.phase_timeout = phase_timeout
        self.attempts = attempts
        self.retries = 0

    # ------------------------------------------------------------------
    def _live(self, shard):
        for node_id in sorted(self.replicas[shard]):
            replica = self.replicas[shard][node_id]
            if not replica.endpoint.process.stopped:
                yield replica

    def _machines(self, shard):
        return [replica.machine for replica in self._live(shard)]

    def _phase(self, shard, command, done):
        """Submit ``command`` on ``shard`` until ``done(machine)`` holds on
        some live replica; resubmits with the same txid on timeout."""
        for _attempt in range(self.attempts):
            submitter = next(iter(self._live(shard)), None)
            if submitter is None:
                return False
            submitter.submit(command)
            ok = self.manager.run_until(
                lambda: any(done(m) for m in self._machines(shard)),
                timeout=self.phase_timeout)
            if ok:
                return True
            self.retries += 1
        return False

    # ------------------------------------------------------------------
    def transfer(self, txid, src_key, dst_key, amount):
        """Run the whole protocol; returns the outcome string.

        ``"committed"``  -- debited on the source shard, credited on the
        destination; ``"aborted"`` -- no net effect (insufficient funds,
        or the credit could not be ordered and the debit was refunded);
        ``"failed"`` -- a phase could not complete within the retry
        budget (e.g. a shard lost its quorum); the parked debit, if any,
        is still refundable by resubmitting ``xfer_abort`` later.
        """
        src_shard = self.manager.route(src_key)
        dst_shard = self.manager.route(dst_key)
        if src_shard == dst_shard:
            # the degenerate same-shard case is one ordered command pair
            ok = self._phase(
                src_shard, ("xfer_prepare", txid, src_key, amount),
                lambda m: txid in m.pending or txid in m.finished)
            if not ok:
                return "failed"
            if self._outcome(src_shard, txid) == "aborted":
                return "aborted"
            self._phase(src_shard, ("xfer_credit", txid, dst_key, amount),
                        lambda m: m.finished.get(txid) is not None)
            ok = self._phase(src_shard, ("xfer_commit", txid),
                             lambda m: m.finished.get(txid) == "committed")
            return "committed" if ok else "failed"
        ok = self._phase(src_shard, ("xfer_prepare", txid, src_key, amount),
                         lambda m: txid in m.pending or txid in m.finished)
        if not ok:
            return "failed"
        if self._outcome(src_shard, txid) == "aborted":
            return "aborted"
        ok = self._phase(dst_shard, ("xfer_credit", txid, dst_key, amount),
                         lambda m: m.finished.get(txid) == "credited")
        if not ok:
            # destination unreachable: refund the parked debit
            refunded = self._phase(
                src_shard, ("xfer_abort", txid),
                lambda m: m.finished.get(txid) == "aborted")
            return "aborted" if refunded else "failed"
        ok = self._phase(src_shard, ("xfer_commit", txid),
                         lambda m: m.finished.get(txid) == "committed")
        return "committed" if ok else "failed"

    def _outcome(self, shard, txid):
        for machine in self._machines(shard):
            if txid in machine.pending:
                return "prepared"
            outcome = machine.finished.get(txid)
            if outcome is not None:
                return outcome
        return None


class ShardedRSM:
    """The whole service: one :class:`ShardReplica` per endpoint, key
    routing, and cross-shard transfers -- the object the quickstart and
    the benchmarks drive."""

    def __init__(self, manager, phase_timeout=3.0):
        self.manager = manager
        epoch = manager.directory.epoch
        self.replicas = {
            shard: {node_id: ShardReplica(endpoint, epoch=epoch)
                    for node_id, endpoint in group.endpoints.items()}
            for shard, group in manager.groups.items()}
        self.coordinator = TransferCoordinator(manager, self.replicas,
                                               phase_timeout=phase_timeout)
        self._txid_seq = 0
        self._client_seq = 0

    # ------------------------------------------------------------------
    def live_replica(self, shard):
        """The first live replica of ``shard``, or None."""
        for node_id in sorted(self.replicas[shard]):
            replica = self.replicas[shard][node_id]
            if not replica.endpoint.process.stopped:
                return replica
        return None

    def machines(self, shard):
        """The live replicas' machines of one shard."""
        return [replica.machine
                for node_id, replica in sorted(self.replicas[shard].items())
                if not replica.endpoint.process.stopped]

    def rebind(self):
        """Re-attach replicas to endpoints replaced by a restart.

        ``Group.restart`` builds a fresh process + endpoint for the new
        incarnation; the old replica stays bound to the dead endpoint and
        reads as stopped forever.  Rebinding gives the newcomer a
        replica (with the state installer the snapshot merge needs) so it
        rejoins the service, not just the group.
        """
        rebound = 0
        for shard, group in self.manager.groups.items():
            for node_id, endpoint in group.endpoints.items():
                replica = self.replicas[shard].get(node_id)
                if replica is None or replica.endpoint is not endpoint:
                    self.replicas[shard][node_id] = ShardReplica(endpoint)
                    rebound += 1
        return rebound

    def client(self, name=None, timeout=2.0, attempts=12):
        """An epoch-aware :class:`ShardClient` on this service."""
        if name is None:
            self._client_seq += 1
            name = "client-%d" % self._client_seq
        return ShardClient(self, name=name, timeout=timeout,
                           attempts=attempts)

    def submit(self, key, command, size=32):
        """Order a single-key command on the shard owning ``key``."""
        shard = self.manager.route(key)
        replica = self.live_replica(shard)
        if replica is None:
            raise RuntimeError("shard %r has no live replica" % (shard,))
        return replica.submit(command, size=size)

    def get(self, key):
        """Read ``key`` from a live replica of its shard (local read --
        the RSM's agreed state, not a linearizable quorum read)."""
        shard = self.manager.route(key)
        machines = self.machines(shard)
        if not machines:
            raise RuntimeError("shard %r has no live replica" % (shard,))
        return machines[0].data.get(key)

    def transfer(self, src_key, dst_key, amount, txid=None):
        if txid is None:
            self._txid_seq += 1
            txid = ("tx", self._txid_seq, repr(src_key), repr(dst_key))
        return self.coordinator.transfer(txid, src_key, dst_key, amount)

    def shard_digests(self, shard):
        """Per-replica state digests of one shard (divergence check)."""
        return {node_id: replica.state_digest()
                for node_id, replica in self.replicas[shard].items()
                if not replica.endpoint.process.stopped}


class ShardClient:
    """An epoch-stamping client with the re-route-and-retry path.

    The client caches a directory epoch (possibly stale -- that is the
    point), stamps it into every op envelope, and reacts to the machine's
    fencing verdicts:

    * ``ok``    -- done; the recorded result is returned;
    * ``stale`` / ``moved`` -- refresh the cached epoch from the
      directory and re-route: the key's shard changed under us;
    * ``early`` / ``wait``  -- the migration is mid-flight; run the plane
      briefly and resubmit the SAME ``op_id`` (dedup in ``op_results``
      makes the retry exactly-once even if the fenced attempt and the
      retry both survive reordering or a view change).

    Outcomes are observed through replica state (``op_results`` /
    ``fence_log``), the same watch-the-machine pattern the transfer
    coordinator uses, so a mid-flight view change at the serving shard
    only costs a timeout + resubmit.
    """

    def __init__(self, rsm, name="client", timeout=2.0, attempts=12):
        self.rsm = rsm
        self.manager = rsm.manager
        self.name = name
        self.timeout = timeout
        self.attempts = attempts
        self.epoch = self.manager.directory.epoch
        self._seq = 0
        self.retries = 0
        self.fences = {"stale": 0, "early": 0, "wait": 0, "moved": 0}

    def refresh(self):
        """Re-read the directory's current epoch (the re-route half)."""
        self.epoch = self.manager.directory.epoch
        return self.epoch

    # ------------------------------------------------------------------
    def op(self, key, sub, op_id=None, timeout=None, attempts=None):
        """Run one fenced op to completion; ``(status, result)``.

        ``status`` is ``"ok"`` (applied exactly once; ``result`` is the
        machine's return value) or ``"failed"`` (retry budget exhausted,
        e.g. the owning shard lost its quorum for the whole window).
        """
        if op_id is None:
            self._seq += 1
            op_id = (self.name, self._seq)
        timeout = self.timeout if timeout is None else timeout
        attempts = self.attempts if attempts is None else attempts
        attempt = 0
        for _try in range(attempts):
            attempt += 1
            if not self.manager.directory.has_epoch(self.epoch):
                self.refresh()   # our table was retired under us
            epoch = self.epoch
            shard = self.manager.route(key, epoch=epoch)
            replica = self.rsm.live_replica(shard)
            if replica is None:
                self.manager.run(0.25)   # shard mid-recovery; come back
                continue
            token = (op_id, attempt)
            replica.submit(("op", op_id, attempt, epoch, key, sub))
            seen = self.manager.run_until(
                lambda: self._outcome(shard, op_id, token) is not None,
                timeout=timeout)
            if not seen:
                self.retries += 1
                continue   # resubmit the SAME op_id under a new attempt
            reason, payload = self._outcome(shard, op_id, token)
            if reason == "ok":
                return ("ok", payload)
            self.fences[reason] = self.fences.get(reason, 0) + 1
            if reason in ("stale", "moved"):
                self.refresh()
            else:   # early / wait: let the migration make progress
                self.manager.run(0.1)
        return ("failed", None)

    def _outcome(self, shard, op_id, token):
        for machine in self.rsm.machines(shard):
            record = machine.op_results.get(op_id)
            if record is not None:
                return ("ok", record[1])
            fence = machine.fence_log.get(token)
            if fence is not None:
                return fence
        return None

    # -- grammar conveniences ------------------------------------------
    def set(self, key, value, **kw):
        return self.op(key, ("set", key, value), **kw)

    def incr(self, key, delta=1, **kw):
        return self.op(key, ("incr", key, delta), **kw)

    def delete(self, key, **kw):
        return self.op(key, ("del", key), **kw)

    def get(self, key):
        """Read through the CURRENT table (refreshes the cached epoch)."""
        self.refresh()
        return self.rsm.get(key)
