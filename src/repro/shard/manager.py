"""ShardManager: N independent groups over ONE shared runtime.

Where the classic ``Group.bootstrap`` owns a private simulator, network,
and key manager, the manager builds a single :class:`SimRuntime` and
attaches every shard's processes to it:

* one clock/event heap -- shard histories interleave deterministically
  under one seed;
* one network -- every port carries its shard's group id, gossip is
  scoped per group (a view announcement can never leak into another
  shard's merge machinery), and the bottom layer stamps the group id
  into every signed message so a cross-shard replay fails
  authentication;
* one :class:`KeyManager` -- pairwise keys are derived once per node
  pair across all shards (node ids are globally unique: shard ``s``
  owns the contiguous block ``[s*k, (s+1)*k)``);
* one observability plane -- metrics stay keyed by node, and the
  manager's ``shard_of`` map projects them into per-shard namespaces.
"""

from __future__ import annotations

from repro.core.config import StackConfig
from repro.core.group import Group
from repro.crypto.keys import KeyManager
from repro.runtime.interface import SimRuntime
from repro.shard.directory import ShardDirectory
from repro.sim.topology import FlatGigE


class ShardManager:
    """Runs ``shards`` independent groups on one shared runtime."""

    def __init__(self, runtime, groups, directory, config, keys, obs=None):
        self.runtime = runtime
        self.sim = runtime.sim
        self.network = runtime.network
        self.groups = groups          # {shard_id: Group}
        self.directory = directory
        self.config = config
        self.keys = keys
        self.obs = obs
        #: node_id -> shard_id, the projection obs and routing share
        self.shard_of = {node: shard
                         for shard, group in groups.items()
                         for node in group.processes}

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, shards=None, nodes_per_shard=None, config=None, seed=0,
               runtime=None, topology_cls=None, net_config=None,
               established=True, start=True, behaviors=None, overrides=None,
               ring_shards=None):
        """Build the whole plane.

        Parameters
        ----------
        shards, nodes_per_shard:
            Plane shape; default from ``config.shard`` (the composable
            section), so ``StackConfig(shard=ShardConfig(shards=64))``
            and ``create(shards=64)`` are the same request.
        runtime:
            An existing :class:`SimRuntime` to attach to (it must have
            ports for ``shards * nodes_per_shard`` nodes); None builds
            one.  The default topology is :class:`FlatGigE` -- the
            service plane models a datacenter fabric, not the paper's
            25-blade testbed (pass ``topology_cls`` to override).
        behaviors:
            ``{node_id: ByzantineBehavior}`` by *global* node id.
        overrides:
            ``{shard_id: {clone kwargs}}`` -- per-shard config deltas
            (section-sized thanks to the composable config split).
        """
        config = config or StackConfig.byz()
        if shards is None:
            shards = config.shard.shards
        if nodes_per_shard is None:
            nodes_per_shard = config.shard.nodes_per_shard
        if shards < 1 or nodes_per_shard < 1:
            raise ValueError("need at least one shard of one node")
        n_total = shards * nodes_per_shard
        if runtime is None:
            runtime = SimRuntime(n_total, seed=seed,
                                 topology_cls=topology_cls or FlatGigE,
                                 net_config=net_config)
        # the initial ring may cover only the first ring_shards groups,
        # leaving spares for a live scale-out reshard to grow onto
        if ring_shards is None:
            ring_shards = config.shard.ring_shards
        if ring_shards is None:
            ring_shards = shards
        if not 1 <= ring_shards <= shards:
            raise ValueError("ring_shards=%r outside 1..%d"
                             % (ring_shards, shards))
        directory = ShardDirectory(ring_shards,
                                   ring_slots=config.shard.ring_slots,
                                   epoch=config.shard.epoch)
        obs = Group._make_obs(runtime.sim, runtime.network, config)
        keys = KeyManager()
        behaviors = behaviors or {}
        overrides = overrides or {}
        groups = {}
        for shard in range(shards):
            node_ids = list(range(shard * nodes_per_shard,
                                  (shard + 1) * nodes_per_shard))
            shard_config = config
            if shard in overrides:
                shard_config = config.clone(**overrides[shard])
            groups[shard] = Group.on_runtime(
                runtime, node_ids, config=shard_config, keys=keys, obs=obs,
                behaviors={n: b for n, b in behaviors.items()
                           if n in node_ids},
                established=established, start=False, group_id=shard)
        manager = cls(runtime, groups, directory, config, keys, obs=obs)
        chaos = config.chaos
        if chaos is not None and chaos.plan:
            manager.install_link_faults(chaos.plan, seed=chaos.seed)
        if start:
            manager.start()
        return manager

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self):
        for shard in sorted(self.groups):
            self.groups[shard].start()

    def stop(self):
        """Stop every shard; each group releases its runtime resources."""
        for shard in sorted(self.groups):
            self.groups[shard].stop()

    def stop_shard(self, shard):
        """Stop ONE shard; the others keep running on the shared runtime
        (the teardown-release fix in ``Group.stop`` is what makes this
        leak-free: ports are detached, not just marked crashed)."""
        self.groups[shard].stop()

    # ------------------------------------------------------------------
    # fault surface by GLOBAL node id (the shard chaos engine's hooks)
    # ------------------------------------------------------------------
    def group_of(self, node_id):
        """The :class:`Group` a global node id belongs to."""
        return self.groups[self.shard_of[node_id]]

    def crash(self, node_id):
        self.group_of(node_id).crash(node_id)

    def restart(self, node_id):
        return self.group_of(node_id).restart(node_id)

    def partition(self, *component_groups):
        """Split the SHARED network into connectivity components (global
        node ids; a component may span shards)."""
        self.network.set_components([set(g) for g in component_groups])

    def heal(self):
        self.network.heal()

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def route(self, key, epoch=None):
        """The shard id owning ``key``."""
        return self.directory.route(key, epoch=epoch)

    def group_for(self, key):
        """The :class:`Group` owning ``key``."""
        return self.groups[self.route(key)]

    def group(self, shard):
        return self.groups[shard]

    def endpoint(self, shard, node_id):
        return self.groups[shard].endpoints[node_id]

    def endpoints(self, shard):
        return self.groups[shard].endpoints

    def node_ids(self, shard):
        return sorted(self.groups[shard].processes)

    # ------------------------------------------------------------------
    # driving the (shared) simulation
    # ------------------------------------------------------------------
    def run(self, duration, max_events=None):
        return self.sim.run(until=self.sim.now + duration,
                            max_events=max_events)

    def run_until(self, predicate, timeout=5.0, max_events=None):
        return self.sim.run_until(predicate, timeout, max_events=max_events)

    def run_until_stable_views(self, timeout=5.0):
        """Run until every shard's live correct members agree on a view."""
        def settled():
            for group in self.groups.values():
                live = group._live_correct()
                if not live:
                    continue
                if len({p.view.vid for p in live}) != 1:
                    return False
                if len({p.view.mbrs for p in live}) != 1:
                    return False
            return True
        return self.run_until(settled, timeout)

    # ------------------------------------------------------------------
    # fault injection (repro.chaos) -- the engine draws from its own RNG,
    # so installing faults never perturbs the shared simulator stream
    # ------------------------------------------------------------------
    def install_link_faults(self, specs, seed=None):
        """Install per-link faults from ``[(kind, src, dst, prob), ...]``
        (the :class:`~repro.core.config.ChaosConfig` plan form).  Node
        ids are global, so a plan naming only one shard's nodes is
        confined to that shard by construction."""
        import random

        from repro.chaos.engine import LinkFaults
        faults = self.network.chaos
        if faults is None:
            rng = None if seed is None else random.Random(seed)
            faults = LinkFaults(rng=rng)
            self.network.chaos = faults
        for kind, src, dst, prob in specs:
            faults.set_fault(kind, src, dst, prob)
        return faults

    # ------------------------------------------------------------------
    # observability: per-shard projections of the shared metric registry
    # ------------------------------------------------------------------
    @property
    def metrics(self):
        return self.obs.metrics if self.obs is not None else None

    def shard_metrics(self, shard, layer=None, name=None):
        """This shard's slice of the shared registry (its namespace)."""
        if self.metrics is None:
            return {}
        return self.metrics.select_nodes(self.node_ids(shard), layer=layer,
                                         name=name)

    def shard_total(self, shard, name, layer=None):
        """Sum of counter ``name`` over one shard's members."""
        if self.metrics is None:
            return 0
        return self.metrics.total_nodes(self.node_ids(shard), name,
                                        layer=layer)

    def shard_histogram(self, shard, name, layer=None):
        """Pooled histogram ``name`` over one shard's members."""
        if self.metrics is None:
            return None
        return self.metrics.merged_histogram_nodes(self.node_ids(shard),
                                                   name, layer=layer)

    def key_stats(self):
        """The shared KeyManager's derivation/cache counters."""
        return self.keys.stats()

    def execution(self, shard):
        """The per-shard :class:`Execution` for the property checkers --
        Defs 2.1/2.2 are PER GROUP, so each shard is checked on its own."""
        return self.groups[shard].execution()

    def __repr__(self):
        return "ShardManager(shards={}, nodes={}, now={:.6f})".format(
            len(self.groups), len(self.shard_of), self.sim.now)
