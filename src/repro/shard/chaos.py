"""Chaos over the sharded plane: fault plans with live resharding.

The single-group :class:`~repro.chaos.engine.ChaosEngine` drives one
``Group``; this module is its sharded sibling.  A
:class:`ShardChaosEngine` applies the same declarative op vocabulary
(crash / restart / partition / heal / link faults) to a
:class:`~repro.shard.Cluster` by GLOBAL node id -- plus the op that
justifies its existence, ``reshard_at``: start a live epoch migration
mid-plan so every subsequent fault lands while key ranges are in flight.

:func:`run_reshard_campaign` is the acceptance harness (the CI
``reshard-smoke`` leg and ``python -m repro reshard``): per seed it
builds a plane, runs an exactly-once increment workload *through* a
random fault plan with a mid-run reshard, settles, finishes the
migration, and then asserts the three things a reconfiguration must
never break:

* **per-shard virtual synchrony** -- Definitions 2.1/2.2 checked on each
  shard group's execution (crashed/left/restarted nodes excluded, as in
  the single-group campaigns);
* **key conservation** -- every written key lives on exactly ONE shard
  (no outbox residue, no duplicates, current-ring placement);
* **exactly-once application** -- each key's counter equals the number
  of distinct increments issued for it: a lost update reads low, a
  doubled one reads high.  Client retries reuse the same op id, so the
  dedup tables -- not luck -- carry this through crashes, partitions,
  and the epoch seam.
"""

from __future__ import annotations

import random

from repro.chaos.engine import LinkFaults, _FAULT_SEED_SALT
from repro.chaos.plan import RESHARD_OPS, random_plan
from repro.core.config import StackConfig
from repro.core.properties import check_virtual_synchrony
from repro.shard.cluster import Cluster


class ShardChaosEngine:
    """Applies a fault-plan op script to a sharded cluster.

    Ops are tolerant exactly as in the single-group engine: a target in
    the wrong state is a no-op, so any subset of a plan's ops is itself
    runnable.  Crash/leave additionally respect a PER-SHARD quorum floor
    -- the generator's floor only knows the global node count, and
    chaos that silently kills a whole shard would turn every liveness
    assertion into noise.
    """

    def __init__(self, cluster, plan=None, seed=0):
        self.cluster = cluster
        self.manager = cluster.manager
        self.rsm = cluster.sharded_rsm()
        self.plan = plan
        self.faults = LinkFaults(
            random.Random((plan.seed if plan else seed) ^ _FAULT_SEED_SALT))
        self.crashed = set()
        self.left = set()
        self.restarted = set()
        self.coordinators = []     # every migration started by reshard_at
        self._active = None        # the one currently in flight

    # ------------------------------------------------------------------
    def apply(self, op):
        handler = getattr(self, "_op_" + str(op[0]), None)
        if handler is None:
            return   # tolerant: unknown ops no-op on the sharded plane
        handler(*op[1:])
        self.pump()

    def pump(self):
        """Advance any in-flight migration as far as state allows."""
        if self._active is not None:
            if self._active.poll() == "done":
                self._active = None

    def run_slices(self, duration, slice_=0.25):
        """``manager.run`` in slices, pumping the migration between
        slices so coordinator progress interleaves with fault delivery."""
        remaining = duration
        while remaining > 0:
            step = min(slice_, remaining)
            self.manager.run(step)
            remaining -= step
            self.pump()

    # -- shard-aware guards --------------------------------------------
    def _live_in_shard(self, shard):
        group = self.manager.groups[shard]
        return [n for n, p in group.processes.items() if not p.stopped]

    def _shard_floor(self, shard):
        # the same convention as random_plan's quorum floor, per shard:
        # crash-stops are benign (the view change evicts them), but the
        # membership machinery needs a surviving supermajority to agree
        k = len(self.manager.groups[shard].processes)
        return max(3, (2 * k) // 3)

    def _may_lose(self, node):
        shard = self.manager.shard_of.get(node)
        if shard is None:
            return False
        return len(self._live_in_shard(shard)) - 1 >= self._shard_floor(shard)

    # -- op handlers ----------------------------------------------------
    def _op_cast(self, sender, count):
        shard = self.manager.shard_of.get(sender)
        if shard is None:
            return
        process = self.manager.groups[shard].processes.get(sender)
        if process is None or process.stopped:
            return
        endpoint = self.manager.endpoint(shard, sender)
        for k in range(count):
            endpoint.cast((sender, "fz", k))

    def _op_run(self, duration):
        self.run_slices(duration)

    def _op_crash(self, node):
        if node in self.crashed or not self._may_lose(node):
            return
        process = self.manager.group_of(node).processes.get(node)
        if process is None or process.stopped:
            return
        self.manager.crash(node)
        self.crashed.add(node)

    def _op_restart(self, node):
        if node not in self.crashed:
            return
        self.crashed.discard(node)
        self.restarted.add(node)
        self.manager.restart(node)
        # the fresh incarnation needs a replica bound to its new endpoint
        # (with the state installer the snapshot merge feeds)
        self.rsm.rebind()

    def _op_leave(self, node):
        if node in self.left or not self._may_lose(node):
            return
        process = self.manager.group_of(node).processes.get(node)
        if process is None or process.stopped:
            return
        self.manager.group_of(node).endpoints[node].leave()
        self.left.add(node)

    def _op_join(self, node_id):
        """Mid-run joins are single-group semantics; no-op on the plane
        (a fresh global node has no shard assignment to merge into)."""

    def _op_partition(self, components):
        seen = set()
        sides = []
        for component in components:
            side = set()
            for node in component:
                if isinstance(node, list):
                    node = tuple(node)
                if node in self.manager.shard_of and node not in seen:
                    seen.add(node)
                    side.add(node)
            if side:
                sides.append(side)
        if sides:
            self.manager.partition(*sides)

    def _op_heal(self):
        self.manager.heal()

    def _ensure_faults(self):
        if self.manager.network.chaos is not self.faults:
            self.manager.network.chaos = self.faults

    def _op_drop(self, src, dst, prob):
        self._ensure_faults()
        self.faults.set_fault("drop", src, dst, prob)

    def _op_corrupt(self, src, dst, prob):
        self._ensure_faults()
        self.faults.set_fault("corrupt", src, dst, prob)

    def _op_duplicate(self, src, dst, prob):
        self._ensure_faults()
        self.faults.set_fault("duplicate", src, dst, prob)

    def _op_nic(self, node, factor):
        if node not in self.manager.shard_of:
            return
        try:
            self.manager.network.degrade_nic(node, factor)
        except (KeyError, AttributeError):
            return

    def _op_skew(self, node, drift):
        """Clock skew needs construction-time NodeClocks; no-op here."""

    def _op_clear_faults(self):
        self.faults.clear()

    def _op_reshard_at(self, delta=1):
        """Start a live reshard NOW; faults applied after this op land
        mid-migration.  Tolerant: a migration already in flight, or a
        plane with nowhere to grow/shrink, makes this a no-op."""
        if self._active is not None:
            return
        current = self.manager.directory.ring().shards
        target = max(1, min(len(self.manager.groups), current + delta))
        if target == current:
            target = max(1, min(len(self.manager.groups), current - delta))
        if target == current:
            return
        coordinator = self.cluster.resharder()
        coordinator.start(shards=target)
        self.coordinators.append(coordinator)
        self._active = coordinator

    # ------------------------------------------------------------------
    def lift_faults(self):
        self.faults.clear()
        self.manager.heal()

    def settle(self, duration=3.0, migration_timeout=30.0):
        """Lift faults, finish any in-flight migration, then drain."""
        self.lift_faults()
        for coordinator in self.coordinators:
            if coordinator.state == "migrating":
                coordinator.run(timeout=migration_timeout)
        self._active = None
        self.manager.run_until_stable_views(timeout=max(duration, 5.0))
        self.run_slices(duration)

    def check(self):
        """Defs 2.1/2.2 per shard; returns violation strings."""
        violations = []
        gone = self.crashed | self.left | self.restarted
        for shard in sorted(self.manager.groups):
            execution = self.manager.execution(shard)
            for node in gone:
                execution.correct.discard(node)
            config = self.manager.groups[shard].config
            for violation in check_virtual_synchrony(
                    execution, content_agreement=config.total_order,
                    total_order=config.total_order):
                violations.append("shard %d: %s" % (shard, violation))
        return violations


def check_key_conservation(rsm, expected):
    """Assert every expected key lives on exactly one shard.

    ``expected`` maps key -> expected value.  Returns violation strings:
    missing keys (lost), multi-homed keys (duplicated), outbox residue
    (migration never retired), wrong placement (not on the current
    ring's owner), and wrong values (lost/doubled updates).
    """
    manager = rsm.manager
    violations = []
    locations = {}
    for shard in sorted(manager.groups):
        machines = rsm.machines(shard)
        if not machines:
            violations.append("shard %d has no live replica" % shard)
            continue
        machine = machines[0]
        for token, sealed in machine.outbox.items():
            violations.append("shard %d outbox residue %r (%d keys)"
                              % (shard, token, len(sealed[1])))
        for key in machine.data:
            locations.setdefault(key, []).append(shard)
    for key, value in sorted(expected.items(), key=repr):
        homes = locations.get(key, [])
        if not homes:
            violations.append("key %r lost (on no shard)" % (key,))
            continue
        if len(homes) > 1:
            violations.append("key %r duplicated on shards %r"
                              % (key, homes))
            continue
        owner = manager.route(key)
        if homes[0] != owner:
            violations.append("key %r on shard %d, ring owns it to %d"
                              % (key, homes[0], owner))
        found = rsm.machines(homes[0])[0].data.get(key)
        if found != value:
            violations.append("key %r value %r != expected %r"
                              % (key, found, value))
    return violations


def run_reshard_campaign(seeds=(0, 1, 2), shards=4, nodes_per_shard=4,
                         ring_shards=None, keys=24, rounds=4, plan_ops=14,
                         config=None, verbose=False):
    """The acceptance campaign: exactly-once increments through a random
    fault plan with a mid-run reshard, per seed.  Returns a report dict;
    ``report["failures"]`` is empty on a clean campaign.
    """
    results = []
    for seed in seeds:
        results.append(_one_reshard_run(
            seed, shards=shards, nodes_per_shard=nodes_per_shard,
            ring_shards=ring_shards, keys=keys, rounds=rounds,
            plan_ops=plan_ops, config=config, verbose=verbose))
    failures = [r for r in results if r["violations"]]
    return {"seeds": list(seeds), "results": results,
            "failures": [r["seed"] for r in failures],
            "ok": not failures}


def _one_reshard_run(seed, shards, nodes_per_shard, ring_shards, keys,
                     rounds, plan_ops, config, verbose):
    config = config or StackConfig.byz(total_order=True)
    if ring_shards is None:
        ring_shards = max(1, shards - 1)
    cluster = Cluster.create(shards=shards, nodes_per_shard=nodes_per_shard,
                             seed=seed, ring_shards=ring_shards,
                             config=config)
    try:
        cluster.run_until_stable_views(10.0)
        rsm = cluster.sharded_rsm()
        client = rsm.client("campaign-%d" % seed)
        key_names = ["key:%d" % i for i in range(keys)]

        plan = random_plan(seed, n=shards * nodes_per_shard, ops=plan_ops,
                           allow=RESHARD_OPS, byzantine_fraction=0.0)
        ops = [op for op in plan.ops if op[0] != "byzantine"]
        if not any(op[0] == "reshard_at" for op in ops):
            # the campaign exists to attack the epoch seam: guarantee one
            ops.insert(len(ops) // 2, ["reshard_at", 1])

        engine = ShardChaosEngine(cluster, plan=plan)
        unfinished = []   # (key, op_id) of timed-out ops to drive home

        def increment_round(round_no):
            for key in key_names:
                op_id = ("inc", seed, key, round_no)
                status, _res = client.op(key, ("incr", key, 1), op_id=op_id,
                                         timeout=1.0, attempts=3)
                if status != "ok":
                    unfinished.append((key, op_id))
                engine.pump()

        # interleave: a full increment round, then a burst of fault ops
        per_burst = max(1, len(ops) // max(rounds, 1))
        cursor = 0
        for round_no in range(rounds):
            increment_round(round_no)
            for op in ops[cursor:cursor + per_burst]:
                engine.apply(op)
            cursor += per_burst
        for op in ops[cursor:]:
            engine.apply(op)

        engine.settle(duration=3.0)
        # drive every timed-out op to completion with its ORIGINAL op id:
        # dedup makes this exactly-once even if the first submission also
        # survived somewhere in the retransmit machinery
        for key, op_id in unfinished:
            status, _res = client.op(key, ("incr", key, 1), op_id=op_id,
                                     timeout=2.0, attempts=10)
            if status != "ok":
                return {"seed": seed, "violations":
                        ["op %r never completed" % (op_id,)],
                        "migrations": [c.migration_metrics()
                                       for c in engine.coordinators]}
        engine.settle(duration=2.0)

        violations = engine.check()
        expected = {key: rounds for key in key_names}
        violations += check_key_conservation(rsm, expected)
        resharded = [c for c in engine.coordinators if c.state == "done"]
        for coordinator in engine.coordinators:
            if coordinator.state != "done":
                violations.append("migration to epoch %r stuck in %s"
                                  % (coordinator.epoch, coordinator.state))
        if len(cluster.directory.epochs()) != 1:
            violations.append("stale epochs not retired: %r"
                              % (cluster.directory.epochs(),))
        report = {"seed": seed, "violations": violations,
                  "plan_digest": plan.digest(),
                  "reshards": len(resharded),
                  "crashed": sorted(engine.crashed | engine.restarted),
                  "migrations": [c.migration_metrics()
                                 for c in engine.coordinators]}
        if verbose:
            print("seed %d: %s (%d reshards, %d violations)"
                  % (seed, "FAIL" if violations else "ok",
                     len(resharded), len(violations)))
        return report
    finally:
        cluster.stop()
