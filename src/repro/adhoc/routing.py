"""Byzantine-tolerant multipath routing (paper section 6, citing [24]).

In an ad-hoc network nodes cannot all talk directly; some act as
forwarders -- and a Byzantine forwarder can silently drop or corrupt
traffic.  Corruption is already caught end-to-end by the bottom layer's
signatures; *dropping* is what routing must survive.  Following the
spirit of the authors' secure-broadcast work [24], we use node-disjoint
multipath forwarding:

* route discovery is flooding-based (AODV-style) on the current radio
  graph, collecting up to ``k`` node-disjoint paths per destination;
* every unicast is forwarded along **all** of its disjoint paths; with at
  most f Byzantine relays and f + 1 disjoint paths, at least one copy
  arrives (receivers dedupe);
* a path whose copies persistently vanish is demoted, so routes heal
  around droppers without ever needing to *identify* them.

Discovery here is computed from the geometry oracle rather than by
simulated flood packets -- the paths are exactly those a flood would
find, and what the reproduction needs is their *fault* behaviour, not
their discovery cost (the control-plane cost is modelled by
``route_request_cost`` charged per discovery).
"""

from __future__ import annotations


class RouteTable:
    """Per-source routing state over a :class:`Field`."""

    def __init__(self, field, max_paths=2):
        self.field = field
        self.max_paths = max_paths
        self._cache = {}       # (src, dst) -> [paths]
        self._generation = 0
        self.discoveries = 0
        self.demotions = 0

    # ------------------------------------------------------------------
    def invalidate(self):
        """Topology changed (movement, crash): drop every cached route."""
        self._cache.clear()
        self._generation += 1

    def demote(self, src, dst, path):
        """A path's copies keep vanishing: stop using it for a while."""
        paths = self._cache.get((src, dst))
        if paths and tuple(path) in {tuple(p) for p in paths}:
            self._cache[(src, dst)] = [p for p in paths
                                       if tuple(p) != tuple(path)]
            self.demotions += 1

    # ------------------------------------------------------------------
    def paths(self, src, dst):
        """Up to ``max_paths`` node-disjoint paths src -> dst (cached)."""
        key = (src, dst)
        cached = self._cache.get(key)
        if cached:
            return cached
        found = self._discover(src, dst)
        self._cache[key] = found
        self.discoveries += 1
        return found

    def _discover(self, src, dst):
        """Successive BFS with interior-node removal: node-disjoint paths."""
        banned = set()
        paths = []
        for _attempt in range(self.max_paths):
            path = self._bfs(src, dst, banned)
            if path is None:
                break
            paths.append(path)
            banned.update(path[1:-1])  # interior relays become off-limits
        return paths

    def _bfs(self, src, dst, banned):
        if src == dst:
            return [src]
        parents = {src: None}
        frontier = [src]
        while frontier:
            node = frontier.pop(0)
            for neighbor in sorted(self.field.neighbors(node), key=repr):
                if neighbor in banned or neighbor in parents:
                    continue
                parents[neighbor] = node
                if neighbor == dst:
                    path = [dst]
                    while parents[path[-1]] is not None:
                        path.append(parents[path[-1]])
                    path.reverse()
                    return path
                frontier.append(neighbor)
        return None

    # ------------------------------------------------------------------
    def hops(self, src, dst):
        routes = self.paths(src, dst)
        return len(routes[0]) - 1 if routes else None

    def reachable(self, src, dst):
        return bool(self.paths(src, dst))

    def disjoint_count(self, src, dst):
        return len(self.paths(src, dst))
