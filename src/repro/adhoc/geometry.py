"""Geometric radio topology for the MANET extension (paper section 6).

JazzEnsemble was built for ad-hoc networks ("a group communication system
for MANET"); the ICDCS paper measures the wired cluster but names the two
missing pieces -- Byzantine routing and gossip-based stability -- as the
ongoing extension.  This module provides their substrate: nodes placed in
the unit square with a fixed radio range, the induced unit-disk
connectivity graph, and random-waypoint-style movement.
"""

from __future__ import annotations

import math


class Field:
    """Node positions in the unit square and the radio graph they induce."""

    def __init__(self, radio_range=0.35):
        self.radio_range = radio_range
        self.positions = {}

    # ------------------------------------------------------------------
    def place(self, node_id, x, y):
        if not (0.0 <= x <= 1.0 and 0.0 <= y <= 1.0):
            raise ValueError("position out of the unit square: %r" % ((x, y),))
        self.positions[node_id] = (x, y)

    def place_random(self, node_ids, rng):
        for node_id in node_ids:
            self.place(node_id, rng.random(), rng.random())

    def place_grid(self, node_ids, cols=None):
        """Deterministic placement on a grid (for reproducible tests)."""
        nodes = list(node_ids)
        if cols is None:
            cols = max(1, int(math.ceil(math.sqrt(len(nodes)))))
        rows = max(1, -(-len(nodes) // cols))
        for index, node_id in enumerate(nodes):
            col, row = index % cols, index // cols
            x = (col + 0.5) / cols
            y = (row + 0.5) / rows
            self.place(node_id, x, y)

    def move(self, node_id, dx, dy):
        x, y = self.positions[node_id]
        self.positions[node_id] = (min(1.0, max(0.0, x + dx)),
                                   min(1.0, max(0.0, y + dy)))

    def drift_random(self, rng, step=0.02):
        """One random-waypoint-ish step for every node."""
        for node_id in list(self.positions):
            angle = rng.random() * 2 * math.pi
            self.move(node_id, step * math.cos(angle), step * math.sin(angle))

    # ------------------------------------------------------------------
    def distance(self, a, b):
        ax, ay = self.positions[a]
        bx, by = self.positions[b]
        return math.hypot(ax - bx, ay - by)

    def in_range(self, a, b):
        return a != b and self.distance(a, b) <= self.radio_range

    def neighbors(self, node_id):
        return {other for other in self.positions
                if other != node_id and self.in_range(node_id, other)}

    def adjacency(self):
        return {node: self.neighbors(node) for node in self.positions}

    # ------------------------------------------------------------------
    def components(self):
        """Connected components of the radio graph."""
        remaining = set(self.positions)
        components = []
        while remaining:
            seed = next(iter(remaining))
            component = {seed}
            frontier = [seed]
            while frontier:
                node = frontier.pop()
                for neighbor in self.neighbors(node):
                    if neighbor in remaining and neighbor not in component:
                        component.add(neighbor)
                        frontier.append(neighbor)
            remaining -= component
            components.append(component)
        return components

    def is_connected(self):
        return len(self.components()) <= 1

    def shortest_hops(self, src, dst):
        """BFS hop count, or None if unreachable."""
        if src == dst:
            return 0
        seen = {src}
        frontier = [(src, 0)]
        while frontier:
            node, hops = frontier.pop(0)
            for neighbor in self.neighbors(node):
                if neighbor == dst:
                    return hops + 1
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append((neighbor, hops + 1))
        return None
