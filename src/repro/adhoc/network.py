"""Multi-hop radio network: the ad-hoc substitute for the wired Network.

Drop-in compatible with :class:`repro.sim.network.Network` (the whole
group-communication stack runs unchanged on top): ``send`` forwards along
the node-disjoint paths of the :class:`RouteTable`, charging per-hop
latency and per-relay forwarding CPU; connectivity is radio reachability,
which is symmetric and -- at the granularity of connected components --
transitive, exactly the relation the paper's model demands (section 2.1,
footnote on peer-to-peer routing restoring transitivity).

Byzantine forwarders are modelled by :class:`DroppingRelay` plans: a relay
on the path may swallow the copy; disjoint multipath delivery masks up to
(paths - 1) dropping relays per destination pair, and persistent loss
demotes the poisoned path.
"""

from __future__ import annotations

from repro.adhoc.routing import RouteTable
from repro.sim.network import Network, NetworkConfig


class AdHocNetworkConfig(NetworkConfig):
    """Radio-specific knobs on top of the base network config."""

    __slots__ = ("hop_latency", "relay_cpu", "route_request_cost")

    def __init__(self, hop_latency=1.2e-3, relay_cpu=2.5e-5,
                 route_request_cost=5.0e-5, **kw):
        kw.setdefault("jitter", 2e-4)
        super().__init__(**kw)
        self.hop_latency = hop_latency
        self.relay_cpu = relay_cpu
        self.route_request_cost = route_request_cost


class AdHocNetwork(Network):
    """The simulated MANET."""

    def __init__(self, sim, field, config=None, max_paths=2):
        self.field = field
        self.routes = RouteTable(field, max_paths=max_paths)
        self._dropping_relays = set()
        self._seen_copies = {}   # dst -> markers of already-delivered sends
        self._copy_counter = 0   # unique marker per logical send
        self.relayed_hops = 0
        self.dropped_by_relay = 0
        self.no_route = 0
        super().__init__(sim, _FieldTopology(field), config or AdHocNetworkConfig())

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def set_dropping_relays(self, relays):
        """Relays that forward nothing (Byzantine droppers)."""
        self._dropping_relays = set(relays)

    def on_movement(self):
        """Call after moving nodes: recompute connectivity and routes."""
        self.routes.invalidate()
        components = self.field.components()
        self.set_components(components)

    # ------------------------------------------------------------------
    # connectivity: radio reachability
    # ------------------------------------------------------------------
    def refresh_components(self):
        self.set_components(self.field.components())

    # ------------------------------------------------------------------
    # datagram path: multipath forwarding
    # ------------------------------------------------------------------
    def send(self, src, dst, size_bytes, payload):
        self.datagrams_sent += 1
        src_port = self._ports.get(src)
        dst_port = self._ports.get(dst)
        if src_port is None or src_port.crashed:
            self.datagrams_dropped += 1
            return
        sent_at = src_port.nic.transmit(size_bytes)
        if self.observer is not None:
            self.observer.on_datagram_sent(src, dst, size_bytes, payload)
        if dst_port is None or dst_port.crashed:
            self.datagrams_dropped += 1
            return
        self._copy_counter += 1
        marker = self._copy_counter
        if self.field.in_range(src, dst):
            self._deliver_over(src, dst, [src, dst], sent_at, payload, marker)
            return
        paths = [p for p in self.routes.paths(src, dst)
                 if self._path_alive(p)]
        if not paths:
            self.no_route += 1
            self.datagrams_dropped += 1
            return
        delivered_any = False
        for path in paths:
            if self._path_blocked(path):
                self.dropped_by_relay += 1
                continue
            self._deliver_over(src, dst, path, sent_at, payload, marker)
            delivered_any = True
        if not delivered_any:
            self.datagrams_dropped += 1

    def _path_alive(self, path):
        for relay in path[1:-1]:
            port = self._ports.get(relay)
            if port is None or port.crashed:
                return False
        return True

    def _path_blocked(self, path):
        return any(relay in self._dropping_relays for relay in path[1:-1])

    def _deliver_over(self, src, dst, path, sent_at, payload, marker):
        hops = len(path) - 1
        self.relayed_hops += max(0, hops - 1)
        rng = self.sim.rng
        if self.config.drop_prob:
            # each radio hop is an independent loss opportunity
            for _hop in range(hops):
                if rng.random() < self.config.drop_prob:
                    self.datagrams_dropped += 1
                    return
        delay = hops * self.config.hop_latency
        if self.config.jitter:
            delay += rng.random() * self.config.jitter * hops
        self.sim.schedule_at(sent_at + delay, self._deliver_dedup,
                             dst, src, payload, marker)

    # receivers dedupe multipath copies by explicit per-send markers
    def _deliver_dedup(self, dst, src, payload, marker):
        port = self._ports.get(dst)
        if port is None or port.crashed:
            self.datagrams_dropped += 1
            return
        seen = self._seen_copies.setdefault(dst, set())
        if marker in seen:
            return  # another disjoint path already delivered this send
        seen.add(marker)
        if len(seen) > 65536:
            # markers grow monotonically; keep only the recent half
            cutoff = self._copy_counter - 32768
            self._seen_copies[dst] = {m for m in seen if m > cutoff}
        self.datagrams_delivered += 1
        if self.observer is not None:
            self.observer.on_datagram_delivered(dst, src, payload)
        port.deliver(src, payload)

    # ------------------------------------------------------------------
    # radio gossip: one broadcast reaches the whole component via flooding
    # ------------------------------------------------------------------
    def gossip_cast(self, src, size_bytes, payload):
        src_port = self._ports.get(src)
        if src_port is None or src_port.crashed:
            return
        sent_at = src_port.nic.transmit(size_bytes)
        if self.observer is not None:
            self.observer.on_gossip_sent(src, size_bytes)
        component = None
        for comp in self.field.components():
            if src in comp:
                component = comp
                break
        if component is None:
            return
        for node_id in sorted(component, key=repr):
            if node_id == src:
                continue
            port = self._ports.get(node_id)
            if port is None or port.crashed or port.gossip_deliver is None:
                continue
            hops = self.field.shortest_hops(src, node_id) or 1
            delay = hops * self.config.hop_latency
            self.sim.schedule_at(sent_at + delay, self._deliver_gossip,
                                 node_id, src, payload)


class _FieldTopology:
    """Adapter: the Network base class wants a Topology for NIC placement."""

    nic_bandwidth_bps = 11e6  # 802.11b-era radio
    per_packet_overhead_bytes = 50

    def __init__(self, field):
        self.field = field
        self.n = len(field.positions)

    def latency(self, src, dst):
        return 1.2e-3  # single-hop airtime; multi-hop handled by AdHocNetwork

    def nic_id(self, node):
        return node
