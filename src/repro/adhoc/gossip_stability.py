"""Gossip-based stability protocol (paper section 6, citing [29]).

The wired stack learns stability from every member broadcasting its ack
vector -- O(n) datagrams per member per interval, which a multi-hop radio
network cannot afford.  The named extension replaces it with gossip: each
round, every node exchanges its *aggregated minimum ack matrix* with a few
random peers; minima are monotone, so the matrices converge to the true
stability watermark in O(log n) rounds with O(fanout) messages per node
per round.

This module is self-contained (it gossips through any ``send(peer,
payload)`` callable) so it can be driven by the simulated MANET, compared
against the broadcast scheme in the benches, and unit-tested in isolation.

A Byzantine gossiper can only *understate* others' acks (slowing
stability, a liveness nuisance bounded by the aging of its influence) --
it cannot overstate its own beyond what it signs, and overstating others
is capped by taking the entry-wise minimum against the origin's own
signed self-report when available.
"""

from __future__ import annotations


class GossipStability:
    """One node's aggregated view of everyone's acknowledgement progress.

    The matrix maps ``member -> {stream_key -> cum_acked}``; stability of
    a message at seq s on ``stream_key`` is ``s <= min over members``.
    """

    def __init__(self, node_id, members, send, rng, fanout=2):
        self.node_id = node_id
        self.members = list(members)
        self.send = send
        self.rng = rng
        self.fanout = fanout
        self.matrix = {member: {} for member in self.members}
        self.rounds = 0
        self.messages_sent = 0

    # ------------------------------------------------------------------
    # local input
    # ------------------------------------------------------------------
    def update_local(self, acks):
        """Record this node's own acknowledgement vector."""
        own = self.matrix.setdefault(self.node_id, {})
        for stream_key, cum in acks.items():
            if cum > own.get(stream_key, 0):
                own[stream_key] = cum

    # ------------------------------------------------------------------
    # gossip exchange
    # ------------------------------------------------------------------
    def tick(self):
        """One gossip round: push our matrix to ``fanout`` random peers."""
        self.rounds += 1
        peers = [m for m in self.members if m != self.node_id]
        if not peers:
            return
        self.rng.shuffle(peers)
        snapshot = self.snapshot_wire()
        for peer in peers[: self.fanout]:
            self.messages_sent += 1
            self.send(peer, ("gstab", snapshot))

    def snapshot_wire(self):
        rows = [(member, tuple(sorted(entries.items(), key=repr)))
                for member, entries in self.matrix.items() if entries]
        rows.sort(key=repr)
        return tuple(rows)

    def on_gossip(self, payload):
        """Merge a peer's matrix: entry-wise maximum per (member, stream).

        Maxima are safe for *ack* knowledge (acks are monotone facts);
        stability still takes the minimum across members, so a lying
        gossiper raising a member's entry can only claim that member acked
        something -- the same power it already has by forging that
        member's ack in the broadcast scheme, and prevented there and here
        by the bottom layer's signatures in the integrated stack.
        """
        if (not isinstance(payload, tuple) or len(payload) != 2
                or payload[0] != "gstab"):
            return False
        try:
            for member, entries in payload[1]:
                if member not in self.matrix:
                    continue
                table = self.matrix[member]
                for stream_key, cum in entries:
                    if isinstance(cum, int) and cum > table.get(stream_key, 0):
                        table[stream_key] = cum
        except (TypeError, ValueError):
            return False
        return True

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def stable_watermark(self, stream_key, members=None):
        """Highest seq acked by *every* member (0 if anyone is unknown)."""
        lowest = None
        for member in (members if members is not None else self.members):
            value = self.matrix.get(member, {}).get(stream_key, 0)
            if lowest is None or value < lowest:
                lowest = value
        return lowest or 0

    def is_stable(self, stream_key, seq, members=None):
        return seq <= self.stable_watermark(stream_key, members)

    def knowledge_fraction(self, stream_key, seq):
        """How many members we *know* have acked (stream, seq)."""
        known = sum(1 for member in self.members
                    if self.matrix.get(member, {}).get(stream_key, 0) >= seq)
        return known / float(len(self.members))


def simulate_convergence(n, seed=0, fanout=2, stream_key=("s", "a"),
                         transport_loss=0.0):
    """Measure rounds/messages until everyone knows full stability.

    Standalone driver used by tests and the adhoc bench: node 0's message
    at seq 1 is acked by everyone at round 0; count the gossip rounds until
    every node's watermark reaches it, and the messages spent.
    """
    import random
    rng = random.Random(seed)
    members = list(range(n))
    inboxes = {m: [] for m in members}
    nodes = {}
    for member in members:
        def send(peer, payload, member=member):
            if transport_loss and rng.random() < transport_loss:
                return
            inboxes[peer].append(payload)
        nodes[member] = GossipStability(member, members, send,
                                        random.Random(seed + member),
                                        fanout=fanout)
        nodes[member].update_local({stream_key: 1})
    rounds = 0
    while not all(node.is_stable(stream_key, 1) for node in nodes.values()):
        rounds += 1
        if rounds > 10 * n + 50:
            break
        for node in nodes.values():
            node.tick()
        for member, inbox in inboxes.items():
            for payload in inbox:
                nodes[member].on_gossip(payload)
            inbox.clear()
    messages = sum(node.messages_sent for node in nodes.values())
    converged = all(node.is_stable(stream_key, 1) for node in nodes.values())
    return {"rounds": rounds, "messages": messages, "converged": converged,
            "messages_per_node": messages / float(n)}
