"""MANET extension (paper section 6): Byzantine routing + gossip stability.

The ongoing-work section of the paper names two pieces needed to take
JazzEnsemble's Byzantine stack to ad-hoc networks: a Byzantine routing
mechanism (their [24]) and a gossip-based stability protocol (their
[29]).  This subpackage builds both on a geometric radio model, and
``Group.bootstrap_adhoc`` runs the *unchanged* group-communication stack
on top of them.
"""

from repro.adhoc.geometry import Field
from repro.adhoc.gossip_stability import GossipStability, simulate_convergence
from repro.adhoc.network import AdHocNetwork, AdHocNetworkConfig
from repro.adhoc.routing import RouteTable

__all__ = [
    "AdHocNetwork",
    "AdHocNetworkConfig",
    "Field",
    "GossipStability",
    "RouteTable",
    "simulate_convergence",
]
