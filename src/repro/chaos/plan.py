"""Declarative fault plans: the chaos plane's input language.

A :class:`FaultPlan` is a JSON-serializable recipe for one adversarial
run: cluster size, configuration overrides, and an ordered op script --
traffic, timed crash/restart, leaves and joins, partition churn, per-link
packet corruption/duplication/loss, per-node clock skew and NIC
degradation, and Byzantine activations.  Plans are what the campaign
runner sweeps, what the shrinker minimizes, and what
``python -m repro chaos --replay`` replays.

Op vocabulary (each op is a JSON list, name first)::

    ["cast", sender, count]            sender broadcasts count app casts
    ["run", seconds]                   advance the simulation
    ["crash", node]                    crash-stop a node
    ["restart", node]                  reboot a crashed node (rejoins)
    ["leave", node]                    graceful leave
    ["join", node]                     spawn a fresh node that merges in
    ["partition", [[...], [...]]]      connectivity components
    ["heal"]                           reconnect everything
    ["byzantine", node, name, params]  activate a behaviors.<name> villain
    ["byzantine_at", node, name, params]  turn a live node Byzantine NOW
    ["drop", src, dst, prob]           per-link loss (None = wildcard)
    ["corrupt", src, dst, prob]        per-link payload corruption
    ["duplicate", src, dst, prob]      per-link duplication
    ["nic", node, factor]              scale a node's NIC bandwidth
    ["skew", node, drift]              scale a node's timer delays
    ["clear_faults"]                   lift all link faults
    ["reshard_at", delta]              start a live reshard NOW (sharded
                                       planes; +-delta ring shards)

Every op is *tolerant*: an op whose target does not exist (or is in the
wrong state) is a no-op.  That property is what makes delta-debugging
shrinking sound -- any subset of a plan's ops is itself a valid plan.
"""

from __future__ import annotations

import hashlib
import json
import random

#: ops the random generator draws from by default.  ``corrupt`` is NOT in
#: the default mix: with ``crypto="none"`` corruption is undetectable (the
#: paper's model assumes authenticated channels), so it belongs in
#: campaigns that also set a real crypto scheme.
DEFAULT_OPS = ("cast", "run", "crash", "restart", "leave", "partition",
               "heal", "join", "drop", "duplicate", "nic", "skew",
               "clear_faults")

#: the tournament's richer vocabulary: everything above plus mid-run
#: Byzantine activation.  Kept OUT of ``DEFAULT_OPS`` on purpose --
#: extending that tuple would shift ``rng.choice`` draw order and silently
#: re-seed every recorded chaos-smoke campaign.
ADVERSARY_OPS = DEFAULT_OPS + ("byzantine_at",)

#: the sharded campaign's vocabulary: the defaults plus a mid-run live
#: reshard.  A separate tuple for the same draw-order reason as above --
#: only sharded planes (repro.shard.chaos) can act on ``reshard_at``;
#: the single-group engine treats it as a tolerant no-op.
RESHARD_OPS = DEFAULT_OPS + ("reshard_at",)

#: behaviors the generator may schedule mid-run via ``byzantine_at``
RUNTIME_BEHAVIORS = ("MuteNode", "VerboseNode", "TwoFacedCaster",
                     "Equivocator", "TargetedSlanderer", "ReplayStorm")

_PLAN_FIELDS = ("seed", "n", "ops", "config", "net", "check")


class FaultPlan:
    """One declarative, replayable chaos scenario."""

    def __init__(self, seed=0, n=6, ops=(), config=None, net=None,
                 check=None):
        self.seed = seed
        self.n = n
        self.ops = [list(op) for op in ops]
        #: StackConfig keyword overrides (e.g. {"crypto": "sym"})
        self.config = dict(config or {})
        #: NetworkConfig keyword overrides (e.g. {"drop_prob": 0.1})
        self.net = dict(net or {})
        #: property-checker options ({"content_agreement": ..,
        #: "total_order": ..}); defaults follow the stack config
        self.check = dict(check or {})

    # ------------------------------------------------------------------
    def replace_ops(self, ops):
        """A copy of this plan with a different op script (shrinking)."""
        return FaultPlan(seed=self.seed, n=self.n, ops=ops,
                         config=self.config, net=self.net, check=self.check)

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self):
        return {"seed": self.seed, "n": self.n, "ops": self.ops,
                "config": self.config, "net": self.net, "check": self.check}

    @classmethod
    def from_dict(cls, data):
        return cls(**{key: data.get(key) for key in _PLAN_FIELDS
                      if data.get(key) is not None})

    def to_json(self, indent=2):
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def digest(self):
        """Stable content hash of this plan (campaign report identity)."""
        canonical = json.dumps(self.to_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    @classmethod
    def from_json(cls, text):
        return cls.from_dict(json.loads(text))

    def save(self, path):
        with open(path, "w") as fh:
            fh.write(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path):
        with open(path) as fh:
            return cls.from_json(fh.read())

    # ------------------------------------------------------------------
    def __len__(self):
        return len(self.ops)

    def __eq__(self, other):
        return (isinstance(other, FaultPlan)
                and self.to_dict() == other.to_dict())

    def __repr__(self):
        return "FaultPlan(seed={}, n={}, ops={})".format(
            self.seed, self.n, len(self.ops))


def _runtime_params(rng, kind):
    """Draw constructor params for a ``byzantine_at``-scheduled behavior."""
    if kind == "MuteNode":
        return {"mute_at": round(rng.uniform(0.0, 0.2), 4)}
    if kind == "VerboseNode":
        return {"start_at": round(rng.uniform(0.0, 0.2), 4)}
    if kind == "Equivocator":
        return {"start_at": round(rng.uniform(0.0, 0.2), 4)}
    if kind == "TargetedSlanderer":
        return {"start_at": round(rng.uniform(0.0, 0.1), 4),
                "interval": rng.choice((0.002, 0.004, 0.01))}
    if kind == "ReplayStorm":
        return {"start_at": round(rng.uniform(0.0, 0.1), 4),
                "interval": rng.choice((0.01, 0.02, 0.05)),
                "burst": rng.randint(2, 12),
                "spoof_incarnation": rng.random() < 0.5}
    return {}


def random_plan(seed, n=None, ops=12, allow=DEFAULT_OPS,
                byzantine_fraction=0.3, config=None, net=None, check=None):
    """Draw one random fault plan (the campaign runner's generator).

    The generator is *state-blind*: it tracks its own model of which
    nodes it crashed or evicted, never the simulation (which it has not
    run).  The engine's tolerant op semantics absorb any divergence.
    """
    rng = random.Random(seed)
    n = n or rng.randint(6, 10)
    plan_ops = []
    crashed = set()
    left = set()
    villain = None
    next_join = 1000
    skewed_or_degraded = set()

    if rng.random() < byzantine_fraction:
        villain = rng.randrange(n)
        kind = rng.choice(("MuteNode", "VerboseNode", "TwoFacedCaster"))
        params = {}
        if kind == "MuteNode":
            params = {"mute_at": round(rng.uniform(0.05, 0.3), 4)}
        elif kind == "VerboseNode":
            params = {"start_at": round(rng.uniform(0.05, 0.3), 4)}
        plan_ops.append(["byzantine", villain, kind, params])

    turned = set()   # nodes flipped Byzantine mid-run via byzantine_at

    def alive():
        return [node for node in range(n)
                if node not in crashed and node not in left
                and node != villain and node not in turned]

    quorum_floor = max(3, (2 * n) // 3)
    for _step in range(ops):
        op = rng.choice(allow)
        live = alive()
        if op == "cast":
            if not live:
                continue
            plan_ops.append(["cast", rng.choice(live), rng.randint(1, 12)])
        elif op == "run":
            plan_ops.append(["run", rng.choice((0.05, 0.1, 0.3, 0.6))])
        elif op == "crash":
            if len(live) <= quorum_floor:
                continue
            victim = rng.choice(live)
            crashed.add(victim)
            plan_ops.append(["crash", victim])
        elif op == "restart":
            candidates = sorted(crashed - left)
            if not candidates:
                continue
            node = rng.choice(candidates)
            crashed.discard(node)
            plan_ops.append(["restart", node])
        elif op == "leave":
            if len(live) <= quorum_floor:
                continue
            leaver = rng.choice(live)
            left.add(leaver)
            plan_ops.append(["leave", leaver])
        elif op == "partition":
            if len(live) < 4:
                continue
            rng.shuffle(live)
            split = rng.randint(1, len(live) - 1)
            side_a = sorted(set(live[:split]) | crashed, key=repr)
            side_b = sorted(live[split:], key=repr)
            plan_ops.append(["partition", [side_a, side_b]])
        elif op == "heal":
            plan_ops.append(["heal"])
        elif op == "join":
            plan_ops.append(["join", next_join])
            next_join += 1
        elif op in ("drop", "corrupt", "duplicate"):
            src = rng.choice(live) if live and rng.random() < 0.5 else None
            prob = rng.choice((0.05, 0.1, 0.2, 0.3))
            plan_ops.append([op, src, None, prob])
        elif op == "nic":
            if not live:
                continue
            node = rng.choice(live)
            skewed_or_degraded.add(node)
            plan_ops.append(["nic", node, rng.choice((0.05, 0.2, 0.5))])
        elif op == "skew":
            if not live:
                continue
            node = rng.choice(live)
            skewed_or_degraded.add(node)
            plan_ops.append(["skew", node, round(rng.uniform(0.7, 1.4), 3)])
        elif op == "clear_faults":
            plan_ops.append(["clear_faults"])
        elif op == "reshard_at":
            # at most one scripted reshard per plan: the engine refuses
            # overlapping migrations, and one epoch seam per run is what
            # the campaign's key-conservation check reasons about
            if any(existing[0] == "reshard_at" for existing in plan_ops):
                continue
            plan_ops.append(["reshard_at", rng.choice((-1, 1))])
        elif op == "byzantine_at":
            # keep a correct supermajority: at most one mid-run villain on
            # top of the build-time one, and never below the quorum floor
            if turned or len(live) <= quorum_floor:
                continue
            node = rng.choice(live)
            kind = rng.choice(RUNTIME_BEHAVIORS)
            params = _runtime_params(rng, kind)
            turned.add(node)
            plan_ops.append(["byzantine_at", node, kind, params])
        else:
            raise ValueError("unknown op in allow list: %r" % (op,))
    return FaultPlan(seed=seed, n=n, ops=plan_ops, config=config, net=net,
                     check=check)
