"""Campaign runner: sweep many fault plans, shrink what fails.

Two sweep shapes:

* :func:`run_random_campaign` -- one :func:`~repro.chaos.plan.random_plan`
  per seed (the fuzzing mode CI's chaos-smoke job runs);
* :func:`run_grid_campaign` -- a deterministic scripted workload replayed
  across a (drop-rate x corruption-rate) grid, for mapping where the
  stack's recovery machinery saturates.

Every failing plan is re-run through the ddmin shrinker (unless disabled)
and the minimized, still-failing, deterministic plan is written next to a
``summary.json`` so a human -- or ``python -m repro chaos --replay`` --
can reproduce the bug from one small JSON file.
"""

from __future__ import annotations

import json
import os

from repro.chaos.engine import run_plan
from repro.chaos.plan import DEFAULT_OPS, FaultPlan, random_plan
from repro.chaos.shrink import shrink_plan


#: current campaign report schema version (see docs/ROBUSTNESS.md)
REPORT_SCHEMA = 2


def _violation_kinds(violations):
    """The distinct violation *categories*: the text before each ':'."""
    kinds = []
    for violation in violations:
        kind = str(violation).split(":", 1)[0].strip()
        if kind not in kinds:
            kinds.append(kind)
    return kinds


def load_report(source):
    """A summary dict from a path, JSON text, or an already-parsed dict."""
    if isinstance(source, dict):
        return source
    if isinstance(source, str) and os.path.exists(source):
        with open(source) as fh:
            return json.load(fh)
    return json.loads(source)


def run_random_campaign(seeds, n=None, ops=12, allow=DEFAULT_OPS,
                        byzantine_fraction=0.3, config=None, net=None,
                        check=None, shrink=True, settle=2.0, out_dir=None,
                        log=None, resume_from=None):
    """Run one random plan per seed; returns the campaign summary dict.

    The summary carries the stable schema-2 report: ``"results"`` holds
    one record per seed::

        {"seed": .., "plan_hash": "...", "verdict": "pass"|"fail",
         "violation_kinds": [..], "events_processed": .., "ops": ..}

    plus the legacy ``"failures"`` records (full plan, violations,
    minimized counterexample) kept for replay tooling.  ``minimized`` is
    guaranteed to (a) contain strictly no more ops than the original, and
    (b) still fail -- it is re-verified after shrinking.

    With ``resume_from`` (a prior summary: path, JSON text, or dict) the
    sweep skips every seed that report already covers and merges its
    records, so an interrupted campaign continues instead of restarting.
    When ``out_dir`` is set the summary is rewritten after every seed --
    the on-disk report is always a valid resume point.
    """
    log = log or (lambda line: None)
    failures = []
    results = []
    done = set()
    if resume_from is not None:
        prior = load_report(resume_from)
        for record in prior.get("results", ()):
            results.append(record)
            done.add(record["seed"])
        for record in prior.get("failures", ()):
            failures.append(record)
        if done:
            log("resuming: %d seeds already recorded" % (len(done),))
    summary = {"schema": REPORT_SCHEMA, "kind": "random",
               "params": {"n": n, "ops": ops, "allow": list(allow),
                          "byzantine_fraction": byzantine_fraction,
                          "config": dict(config or {}),
                          "net": dict(net or {}),
                          "check": dict(check or {}), "settle": settle},
               "seeds": 0, "passed": 0, "failed": 0,
               "results": results, "failures": failures}

    def _refresh_counts():
        summary["seeds"] = len(results)
        summary["failed"] = sum(1 for r in results if r["verdict"] == "fail")
        summary["passed"] = summary["seeds"] - summary["failed"]

    for seed in seeds:
        if seed in done:
            continue
        done.add(seed)
        plan = random_plan(seed, n=n, ops=ops, allow=allow,
                           byzantine_fraction=byzantine_fraction,
                           config=config, net=net, check=check)
        violations, engine = run_plan(plan, settle=settle)
        result = {"seed": seed, "plan_hash": plan.digest(),
                  "verdict": "fail" if violations else "pass",
                  "violation_kinds": _violation_kinds(violations),
                  "events_processed": engine.group.sim.events_processed,
                  "ops": len(plan)}
        results.append(result)
        if not violations:
            log("seed %r: ok (%d ops)" % (seed, len(plan)))
        else:
            log("seed %r: FAIL (%d violations, %d ops)"
                % (seed, len(violations), len(plan)))
            record = {"seed": seed, "plan": plan.to_dict(),
                      "violations": violations,
                      "minimized": None, "minimized_violations": []}
            if shrink:
                small = shrink_plan(plan)
                # shrink_plan's cache says the minimized plan fails; re-run
                # it once more from scratch so the artifact we publish is
                # independently verified, not just remembered
                small_violations, _engine = run_plan(small, settle=settle)
                if small_violations:
                    record["minimized"] = small.to_dict()
                    record["minimized_violations"] = small_violations
                    log("seed %r: shrunk %d -> %d ops"
                        % (seed, len(plan), len(small)))
            failures.append(record)
        _refresh_counts()
        if out_dir:
            # incremental: every seed leaves a complete, resumable report
            _write_artifacts(summary, out_dir, log, quiet=True)
    _refresh_counts()
    if out_dir:
        _write_artifacts(summary, out_dir, log)
    return summary


def _write_artifacts(summary, out_dir, log, quiet=False):
    os.makedirs(out_dir, exist_ok=True)
    for record in summary["failures"]:
        best = record["minimized"] or record["plan"]
        path = os.path.join(out_dir,
                            "counterexample-seed%s.json" % (record["seed"],))
        FaultPlan.from_dict(best).save(path)
        if not quiet:
            log("wrote %s" % (path,))
    path = os.path.join(out_dir, "summary.json")
    tmp = path + ".tmp"
    # write-then-rename: a campaign killed mid-dump never leaves a torn
    # summary.json behind, so the report is always a valid resume input
    with open(tmp, "w") as fh:
        json.dump(summary, fh, indent=2, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)
    if not quiet:
        log("wrote %s" % (path,))


# ----------------------------------------------------------------------
# grid sweeps
# ----------------------------------------------------------------------
def grid_plan(seed, n, drop=0.0, corrupt=0.0, config=None, check=None):
    """A fixed scripted workload under one (drop, corrupt) fault cell.

    The script exercises the recovery paths the faults stress: bursts
    from several senders (retransmission under loss), a crash and its
    eviction (membership under loss), more traffic in the shrunk view.
    """
    ops = []
    if drop:
        ops.append(["drop", None, None, drop])
    if corrupt:
        ops.append(["corrupt", None, None, corrupt])
    ops += [
        ["cast", 0, 6], ["run", 0.3],
        ["cast", 1, 6], ["run", 0.3],
        ["crash", n - 1], ["run", 0.4],
        ["cast", 2, 6], ["run", 0.6],
    ]
    return FaultPlan(seed=seed, n=n, ops=ops, config=config, check=check)


def run_grid_campaign(drops=(0.0, 0.1, 0.2, 0.3), corrupts=(0.0,),
                      n=6, seed=0, config=None, check=None, shrink=True,
                      settle=2.0, out_dir=None, log=None):
    """Sweep the scripted workload over a fault grid; returns the summary.

    Note: corruption is only *detectable* with a real crypto scheme --
    pass ``config={"crypto": "sym"}`` (or ``"pub"``) for corrupt cells.
    """
    log = log or (lambda line: None)
    failures = []
    cells = []
    results = []
    for drop in drops:
        for corrupt in corrupts:
            plan = grid_plan(seed, n, drop=drop, corrupt=corrupt,
                             config=config, check=check)
            violations, engine = run_plan(plan, settle=settle)
            cell = {"drop": drop, "corrupt": corrupt,
                    "violations": violations}
            cells.append(cell)
            results.append({
                "seed": seed, "drop": drop, "corrupt": corrupt,
                "plan_hash": plan.digest(),
                "verdict": "fail" if violations else "pass",
                "violation_kinds": _violation_kinds(violations),
                "events_processed": engine.group.sim.events_processed,
                "ops": len(plan)})
            if violations:
                log("cell drop=%s corrupt=%s: FAIL (%d violations)"
                    % (drop, corrupt, len(violations)))
                record = {"seed": seed, "plan": plan.to_dict(),
                          "violations": violations,
                          "minimized": None, "minimized_violations": []}
                if shrink:
                    small = shrink_plan(plan)
                    small_violations, _engine = run_plan(small,
                                                         settle=settle)
                    if small_violations:
                        record["minimized"] = small.to_dict()
                        record["minimized_violations"] = small_violations
                failures.append(record)
            else:
                log("cell drop=%s corrupt=%s: ok" % (drop, corrupt))
    summary = {"schema": REPORT_SCHEMA, "kind": "grid",
               "params": {"n": n, "seed": seed, "drops": list(drops),
                          "corrupts": list(corrupts),
                          "config": dict(config or {}),
                          "check": dict(check or {}), "settle": settle},
               "seeds": len(cells), "passed": len(cells) - len(failures),
               "failed": len(failures), "failures": failures,
               "results": results, "grid": cells}
    if out_dir:
        _write_artifacts(summary, out_dir, log)
    return summary
