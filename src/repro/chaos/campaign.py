"""Campaign runner: sweep many fault plans, shrink what fails.

Two sweep shapes:

* :func:`run_random_campaign` -- one :func:`~repro.chaos.plan.random_plan`
  per seed (the fuzzing mode CI's chaos-smoke job runs);
* :func:`run_grid_campaign` -- a deterministic scripted workload replayed
  across a (drop-rate x corruption-rate) grid, for mapping where the
  stack's recovery machinery saturates.

Every failing plan is re-run through the ddmin shrinker (unless disabled)
and the minimized, still-failing, deterministic plan is written next to a
``summary.json`` so a human -- or ``python -m repro chaos --replay`` --
can reproduce the bug from one small JSON file.
"""

from __future__ import annotations

import json
import os

from repro.chaos.engine import run_plan
from repro.chaos.plan import DEFAULT_OPS, FaultPlan, random_plan
from repro.chaos.shrink import shrink_plan


def run_random_campaign(seeds, n=None, ops=12, allow=DEFAULT_OPS,
                        byzantine_fraction=0.3, config=None, net=None,
                        check=None, shrink=True, settle=2.0, out_dir=None,
                        log=None):
    """Run one random plan per seed; returns the campaign summary dict.

    The summary maps ``"failures"`` to one record per failing seed::

        {"seed": .., "plan": {..}, "violations": [..],
         "minimized": {..} | None, "minimized_violations": [..]}

    ``minimized`` is guaranteed to (a) contain strictly no more ops than
    the original, and (b) still fail -- it is re-verified after shrinking.
    """
    log = log or (lambda line: None)
    failures = []
    passed = 0
    for seed in seeds:
        plan = random_plan(seed, n=n, ops=ops, allow=allow,
                           byzantine_fraction=byzantine_fraction,
                           config=config, net=net, check=check)
        violations, _engine = run_plan(plan, settle=settle)
        if not violations:
            passed += 1
            log("seed %r: ok (%d ops)" % (seed, len(plan)))
            continue
        log("seed %r: FAIL (%d violations, %d ops)"
            % (seed, len(violations), len(plan)))
        record = {"seed": seed, "plan": plan.to_dict(),
                  "violations": violations,
                  "minimized": None, "minimized_violations": []}
        if shrink:
            small = shrink_plan(plan)
            # shrink_plan's cache says the minimized plan fails; re-run it
            # once more from scratch so the artifact we publish is
            # independently verified, not just remembered
            small_violations, _engine = run_plan(small, settle=settle)
            if small_violations:
                record["minimized"] = small.to_dict()
                record["minimized_violations"] = small_violations
                log("seed %r: shrunk %d -> %d ops"
                    % (seed, len(plan), len(small)))
        failures.append(record)
    summary = {"seeds": len(list(seeds)) if not hasattr(seeds, "__len__")
               else len(seeds),
               "passed": passed, "failed": len(failures),
               "failures": failures}
    if out_dir:
        _write_artifacts(summary, out_dir, log)
    return summary


def _write_artifacts(summary, out_dir, log):
    os.makedirs(out_dir, exist_ok=True)
    for record in summary["failures"]:
        best = record["minimized"] or record["plan"]
        path = os.path.join(out_dir,
                            "counterexample-seed%s.json" % (record["seed"],))
        FaultPlan.from_dict(best).save(path)
        log("wrote %s" % (path,))
    path = os.path.join(out_dir, "summary.json")
    with open(path, "w") as fh:
        json.dump(summary, fh, indent=2, sort_keys=True)
        fh.write("\n")
    log("wrote %s" % (path,))


# ----------------------------------------------------------------------
# grid sweeps
# ----------------------------------------------------------------------
def grid_plan(seed, n, drop=0.0, corrupt=0.0, config=None, check=None):
    """A fixed scripted workload under one (drop, corrupt) fault cell.

    The script exercises the recovery paths the faults stress: bursts
    from several senders (retransmission under loss), a crash and its
    eviction (membership under loss), more traffic in the shrunk view.
    """
    ops = []
    if drop:
        ops.append(["drop", None, None, drop])
    if corrupt:
        ops.append(["corrupt", None, None, corrupt])
    ops += [
        ["cast", 0, 6], ["run", 0.3],
        ["cast", 1, 6], ["run", 0.3],
        ["crash", n - 1], ["run", 0.4],
        ["cast", 2, 6], ["run", 0.6],
    ]
    return FaultPlan(seed=seed, n=n, ops=ops, config=config, check=check)


def run_grid_campaign(drops=(0.0, 0.1, 0.2, 0.3), corrupts=(0.0,),
                      n=6, seed=0, config=None, check=None, shrink=True,
                      settle=2.0, out_dir=None, log=None):
    """Sweep the scripted workload over a fault grid; returns the summary.

    Note: corruption is only *detectable* with a real crypto scheme --
    pass ``config={"crypto": "sym"}`` (or ``"pub"``) for corrupt cells.
    """
    log = log or (lambda line: None)
    failures = []
    cells = []
    for drop in drops:
        for corrupt in corrupts:
            plan = grid_plan(seed, n, drop=drop, corrupt=corrupt,
                             config=config, check=check)
            violations, _engine = run_plan(plan, settle=settle)
            cell = {"drop": drop, "corrupt": corrupt,
                    "violations": violations}
            cells.append(cell)
            if violations:
                log("cell drop=%s corrupt=%s: FAIL (%d violations)"
                    % (drop, corrupt, len(violations)))
                record = {"seed": seed, "plan": plan.to_dict(),
                          "violations": violations,
                          "minimized": None, "minimized_violations": []}
                if shrink:
                    small = shrink_plan(plan)
                    small_violations, _engine = run_plan(small,
                                                         settle=settle)
                    if small_violations:
                        record["minimized"] = small.to_dict()
                        record["minimized_violations"] = small_violations
                failures.append(record)
            else:
                log("cell drop=%s corrupt=%s: ok" % (drop, corrupt))
    summary = {"seeds": len(cells), "passed": len(cells) - len(failures),
               "failed": len(failures), "failures": failures,
               "grid": cells}
    if out_dir:
        _write_artifacts(summary, out_dir, log)
    return summary
