"""Chaos plane: declarative fault campaigns against the protocol stack.

Public surface:

* :class:`~repro.chaos.plan.FaultPlan` / :func:`~repro.chaos.plan.random_plan`
  -- the JSON-serializable fault-scenario language;
* :class:`~repro.chaos.engine.ChaosEngine` / :func:`~repro.chaos.engine.run_plan`
  -- build a cluster from a plan and execute it;
* :class:`~repro.chaos.engine.LinkFaults` -- the per-link packet mangler
  installed on ``Network.chaos``;
* :func:`~repro.chaos.shrink.shrink_plan` -- ddmin counterexample
  minimization;
* :func:`~repro.chaos.campaign.run_random_campaign` /
  :func:`~repro.chaos.campaign.run_grid_campaign` -- sweep runners.

See ``docs/ROBUSTNESS.md`` for the fault taxonomy and workflow.
"""

from repro.chaos.campaign import (grid_plan, run_grid_campaign,
                                  run_random_campaign)
from repro.chaos.engine import ChaosEngine, LinkFaults, run_plan
from repro.chaos.plan import (ADVERSARY_OPS, DEFAULT_OPS, RUNTIME_BEHAVIORS,
                              FaultPlan, random_plan)
from repro.chaos.shrink import shrink_plan

__all__ = [
    "ADVERSARY_OPS", "ChaosEngine", "DEFAULT_OPS", "FaultPlan", "LinkFaults",
    "RUNTIME_BEHAVIORS", "grid_plan", "random_plan", "run_grid_campaign",
    "run_plan", "run_random_campaign", "shrink_plan",
]
