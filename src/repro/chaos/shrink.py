"""Counterexample shrinking: ddmin over a failing plan's op script.

A random campaign's counterexamples are long and mostly noise -- a dozen
ops of which two matter.  This module minimizes them with the classic
delta-debugging algorithm (Zeller & Hildebrandt, *Simplifying and
Isolating Failure-Inducing Input*, TSE 2002): repeatedly try subsets and
complements of the op list at increasing granularity, keeping any smaller
script that still fails the property checker.

Soundness rests on two properties of the chaos engine:

* ops are tolerant -- any subsequence of a valid script is a valid script;
* runs are deterministic -- the same (seed, ops) pair always produces the
  same violations, so one failing re-run is proof, and results can be
  cached by op-list identity.

The result is *1-minimal*: removing any single remaining op makes the
failure disappear.  After op-removal converges a second pass minimizes
the *scalar fields* of the surviving ops -- cast counts toward 1, run
times and fault probabilities down their generator ladders, NIC/skew
factors toward 1.0 -- so the shrunk plan carries the smallest constants
that still reproduce, not whatever the random generator happened to draw.
That is exactly the replayable artifact a human wants to debug from.
"""

from __future__ import annotations

from repro.chaos.engine import run_plan

#: per-op scalar fields eligible for minimization: op name -> list of
#: (index-into-op, kind).  Kinds pick the candidate ladder in
#: :func:`_scalar_candidates`.
_SCALAR_FIELDS = {
    "cast": [(2, "count")],
    "run": [(1, "time")],
    "drop": [(3, "prob")],
    "corrupt": [(3, "prob")],
    "duplicate": [(3, "prob")],
    "nic": [(2, "factor")],
    "skew": [(2, "factor")],
    "byzantine": [(3, "params")],
    "byzantine_at": [(3, "params")],
}


def _scalar_candidates(kind, value):
    """Smaller-but-plausible replacements for ``value``, most aggressive
    first.  Every candidate must be strictly 'simpler' so the pass cannot
    cycle; ladders mirror what :func:`~repro.chaos.plan.random_plan`
    draws, keeping shrunk plans inside the generator's vocabulary.
    """
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        return []
    if kind == "count":
        out = [1, value // 2] if isinstance(value, int) and value > 1 else []
        return [c for c in out if 1 <= c < value]
    if kind == "time":
        ladder = (0.05, 0.1, 0.3, 0.6, 1.0)
        return [t for t in ladder if t < value]
    if kind == "prob":
        ladder = (0.05, 0.1, 0.2, 0.5)
        return [p for p in ladder if p < value]
    if kind == "factor":
        # drift/NIC factors shrink TOWARD neutral 1.0 from either side
        if value == 1.0:
            return []
        candidates = [1.0, round((value + 1.0) / 2, 3)]
        return [c for c in candidates
                if abs(c - 1.0) < abs(value - 1.0) and c != value]
    return []


def _numeric_param_shrinks(params):
    """Yield (key, smaller_value) for a behavior params dict.

    ``interval``/``delay`` never shrink to 0: a zero-period attack loop
    re-schedules at the same sim instant and would turn every candidate
    run into an event-budget burn, not a simpler counterexample.
    """
    for key in sorted(params):
        value = params[key]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        if value == 0:
            continue
        halved = value // 2 if isinstance(value, int) else round(value / 2, 4)
        candidates = [halved]
        if key not in ("interval", "delay"):
            candidates.insert(0, 0)
        for candidate in candidates:
            if key in ("interval", "delay") and candidate <= 0:
                continue
            if candidate != value and abs(candidate) < abs(value):
                yield key, candidate


def shrink_plan(plan, fails=None, max_runs=512):
    """Minimize ``plan.ops`` while a failure predicate keeps holding.

    Parameters
    ----------
    plan:
        A :class:`~repro.chaos.plan.FaultPlan` that currently *fails*.
    fails:
        ``fails(candidate_plan) -> bool`` -- the test being minimized
        against.  Defaults to "``run_plan`` reports any violation".
    max_runs:
        Hard budget on checker invocations (cache misses); the best plan
        found so far is returned when it is exhausted.

    Returns the minimized plan.  Raises ``ValueError`` if the input plan
    does not fail -- shrinking a passing plan would "minimize" it to the
    empty script and report nonsense.
    """
    if fails is None:
        fails = lambda candidate: bool(run_plan(candidate)[0])

    runs = [0]
    cache = {}

    def failing(ops):
        key = repr(ops)
        if key in cache:
            return cache[key]
        if runs[0] >= max_runs:
            return False   # budget spent: treat untried candidates as passing
        runs[0] += 1
        result = bool(fails(plan.replace_ops(ops)))
        cache[key] = result
        return result

    ops = [list(op) for op in plan.ops]
    # the sanity check is budget-exempt: max_runs bounds the *search*,
    # and a zero budget must still distinguish "nothing to try" from
    # "the input plan never failed"
    if not bool(fails(plan.replace_ops(ops))):
        raise ValueError(
            "shrink_plan: the input plan does not fail its predicate")
    cache[repr(ops)] = True

    # ddmin2: try removing chunks, then complements, then refine
    granularity = 2
    while len(ops) >= 2:
        chunk = len(ops) // granularity
        subsets = [ops[i:i + chunk] for i in range(0, len(ops), chunk)]
        reduced = False
        for index, subset in enumerate(subsets):
            if failing(subset):
                ops = subset
                granularity = 2
                reduced = True
                break
            complement = [op for j, s in enumerate(subsets) if j != index
                          for op in s]
            if complement != ops and failing(complement):
                ops = complement
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(ops):
                break
            granularity = min(granularity * 2, len(ops))

    # second phase: minimize scalar fields of the surviving ops.  Each
    # accepted substitution restarts the sweep (a smaller run time may
    # unlock a smaller cast count); every candidate is strictly simpler,
    # so the loop terminates even without the run budget.
    changed = True
    while changed and runs[0] < max_runs:
        changed = False
        for index, op in enumerate(ops):
            for field, kind in _SCALAR_FIELDS.get(op[0], ()):
                if field >= len(op):
                    continue
                if kind == "params":
                    params = op[field]
                    if not isinstance(params, dict):
                        continue
                    for key, smaller in _numeric_param_shrinks(params):
                        candidate = [list(o) for o in ops]
                        candidate[index][field] = dict(params, **{key: smaller})
                        if failing(candidate):
                            ops = candidate
                            changed = True
                            break
                else:
                    for smaller in _scalar_candidates(kind, op[field]):
                        candidate = [list(o) for o in ops]
                        candidate[index][field] = smaller
                        if failing(candidate):
                            ops = candidate
                            changed = True
                            break
                if changed:
                    break
            if changed:
                break
    return plan.replace_ops(ops)
