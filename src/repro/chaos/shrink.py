"""Counterexample shrinking: ddmin over a failing plan's op script.

A random campaign's counterexamples are long and mostly noise -- a dozen
ops of which two matter.  This module minimizes them with the classic
delta-debugging algorithm (Zeller & Hildebrandt, *Simplifying and
Isolating Failure-Inducing Input*, TSE 2002): repeatedly try subsets and
complements of the op list at increasing granularity, keeping any smaller
script that still fails the property checker.

Soundness rests on two properties of the chaos engine:

* ops are tolerant -- any subsequence of a valid script is a valid script;
* runs are deterministic -- the same (seed, ops) pair always produces the
  same violations, so one failing re-run is proof, and results can be
  cached by op-list identity.

The result is *1-minimal*: removing any single remaining op makes the
failure disappear.  That is exactly the replayable artifact a human wants
to debug from.
"""

from __future__ import annotations

from repro.chaos.engine import run_plan


def shrink_plan(plan, fails=None, max_runs=512):
    """Minimize ``plan.ops`` while a failure predicate keeps holding.

    Parameters
    ----------
    plan:
        A :class:`~repro.chaos.plan.FaultPlan` that currently *fails*.
    fails:
        ``fails(candidate_plan) -> bool`` -- the test being minimized
        against.  Defaults to "``run_plan`` reports any violation".
    max_runs:
        Hard budget on checker invocations (cache misses); the best plan
        found so far is returned when it is exhausted.

    Returns the minimized plan.  Raises ``ValueError`` if the input plan
    does not fail -- shrinking a passing plan would "minimize" it to the
    empty script and report nonsense.
    """
    if fails is None:
        fails = lambda candidate: bool(run_plan(candidate)[0])

    runs = [0]
    cache = {}

    def failing(ops):
        key = repr(ops)
        if key in cache:
            return cache[key]
        if runs[0] >= max_runs:
            return False   # budget spent: treat untried candidates as passing
        runs[0] += 1
        result = bool(fails(plan.replace_ops(ops)))
        cache[key] = result
        return result

    ops = [list(op) for op in plan.ops]
    if not failing(ops):
        raise ValueError(
            "shrink_plan: the input plan does not fail its predicate")

    # ddmin2: try removing chunks, then complements, then refine
    granularity = 2
    while len(ops) >= 2:
        chunk = len(ops) // granularity
        subsets = [ops[i:i + chunk] for i in range(0, len(ops), chunk)]
        reduced = False
        for index, subset in enumerate(subsets):
            if failing(subset):
                ops = subset
                granularity = 2
                reduced = True
                break
            complement = [op for j, s in enumerate(subsets) if j != index
                          for op in s]
            if complement != ops and failing(complement):
                ops = complement
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if not reduced:
            if granularity >= len(ops):
                break
            granularity = min(granularity * 2, len(ops))
    return plan.replace_ops(ops)
