"""The chaos engine: executes :class:`~repro.chaos.plan.FaultPlan` ops.

Two halves:

* :class:`LinkFaults` -- the per-link packet mangler the network consults
  for every datagram once installed on ``Network.chaos``.  It draws from
  its OWN seeded RNG, never the simulator's, so installing a fault plan
  does not perturb the network's frozen draw order (see the determinism
  contract in :class:`repro.sim.network.Network`).
* :class:`ChaosEngine` -- builds the cluster a plan describes (Byzantine
  behaviors and clock skew must be wired at construction; everything else
  is applied live) and executes the plan's op script against it.

Tolerant op semantics: an op whose target is missing, already crashed,
already restarted, etc. is silently a no-op.  The delta-debugging shrinker
relies on this -- every subset of a failing plan's ops must itself be a
runnable plan.
"""

from __future__ import annotations

import random

from repro.byzantine import behaviors as behavior_library
from repro.core.config import StackConfig
from repro.core.group import Group
from repro.core.message import Message
from repro.core.properties import check_virtual_synchrony
from repro.sim.network import NetworkConfig
from repro.sim.scheduler import SimulationError

#: seed salt so the fault RNG never mirrors the simulator RNG stream
_FAULT_SEED_SALT = 0x5EEDC4A0


class LinkFaults:
    """Per-link drop / corrupt / duplicate tables, wildcard-capable.

    Tables are keyed ``(src, dst)`` where either side may be ``None``
    (wildcard); the most specific matching entries are all consulted and
    the highest probability wins.  ``filter`` is the ``Network.chaos``
    hook: it returns ``(payload, extra_copies, dropped)``.
    """

    __slots__ = ("rng", "_drop", "_corrupt", "_duplicate",
                 "dropped", "corrupted", "duplicated")

    KINDS = ("drop", "corrupt", "duplicate")

    def __init__(self, rng=None):
        self.rng = rng or random.Random(_FAULT_SEED_SALT)
        self._drop = {}
        self._corrupt = {}
        self._duplicate = {}
        self.dropped = 0
        self.corrupted = 0
        self.duplicated = 0

    def _table(self, kind):
        if kind not in self.KINDS:
            raise ValueError("unknown link fault kind %r" % (kind,))
        return getattr(self, "_" + kind)

    def set_fault(self, kind, src, dst, prob):
        table = self._table(kind)
        if prob:
            table[(src, dst)] = prob
        else:
            table.pop((src, dst), None)

    def clear(self):
        self._drop.clear()
        self._corrupt.clear()
        self._duplicate.clear()

    @property
    def active(self):
        return bool(self._drop or self._corrupt or self._duplicate)

    @staticmethod
    def _prob(table, src, dst):
        best = 0.0
        for key in ((src, dst), (src, None), (None, dst), (None, None)):
            prob = table.get(key, 0.0)
            if prob > best:
                best = prob
        return best

    # ------------------------------------------------------------------
    def filter(self, src, dst, payload):
        """Decide this datagram's fate; called once per unicast send.

        RNG draws are gated on each table being non-empty, so a plan's
        replay is deterministic: the same op script yields the same draw
        sequence regardless of how the tables were populated.
        """
        rng = self.rng
        if self._drop:
            prob = self._prob(self._drop, src, dst)
            if prob and rng.random() < prob:
                self.dropped += 1
                return payload, 0, True
        if self._corrupt:
            prob = self._prob(self._corrupt, src, dst)
            # only plain Messages are mangled: a flipped bit in a packed
            # container would fail Python-level unpacking rather than
            # model wire corruption of one message's bytes
            if prob and rng.random() < prob and isinstance(payload, Message):
                bad = payload.clone_for(payload.dest)
                # the payload setter invalidates the memoized auth token,
                # so the receiver recomputes a digest that no longer
                # matches the (untouched) signature -- exactly what bit
                # rot does to a signed packet
                bad.payload = ("corrupted", payload.payload)
                payload = bad
                self.corrupted += 1
        extra = 0
        if self._duplicate:
            prob = self._prob(self._duplicate, src, dst)
            if prob and rng.random() < prob:
                extra = 1
                self.duplicated += 1
        return payload, extra, False


class ChaosEngine:
    """Builds and drives one cluster according to a fault plan."""

    def __init__(self, plan=None, group=None, event_budget=None):
        self.plan = plan
        self.group = group
        seed = plan.seed if plan is not None else 0
        self.faults = LinkFaults(random.Random(seed ^ _FAULT_SEED_SALT))
        self.crashed = set()
        self.left = set()
        self.restarted = set()   # ever crash-restarted (see check())
        self._degraded = set()   # nodes with a non-1.0 NIC factor
        self._skewed = set()     # nodes with a non-1.0 clock drift
        self._attached = group is not None
        #: hard cap on total simulator events for this engine's lifetime;
        #: exhausting it mid-run sets ``stalled`` instead of raising, which
        #: is how the tournament scores livelocks (a protocol that spins
        #: forever burns its budget without ever going quiet)
        self.event_budget = event_budget
        self.stalled = False
        #: sim-seconds from fault clearance to stable views, measured by
        #: :meth:`settle_measured`; ``None`` until measured or on timeout
        self.recovery_time = None

    @classmethod
    def attached(cls, group):
        """Wrap an already-built cluster (the fuzzer's driver mode).

        Build-time ops (``byzantine``, ``skew``) are inert in this mode:
        behaviors and node clocks can only be wired at construction, which
        the caller has already done.
        """
        return cls(plan=None, group=group)

    # ------------------------------------------------------------------
    # cluster construction
    # ------------------------------------------------------------------
    def build(self):
        """Materialize the plan's cluster (idempotent).

        ``byzantine`` and ``skew`` ops are scanned out of the script here
        because behaviors and per-node clocks must exist before the stack
        starts: layers cache their timer source at attach, and a behavior
        activates in ``process.start()``.  The runtime op application is
        then a no-op for ``byzantine`` and a drift *change* for ``skew``.
        """
        if self.group is not None:
            return self.group
        plan = self.plan
        behaviors = {}
        drift = {}
        for op in plan.ops:
            if op[0] == "byzantine" and len(op) >= 3:
                node = op[1]
                factory = getattr(behavior_library, str(op[2]), None)
                params = op[3] if len(op) > 3 and isinstance(op[3], dict) \
                    else {}
                if (factory is not None and isinstance(node, int)
                        and 0 <= node < plan.n and node not in behaviors):
                    try:
                        behaviors[node] = factory(**params)
                    except TypeError:
                        pass   # unknown params: tolerate, run benign
            elif op[0] == "skew" and len(op) >= 2:
                node = op[1]
                if isinstance(node, int) and 0 <= node < plan.n:
                    # pre-install a NodeClock at neutral drift: the skew
                    # op only *changes* the factor at its scripted time
                    drift.setdefault(node, 1.0)
        config = StackConfig(**plan.config) if plan.config \
            else StackConfig.byz()
        net = NetworkConfig(**plan.net) if plan.net else None
        self.group = Group.bootstrap(plan.n, config=config, seed=plan.seed,
                                     net_config=net, behaviors=behaviors,
                                     clock_drift=drift)
        return self.group

    def _ensure_faults_installed(self):
        # lazy: a plan with no link-fault ops leaves Network.chaos None,
        # keeping such runs byte-identical to pre-chaos builds
        if self.group.network.chaos is not self.faults:
            self.group.network.chaos = self.faults

    # ------------------------------------------------------------------
    # op dispatch
    # ------------------------------------------------------------------
    def apply(self, op):
        handler = getattr(self, "_op_" + str(op[0]), None)
        if handler is None:
            raise ValueError("unknown chaos op %r" % (op[0],))
        handler(*op[1:])

    def _process_of(self, node):
        process = self.group.processes.get(node)
        if process is None or process.stopped:
            return None
        return process

    def _budget_run(self, duration):
        """``group.run`` capped by the remaining event budget.

        On exhaustion the run stops where it is and ``stalled`` latches;
        callers treat the partial run like any other -- the checker still
        judges whatever history was produced.
        """
        if self.event_budget is None:
            self.group.run(duration)
            return
        remaining = self.event_budget - self.group.sim.events_processed
        if remaining <= 0:
            self.stalled = True
            return
        try:
            self.group.run(duration, max_events=remaining)
        except SimulationError:
            self.stalled = True

    def _op_cast(self, sender, count):
        if self._process_of(sender) is None:
            return
        endpoint = self.group.endpoints[sender]
        for k in range(count):
            endpoint.cast((sender, "fz", k))

    def _op_run(self, duration):
        self._budget_run(duration)

    def _op_crash(self, node):
        if self._process_of(node) is None:
            return
        self.group.crash(node)
        self.crashed.add(node)

    def _op_restart(self, node):
        if node not in self.crashed:
            return
        self.crashed.discard(node)
        self.restarted.add(node)
        self.group.restart(node)

    def _op_leave(self, node):
        if self._process_of(node) is None or node in self.left:
            return
        self.group.endpoints[node].leave()
        self.left.add(node)

    def _op_join(self, node_id):
        if isinstance(node_id, list):
            node_id = tuple(node_id)   # JSON round-trip of tuple ids
        if node_id in self.group.processes:
            return
        self.group.add_node(node_id)

    def _op_partition(self, components):
        seen = set()
        sides = []
        for component in components:
            side = set()
            for node in component:
                if isinstance(node, list):
                    node = tuple(node)
                if node in self.group.processes and node not in seen:
                    seen.add(node)
                    side.add(node)
            if side:
                sides.append(side)
        self.group.partition(*sides)

    def _op_heal(self):
        self.group.heal()

    def _op_byzantine(self, node, name, params=None):
        """Inert at runtime: behaviors are wired in :meth:`build`."""

    def _op_byzantine_at(self, node, name, params=None):
        """Turn a live, so-far-honest node Byzantine *mid-run*.

        Unlike build-time ``byzantine`` ops this needs no construction
        hook: :meth:`BottomLayer._transmit` reads ``process.behavior``
        fresh on every send, and behaviors schedule their attacks with
        relative delays, so install + start works at any sim time.  A node
        that already has a behavior keeps it (first gene wins, which makes
        the op idempotent under ddmin subsetting).
        """
        process = self._process_of(node)
        if process is None or process.behavior is not None:
            return
        factory = getattr(behavior_library, str(name), None)
        if factory is None or not (isinstance(factory, type)
                                   and issubclass(
                                       factory,
                                       behavior_library.ByzantineBehavior)):
            return
        try:
            behavior = factory(**(params or {}))
        except TypeError:
            return   # unknown params: tolerate, stay benign
        process.behavior = behavior
        behavior.install(process)
        self.group.byzantine_nodes.add(node)
        behavior.start()

    def _op_drop(self, src, dst, prob):
        self._ensure_faults_installed()
        self.faults.set_fault("drop", src, dst, prob)

    def _op_corrupt(self, src, dst, prob):
        self._ensure_faults_installed()
        self.faults.set_fault("corrupt", src, dst, prob)

    def _op_duplicate(self, src, dst, prob):
        self._ensure_faults_installed()
        self.faults.set_fault("duplicate", src, dst, prob)

    def _op_nic(self, node, factor):
        if node not in self.group.processes:
            return
        try:
            self.group.network.degrade_nic(node, factor)
        except (KeyError, AttributeError):
            return   # detached port / topology without NICs (ad hoc)
        if factor == 1.0:
            self._degraded.discard(node)
        else:
            self._degraded.add(node)

    def _op_skew(self, node, drift):
        clock = self.group.clocks.get(node)
        if clock is None:
            return   # attached mode, or node was never scheduled for skew
        clock.drift = drift
        if drift == 1.0:
            self._skewed.discard(node)
        else:
            self._skewed.add(node)

    def _op_clear_faults(self):
        self.faults.clear()

    def _op_reshard_at(self, delta=1):
        """Start a live reshard mid-run -- only meaningful on a sharded
        plane.  ``resharder`` is the injection seam: the sharded driver
        (:class:`repro.shard.chaos.ShardChaosEngine`) sets it to its
        coordinator-starting hook; on a plain single-group engine the op
        is a tolerant no-op, keeping every plan ddmin-shrinkable."""
        resharder = getattr(self, "resharder", None)
        if resharder is not None:
            resharder(delta)

    # ------------------------------------------------------------------
    # whole-plan execution
    # ------------------------------------------------------------------
    def run(self, settle=2.0):
        """Build the cluster, apply every op, then settle."""
        self.build()
        for op in self.plan.ops:
            self.apply(op)
        self.settle(settle)
        return self

    def lift_faults(self):
        """Clear every standing environment fault (links, partitions,
        NIC degradation, clock skew) without running the simulator."""
        self.faults.clear()
        self.group.heal()
        for node in sorted(self._degraded, key=repr):
            try:
                self.group.network.degrade_nic(node, 1.0)
            except (KeyError, AttributeError):
                pass
        self._degraded.clear()
        for node in sorted(self._skewed, key=repr):
            clock = self.group.clocks.get(node)
            if clock is not None:
                clock.drift = 1.0
        self._skewed.clear()

    def settle(self, duration=2.0):
        """Lift every standing fault and let the protocols converge.

        The Definitions 2.1/2.2 properties are checked on runs that end
        in a calm network -- eventual-synchrony convergence is part of the
        model, so campaigns judge safety after the storm, not during it.
        """
        self.lift_faults()
        if duration:
            self._budget_run(duration)

    def settle_measured(self, timeout=5.0, drain=1.0):
        """Settle while timing the recovery: lift all faults, run until
        every live correct node holds the same view, then drain.

        Returns the sim-seconds from fault clearance to view stability
        (also latched on ``recovery_time``), or ``None`` if stability was
        not reached inside ``timeout`` / the event budget.  The trailing
        ``drain`` run lets reliable-layer retransmissions finish so the
        delivery-set checks judge a quiescent history.
        """
        self.lift_faults()
        sim = self.group.sim
        t0 = sim.now
        max_events = None
        if self.event_budget is not None:
            max_events = self.event_budget - sim.events_processed
            if max_events <= 0:
                self.stalled = True
                return None
        try:
            stable = self.group.run_until(
                self._views_stable, timeout, max_events=max_events)
        except SimulationError:
            self.stalled = True
            return None
        if stable:
            self.recovery_time = sim.now - t0
        if drain:
            self._budget_run(drain)
        return self.recovery_time

    def _views_stable(self):
        # gracefully-departed nodes idle forever in a terminal singleton
        # view; they are not part of the group the cluster converges to
        live = [p for p in self.group._live_correct()
                if p.node_id not in self.left]
        if not live:
            return True
        vids = {p.view.vid for p in live}
        mbrs = {p.view.mbrs for p in live}
        return len(vids) == 1 and len(mbrs) == 1

    def check(self):
        """Safety-check the recorded execution; returns violation strings."""
        execution = self.group.execution()
        # a crash or leave mid-run ends that node's obligations.  A node
        # that was crash-RESTARTED stays excluded too: per Definitions
        # 2.1/2.2 a process that crashed is faulty for the whole
        # execution, and the rebooted incarnation is a *new* process --
        # counting it correct lets view changes that happened while it
        # was down read as missing installations (a soak-campaign false
        # positive: crash, two churn-driven views before eviction,
        # restart, and the fresh history "never installed" those views)
        for node in self.crashed | self.left | self.restarted:
            execution.correct.discard(node)
        config = self.group.config
        opts = self.plan.check if self.plan is not None else {}
        return check_virtual_synchrony(
            execution,
            content_agreement=opts.get("content_agreement",
                                       config.total_order),
            total_order=opts.get("total_order", config.total_order))


def run_plan(plan, settle=2.0, event_budget=None, measure_recovery=False):
    """Execute one plan start-to-finish; returns ``(violations, engine)``.

    With ``event_budget`` the whole run (ops + settle) is capped at that
    many simulator events; exhaustion latches ``engine.stalled`` rather
    than raising.  With ``measure_recovery`` the settle phase times how
    long the cluster takes to re-stabilize (``engine.recovery_time``).
    """
    engine = ChaosEngine(plan, event_budget=event_budget)
    try:
        engine.build()
        for op in plan.ops:
            engine.apply(op)
        if measure_recovery:
            engine.settle_measured(timeout=max(settle, 1.0))
        else:
            engine.settle(settle)
        violations = engine.check()
    finally:
        if engine.group is not None:
            engine.group.stop()
    return violations, engine
