"""Command-line interface: ``python -m repro <command>``.

Small operational surface for poking at the system without writing a
script -- run a demo cluster, inject a fault, or print the calibration.
"""

from __future__ import annotations

import argparse
import sys


def cmd_demo(args):
    """Boot a group, broadcast, crash a member, show the view change."""
    from repro import Group, StackConfig
    config = StackConfig.byz(crypto=args.crypto,
                             total_order=args.total_order)
    group = Group.bootstrap(args.nodes, config=config, seed=args.seed)
    print("booted %d nodes: %s (f=%d, %s)"
          % (args.nodes, group.processes[0].view, group.processes[0].f,
             config.label()))
    for node, endpoint in group.endpoints.items():
        endpoint.cast(("hello", node), size=16)
    group.run(0.3)
    delivered = len([e for e in group.endpoints[0].events
                     if type(e).__name__ == "CastDeliver"])
    print("node 0 delivered %d casts" % delivered)
    victim = args.nodes - 1
    print("crashing node %d ..." % victim)
    group.crash(victim)
    ok = group.run_until(
        lambda: all(victim not in p.view.mbrs
                    for n, p in group.processes.items()
                    if n != victim and not p.stopped), timeout=10.0)
    duration = group.processes[0].membership.last_change_duration
    print("recovered=%s new view=%s (%.1f ms)"
          % (ok, group.processes[0].view,
             (duration or 0) * 1000.0))
    return 0


def cmd_attack(args):
    """Inject a Table-1 scenario and report the recovery time."""
    sys.path.insert(0, ".")
    from benchmarks.harness import TABLE1_SCENARIOS, recovery_time
    if args.scenario not in TABLE1_SCENARIOS:
        print("scenarios: %s" % ", ".join(TABLE1_SCENARIOS))
        return 2
    result = recovery_time(args.scenario, n=args.nodes, seed=args.seed)
    print("%s at n=%d: recovered=%s in %.4f s (max %.4f s)"
          % (args.scenario, args.nodes, result["recovered"],
             result["recovery_seconds"], result["max_recovery_seconds"]))
    return 0 if result["recovered"] else 1


def cmd_trace(args):
    """Boot an instrumented group, cast once, print the message's span."""
    import json

    from repro import Group, StackConfig
    from repro.tools.timeline import render_trace
    config = StackConfig.byz(crypto=args.crypto, obs=True)
    group = Group.bootstrap(args.nodes, config=config, seed=args.seed)
    msg_id = group.endpoints[0].cast(("traced", "cast"), size=16)
    ok = group.run_until(
        lambda: all(p.top.delivered >= 1 for p in group.processes.values()),
        timeout=5.0)
    trace = group.trace(msg_id)
    if args.json:
        print(json.dumps({"delivered_everywhere": ok,
                          "trace": trace.to_dict() if trace else None,
                          "metrics": group.metrics.to_dict()}, indent=2))
        group.stop()
        return 0 if ok else 1
    print("cast %r on a %d-node %s cluster (delivered everywhere: %s)"
          % (msg_id, args.nodes, config.label(), ok))
    for line in render_trace(trace):
        print(line)
    print("\nper-layer hop counters:")
    for row in group.metrics.rows():
        if row["name"] in ("casts_sent", "casts_delivered", "datagrams_out",
                           "datagrams_in"):
            print("  node %-6s %-14s %-16s %d"
                  % (row["node"], row["layer"], row["name"], row["value"]))
    group.stop()
    return 0 if ok else 1


def cmd_calibration(args):
    """Print the calibration tables the benchmarks run on."""
    from repro.crypto.cost import CryptoCostModel
    from repro.sim.topology import BladeCenterTopology, HostModel
    host = HostModel()
    print("host model:")
    print("  send_cpu      %8.2f us/datagram" % (host.send_cpu * 1e6))
    print("  recv_cpu      %8.2f us/datagram" % (host.recv_cpu * 1e6))
    print("  byz_check_cpu %8.2f us/datagram" % (host.byz_check_cpu * 1e6))
    print("crypto: %s" % CryptoCostModel().describe())
    print("topology: %s" % BladeCenterTopology(args.nodes).describe())
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Practical Byzantine Group Communication (reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help=cmd_demo.__doc__)
    demo.add_argument("--nodes", type=int, default=8)
    demo.add_argument("--seed", type=int, default=1)
    demo.add_argument("--crypto", choices=("none", "sym", "pub"),
                      default="sym")
    demo.add_argument("--total-order", action="store_true")
    demo.set_defaults(func=cmd_demo)

    attack = sub.add_parser("attack", help=cmd_attack.__doc__)
    attack.add_argument("scenario")
    attack.add_argument("--nodes", type=int, default=12)
    attack.add_argument("--seed", type=int, default=7)
    attack.set_defaults(func=cmd_attack)

    trace = sub.add_parser("trace", help=cmd_trace.__doc__)
    trace.add_argument("--nodes", type=int, default=4)
    trace.add_argument("--seed", type=int, default=11)
    trace.add_argument("--crypto", choices=("none", "sym", "pub"),
                       default="none")
    trace.add_argument("--json", action="store_true",
                       help="emit the artifact as JSON instead of text")
    trace.set_defaults(func=cmd_trace)

    calib = sub.add_parser("calibration", help=cmd_calibration.__doc__)
    calib.add_argument("--nodes", type=int, default=48)
    calib.set_defaults(func=cmd_calibration)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
