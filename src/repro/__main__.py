"""Command-line interface: ``python -m repro <command>``.

Small operational surface for poking at the system without writing a
script -- run a demo cluster, inject a fault, or print the calibration.
"""

from __future__ import annotations

import argparse
import sys


def cmd_demo(args):
    """Boot a group, broadcast, crash a member, show the view change."""
    from repro import Group, StackConfig
    config = StackConfig.byz(crypto=args.crypto,
                             total_order=args.total_order)
    group = Group.bootstrap(args.nodes, config=config, seed=args.seed)
    print("booted %d nodes: %s (f=%d, %s)"
          % (args.nodes, group.processes[0].view, group.processes[0].f,
             config.label()))
    for node, endpoint in group.endpoints.items():
        endpoint.cast(("hello", node), size=16)
    group.run(0.3)
    delivered = len([e for e in group.endpoints[0].events
                     if type(e).__name__ == "CastDeliver"])
    print("node 0 delivered %d casts" % delivered)
    victim = args.nodes - 1
    print("crashing node %d ..." % victim)
    group.crash(victim)
    ok = group.run_until(
        lambda: all(victim not in p.view.mbrs
                    for n, p in group.processes.items()
                    if n != victim and not p.stopped), timeout=10.0)
    duration = group.processes[0].membership.last_change_duration
    print("recovered=%s new view=%s (%.1f ms)"
          % (ok, group.processes[0].view,
             (duration or 0) * 1000.0))
    return 0


def cmd_attack(args):
    """Inject a Table-1 scenario and report the recovery time."""
    sys.path.insert(0, ".")
    from benchmarks.harness import TABLE1_SCENARIOS, recovery_time
    if args.scenario not in TABLE1_SCENARIOS:
        print("scenarios: %s" % ", ".join(TABLE1_SCENARIOS))
        return 2
    result = recovery_time(args.scenario, n=args.nodes, seed=args.seed)
    print("%s at n=%d: recovered=%s in %.4f s (max %.4f s)"
          % (args.scenario, args.nodes, result["recovered"],
             result["recovery_seconds"], result["max_recovery_seconds"]))
    return 0 if result["recovered"] else 1


def cmd_trace(args):
    """Boot an instrumented group, cast once, print the message's span."""
    import json

    from repro import Group, StackConfig
    from repro.tools.timeline import render_trace
    config = StackConfig.byz(crypto=args.crypto, obs=True)
    group = Group.bootstrap(args.nodes, config=config, seed=args.seed)
    msg_id = group.endpoints[0].cast(("traced", "cast"), size=16)
    ok = group.run_until(
        lambda: all(p.top.delivered >= 1 for p in group.processes.values()),
        timeout=5.0)
    trace = group.trace(msg_id)
    if args.json:
        print(json.dumps({"delivered_everywhere": ok,
                          "trace": trace.to_dict() if trace else None,
                          "metrics": group.metrics.to_dict()}, indent=2))
        group.stop()
        return 0 if ok else 1
    print("cast %r on a %d-node %s cluster (delivered everywhere: %s)"
          % (msg_id, args.nodes, config.label(), ok))
    for line in render_trace(trace):
        print(line)
    print("\nper-layer hop counters:")
    for row in group.metrics.rows():
        if row["name"] in ("casts_sent", "casts_delivered", "datagrams_out",
                           "datagrams_in"):
            print("  node %-6s %-14s %-16s %d"
                  % (row["node"], row["layer"], row["name"], row["value"]))
    group.stop()
    return 0 if ok else 1


def cmd_fuzz(args):
    """Fuzz random fault scenarios; nonzero exit on any safety violation."""
    from repro import StackConfig
    from repro.tools.fuzzer import ScenarioFuzzer
    config = StackConfig.byz(crypto=args.crypto,
                             total_order=args.total_order)
    failed = 0
    for seed in range(args.start, args.start + args.seeds):
        fuzzer = ScenarioFuzzer(seed, config=config, ops=args.ops).execute()
        violations = fuzzer.check()
        if violations:
            failed += 1
            print("seed %d: FAIL (%d violations)" % (seed, len(violations)))
            for line in violations[:5]:
                print("  " + line)
            print("  script: %r" % (fuzzer.script,))
            if args.out:
                import os
                os.makedirs(args.out, exist_ok=True)
                path = fuzzer.as_plan().save(
                    "%s/fuzz-counterexample-seed%d.json" % (args.out, seed))
                print("  plan written to %s" % path)
        else:
            print("seed %d: ok (%d ops)" % (seed, len(fuzzer.script)))
        fuzzer.group.stop()
    print("%d/%d seeds failed" % (failed, args.seeds))
    return 1 if failed else 0


#: chaos presets: config/check/allow bundles for the common campaigns.
#: ``corrupt`` only enters the op mix when a real crypto scheme can detect
#: it (the byz-sym preset); with crypto="none" corruption is silent.
CHAOS_PRESETS = {
    "benign": {"config": {"byzantine": False}, "byzantine_fraction": 0.0},
    "byz": {"config": None, "byzantine_fraction": 0.3},
    "byz-sym": {"config": {"byzantine": True, "crypto": "sym"},
                "byzantine_fraction": 0.3, "corrupt": True},
    # fast-path campaign: total ordering with the optimistic 2-step path
    # armed, the full adversary vocabulary (byzantine_at schedules
    # Equivocator & co. mid-run), and corruption enabled since crypto
    # is real.  Exercises the fallback seam under every fault class.
    "byz-fast": {"config": {"byzantine": True, "crypto": "sym",
                            "total_order": True,
                            "ordering_fast_path": True},
                 "byzantine_fraction": 0.3, "corrupt": True,
                 "adversary": True},
}


def cmd_chaos(args):
    """Run a chaos campaign (or replay one plan); exit 1 on violations."""
    import json

    from repro.chaos import (ADVERSARY_OPS, DEFAULT_OPS, FaultPlan,
                             run_grid_campaign, run_plan,
                             run_random_campaign)

    if args.replay:
        plan = FaultPlan.load(args.replay)
        violations, _engine = run_plan(plan)
        print("replayed %s: %d violations" % (args.replay, len(violations)))
        for line in violations:
            print("  " + line)
        return 1 if violations else 0

    preset = CHAOS_PRESETS[args.preset]
    if args.grid:
        config = preset["config"]
        if args.preset == "byz-sym":
            corrupts = (0.0, 0.05, 0.1)
        else:
            corrupts = (0.0,)
        summary = run_grid_campaign(
            drops=(0.0, 0.1, 0.2, 0.3), corrupts=corrupts, n=args.nodes,
            seed=args.start, config=config, shrink=not args.no_shrink,
            out_dir=args.out, log=print)
    else:
        base = ADVERSARY_OPS if preset.get("adversary") else DEFAULT_OPS
        allow = base if preset.get("corrupt") \
            else tuple(op for op in base if op != "corrupt")
        summary = run_random_campaign(
            range(args.start, args.start + args.seeds), ops=args.ops,
            allow=allow, byzantine_fraction=preset["byzantine_fraction"],
            config=preset["config"], shrink=not args.no_shrink,
            out_dir=args.out, log=print)
    print(json.dumps({key: summary[key]
                      for key in ("seeds", "passed", "failed")}))
    return 1 if summary["failed"] else 0


def cmd_tournament(args):
    """Evolve fault plans against the stack (or run a --soak campaign);
    nonzero exit when a failure is found (or the soak fails)."""
    import json
    import os

    from repro.tournament import run_soak, run_tournament

    if args.soak:
        report = run_soak(args.seed, n=args.nodes,
                          target_events=args.events,
                          recovery_bound=args.recovery_bound,
                          byzantine=not args.benign, log=print)
        print("soak seed %d: %s after %d cycles / %d events (%.1fs sim); "
              "%d byzantine episodes, recovery max %s"
              % (args.seed, report["verdict"].upper(), report["cycles"],
                 report["events_processed"], report["sim_time"],
                 report["byzantine_episodes"], report["recovery"]["max"]))
        for line in (report["violations"] + report["state_violations"])[:10]:
            print("  " + line)
        if args.out:
            os.makedirs(args.out, exist_ok=True)
            path = os.path.join(args.out, "soak-seed%d.json" % args.seed)
            with open(path, "w") as handle:
                json.dump(report, handle, indent=2, default=str)
            print("report written to %s" % path)
        return 1 if report["verdict"] == "fail" else 0

    resume = None
    if args.resume:
        with open(args.resume) as handle:
            resume = json.load(handle)
    report = run_tournament(args.seed, n=args.nodes,
                            population=args.population,
                            generations=args.generations,
                            plan_ops=args.ops,
                            event_budget=args.budget,
                            minutes=args.minutes, resume=resume, log=print)
    best = report["best"]
    print("tournament seed %d: %s after %d evaluations (%d cached, "
          "%.1fs wall%s; best score %.1f, plan %s)"
          % (args.seed, "FOUND failure" if report["found"] else "no failure",
             report["evaluations"], report["cache_hits"],
             report["wall_seconds"],
             ", timed out" if report["timed_out"] else "",
             best["score"], best["plan_hash"]))
    for line in best["violations"][:10]:
        print("  " + line)
    if args.out:
        os.makedirs(args.out, exist_ok=True)
        path = os.path.join(args.out, "tournament-seed%d.json" % args.seed)
        with open(path, "w") as handle:
            json.dump(report, handle, indent=2, default=str)
        print("report written to %s" % path)
        if report["minimized"] is not None:
            plan_path = os.path.join(
                args.out, "counterexample-tournament-seed%d.json" % args.seed)
            with open(plan_path, "w") as handle:
                json.dump(report["minimized"], handle, indent=2)
            print("minimized counterexample written to %s" % plan_path)
    return 1 if report["found"] else 0


def cmd_net(args):
    """Boot a real asyncio-UDP cluster on localhost, form a view,
    multicast, tear down -- each node its own OS process."""
    import json

    from repro.runtime.driver import run_net_workload
    from repro.runtime.workload import NetWorkload
    leaver = None if args.no_leave else args.nodes - 1
    workload = NetWorkload(n=args.nodes, casts_per_node=args.casts,
                           leaver=leaver, deadline=args.deadline)
    config = {"byzantine": not args.benign, "crypto": args.crypto}
    print("spawning %d node processes on localhost UDP (%s%s) ..."
          % (args.nodes, "benign" if args.benign else "byz+" + args.crypto,
             "" if leaver is None else ", node %d will leave" % leaver))
    result = run_net_workload(workload, seed=args.seed, config=config,
                              obs=args.obs,
                              keep_artifacts="always" if args.keep
                              else "on-failure")
    if args.json:
        print(json.dumps(result.summary(), indent=2))
    else:
        members = result.common_final_members()
        print("cluster %s in %.2f s wall" % (
            "completed" if result.ok else "FAILED", result.elapsed))
        for node in sorted(result.reports):
            report = result.reports[node]
            print("  node %d: ok=%-5s delivered=%-3d formed_at=%s%s"
                  % (node, report.ok,
                     len(report.history.delivery_order()),
                     ("%.2fs" % report.wall["formed_at"])
                     if report.wall.get("formed_at") is not None else "never",
                     (" error=%s" % report.error.splitlines()[-1])
                     if report.error else ""))
        print("  final view at survivors: %s"
              % (list(members) if members else "DISAGREE"))
        violations = result.violations()
        print("  Def 2.1/2.2 violations: %d" % len(violations))
        for line in violations[:5]:
            print("    " + line)
    if result.artifacts_dir:
        print("artifacts: %s" % result.artifacts_dir)
    return 0 if (result.ok and not result.violations()
                 and result.common_final_members() is not None) else 1


def cmd_shards(args):
    """Boot a sharded service plane, route keys, run a cross-shard
    transfer, and check Defs 2.1/2.2 per shard."""
    from repro import Cluster, StackConfig, check_virtual_synchrony
    config = StackConfig.byz(crypto=args.crypto, total_order=True)
    cluster = Cluster.create(shards=args.shards,
                             nodes_per_shard=args.nodes_per_shard,
                             config=config, seed=args.seed)
    print("plane: %d shards x %d nodes (%s) on one shared runtime"
          % (cluster.shards, args.nodes_per_shard, config.label()))
    cluster.run_until_stable_views(timeout=5.0)

    rsm = cluster.sharded_rsm()
    src = next(k for i in range(1000)
               if cluster.route(k := "acct:%d" % i) == 0)
    dst = next(k for i in range(1000)
               if cluster.route(k := "acct:%d" % i) == 1)
    print("routing: %r -> shard %d, %r -> shard %d"
          % (src, cluster.route(src), dst, cluster.route(dst)))
    rsm.submit(src, ("set", src, 100))
    cluster.run(1.0)
    outcome = rsm.transfer(src, dst, 30)
    cluster.run(1.0)
    print("cross-shard transfer of 30: %s (balances: %s=%s, %s=%s)"
          % (outcome, src, rsm.get(src), dst, rsm.get(dst)))

    violations = []
    for shard in range(cluster.shards):
        violations.extend(check_virtual_synchrony(
            cluster.manager.execution(shard)))
    print("Def 2.1/2.2 violations across %d shards: %d"
          % (cluster.shards, len(violations)))
    for line in violations[:5]:
        print("  " + line)
    keys = cluster.manager.key_stats()
    print("shared key cache: %d pairwise keys derived, %d cache hits"
          % (keys["pair_derivations"], keys["pair_cache_hits"]))
    cluster.stop()
    return 0 if outcome == "committed" and not violations else 1


def cmd_reshard(args):
    """Run live reshard migrations under a chaos campaign (sim), or one
    migration over real localhost UDP with --net; exit 1 on violations."""
    import json
    import os

    if args.net:
        from repro.shard.netplane import run_reshard_conformance
        report = run_reshard_conformance(
            shards=args.shards, nodes_per_shard=args.nodes_per_shard,
            keys=args.keys, rounds=args.rounds, seed=args.start,
            wall_timeout=args.deadline)
        migration = report["migration"]
        print("net reshard %d->%d shards x %d nodes: %s in %.2f s wall"
              % (migration["from_shards"], migration["to_shards"],
                 args.nodes_per_shard, "ok" if report["ok"] else "FAIL",
                 report["elapsed"]))
        print("  state=%s keys_moved=%d pairs=%d/%d fencing=%s"
              % (migration["state"], migration["keys_moved"],
                 migration["pairs_done"], migration["pairs"],
                 migration["fencing"]))
        for line in report["violations"][:10]:
            print("  " + line)
        if args.out:
            os.makedirs(args.out, exist_ok=True)
            path = os.path.join(args.out,
                                "reshard-net-seed%d.json" % args.start)
            with open(path, "w") as handle:
                json.dump(report, handle, indent=2, default=str)
            print("report written to %s" % path)
        return 0 if report["ok"] else 1

    from repro.shard.chaos import run_reshard_campaign
    seeds = range(args.start, args.start + args.seeds)
    report = run_reshard_campaign(
        seeds=seeds, shards=args.shards,
        nodes_per_shard=args.nodes_per_shard, keys=args.keys,
        rounds=args.rounds, plan_ops=args.ops, verbose=True)
    moved = sum(m["keys_moved"] for r in report["results"]
                for m in r["migrations"])
    print("campaign: %d/%d seeds clean, %d keys moved across the seam"
          % (len(report["seeds"]) - len(report["failures"]),
             len(report["seeds"]), moved))
    if args.out:
        os.makedirs(args.out, exist_ok=True)
        path = os.path.join(args.out, "reshard-campaign.json")
        with open(path, "w") as handle:
            json.dump(report, handle, indent=2, default=str)
        print("report written to %s" % path)
    return 0 if report["ok"] else 1


def cmd_calibration(args):
    """Print the calibration tables the benchmarks run on."""
    from repro.crypto.cost import CryptoCostModel
    from repro.sim.topology import BladeCenterTopology, HostModel
    host = HostModel()
    print("host model:")
    print("  send_cpu      %8.2f us/datagram" % (host.send_cpu * 1e6))
    print("  recv_cpu      %8.2f us/datagram" % (host.recv_cpu * 1e6))
    print("  byz_check_cpu %8.2f us/datagram" % (host.byz_check_cpu * 1e6))
    print("crypto: %s" % CryptoCostModel().describe())
    print("topology: %s" % BladeCenterTopology(args.nodes).describe())
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Practical Byzantine Group Communication (reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help=cmd_demo.__doc__)
    demo.add_argument("--nodes", type=int, default=8)
    demo.add_argument("--seed", type=int, default=1)
    demo.add_argument("--crypto", choices=("none", "sym", "pub"),
                      default="sym")
    demo.add_argument("--total-order", action="store_true")
    demo.set_defaults(func=cmd_demo)

    attack = sub.add_parser("attack", help=cmd_attack.__doc__)
    attack.add_argument("scenario")
    attack.add_argument("--nodes", type=int, default=12)
    attack.add_argument("--seed", type=int, default=7)
    attack.set_defaults(func=cmd_attack)

    trace = sub.add_parser("trace", help=cmd_trace.__doc__)
    trace.add_argument("--nodes", type=int, default=4)
    trace.add_argument("--seed", type=int, default=11)
    trace.add_argument("--crypto", choices=("none", "sym", "pub"),
                       default="none")
    trace.add_argument("--json", action="store_true",
                       help="emit the artifact as JSON instead of text")
    trace.set_defaults(func=cmd_trace)

    fuzz = sub.add_parser("fuzz", help=cmd_fuzz.__doc__)
    fuzz.add_argument("--seeds", type=int, default=10,
                      help="number of seeds to run")
    fuzz.add_argument("--start", type=int, default=0,
                      help="first seed of the range")
    fuzz.add_argument("--ops", type=int, default=12)
    fuzz.add_argument("--crypto", choices=("none", "sym", "pub"),
                      default="none")
    fuzz.add_argument("--total-order", action="store_true")
    fuzz.add_argument("--out", default=None,
                      help="directory for failing-seed plan JSON")
    fuzz.set_defaults(func=cmd_fuzz)

    chaos = sub.add_parser("chaos", help=cmd_chaos.__doc__)
    chaos.add_argument("--seeds", type=int, default=10)
    chaos.add_argument("--start", type=int, default=0)
    chaos.add_argument("--ops", type=int, default=12)
    chaos.add_argument("--nodes", type=int, default=6,
                       help="cluster size for --grid sweeps")
    chaos.add_argument("--preset", choices=sorted(CHAOS_PRESETS),
                       default="byz")
    chaos.add_argument("--grid", action="store_true",
                       help="sweep the drop/corrupt grid instead of "
                            "random plans")
    chaos.add_argument("--no-shrink", action="store_true",
                       help="skip ddmin minimization of failing plans")
    chaos.add_argument("--out", default=None,
                       help="directory for counterexample + summary JSON")
    chaos.add_argument("--replay", default=None, metavar="PLAN_JSON",
                       help="replay one saved plan instead of sweeping")
    chaos.set_defaults(func=cmd_chaos)

    tournament = sub.add_parser("tournament", help=cmd_tournament.__doc__)
    tournament.add_argument("--seed", type=int, default=1)
    tournament.add_argument("--nodes", type=int, default=6)
    tournament.add_argument("--population", type=int, default=8)
    tournament.add_argument("--generations", type=int, default=6)
    tournament.add_argument("--ops", type=int, default=10,
                            help="op count of each initial random plan")
    tournament.add_argument("--budget", type=int, default=150_000,
                            help="per-evaluation simulated-event budget")
    tournament.add_argument("--minutes", type=float, default=None,
                            help="wall-clock budget: keep evolving until "
                                 "this many minutes elapse (overrides "
                                 "--generations)")
    tournament.add_argument("--resume", default=None, metavar="REPORT_JSON",
                            help="prior tournament report to resume from "
                                 "(replays its evaluations from cache, "
                                 "then continues deterministically)")
    tournament.add_argument("--soak", action="store_true",
                            help="run a long-horizon soak campaign instead "
                                 "of the genetic search")
    tournament.add_argument("--events", type=int, default=1_000_000,
                            help="soak: target simulated events")
    tournament.add_argument("--recovery-bound", type=float, default=5.0,
                            help="soak: max sim-seconds to re-stabilize "
                                 "after each churn cycle")
    tournament.add_argument("--benign", action="store_true",
                            help="soak: no Byzantine episodes in the mix")
    tournament.add_argument("--out", default=None,
                            help="directory for report + counterexample JSON")
    tournament.set_defaults(func=cmd_tournament)

    net = sub.add_parser("net", help=cmd_net.__doc__)
    net.add_argument("--nodes", type=int, default=5)
    net.add_argument("--seed", type=int, default=1)
    net.add_argument("--casts", type=int, default=3,
                     help="multicasts per node once the view forms")
    net.add_argument("--crypto", choices=("none", "sym", "pub"),
                     default="sym")
    net.add_argument("--benign", action="store_true",
                     help="run the non-Byzantine stack")
    net.add_argument("--no-leave", action="store_true",
                     help="skip the polite-leave phase")
    net.add_argument("--deadline", type=float, default=8.0,
                     help="per-node give-up horizon, wall seconds")
    net.add_argument("--obs", action="store_true",
                     help="collect per-node observability exports")
    net.add_argument("--keep", action="store_true",
                     help="always keep the artifacts directory")
    net.add_argument("--json", action="store_true")
    net.set_defaults(func=cmd_net)

    shards = sub.add_parser("shards", help=cmd_shards.__doc__)
    shards.add_argument("--shards", type=int, default=4)
    shards.add_argument("--nodes-per-shard", type=int, default=5)
    shards.add_argument("--seed", type=int, default=1)
    shards.add_argument("--crypto", choices=("none", "sym", "pub"),
                        default="sym")
    shards.set_defaults(func=cmd_shards)

    reshard = sub.add_parser("reshard", help=cmd_reshard.__doc__)
    reshard.add_argument("--shards", type=int, default=4,
                         help="groups built; the ring starts one short "
                              "and the campaign's reshard grows onto it")
    reshard.add_argument("--nodes-per-shard", type=int, default=4)
    reshard.add_argument("--seeds", type=int, default=3)
    reshard.add_argument("--start", type=int, default=0,
                         help="first seed of the range")
    reshard.add_argument("--keys", type=int, default=24)
    reshard.add_argument("--rounds", type=int, default=4,
                         help="exactly-once increment rounds per seed")
    reshard.add_argument("--ops", type=int, default=14,
                         help="fault-plan ops per seed (sim campaign)")
    reshard.add_argument("--net", action="store_true",
                         help="one migration over real localhost UDP "
                              "instead of the sim chaos campaign")
    reshard.add_argument("--deadline", type=float, default=30.0,
                         help="--net: wall-clock budget, seconds")
    reshard.add_argument("--out", default=None,
                         help="directory for the report JSON")
    reshard.set_defaults(func=cmd_reshard)

    calib = sub.add_parser("calibration", help=cmd_calibration.__doc__)
    calib.add_argument("--nodes", type=int, default=48)
    calib.set_defaults(func=cmd_calibration)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
