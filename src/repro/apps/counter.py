"""Replicated counter: the smallest useful virtual-synchrony application.

Each member broadcasts increments; members apply every delivered
increment.  Within a view, Byzantine virtual synchrony guarantees all
members that survive into the next view agree on the delivered set, so
counters at surviving members coincide at every view boundary -- the
invariant the integration tests assert.
"""

from __future__ import annotations


class ReplicatedCounter:
    """A grow-only counter replicated over a group."""

    def __init__(self, endpoint):
        self.endpoint = endpoint
        self.value = 0
        self.per_origin = {}
        self.view_snapshots = []  # (vid, value) at each view install
        endpoint.on_cast = self._on_cast
        endpoint.on_view = self._on_view

    def increment(self, amount=1):
        self.endpoint.cast(("incr", amount), size=8)

    def _on_cast(self, event):
        payload = event.payload
        if (not isinstance(payload, tuple) or len(payload) != 2
                or payload[0] != "incr" or not isinstance(payload[1], int)):
            return  # a garbage increment from a Byzantine member is ignored
        self.value += payload[1]
        self.per_origin[event.origin] = (
            self.per_origin.get(event.origin, 0) + payload[1])

    def _on_view(self, event):
        self.view_snapshots.append((event.view.vid, self.value))
