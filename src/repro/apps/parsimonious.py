"""Parsimonious execution: separating agreement from execution.

The paper's related-work discussion (section 5, citing Yin et al. [56]
and Ramasamy et al. [43]) describes the split the authors say their
results apply to: an *agreement cluster* of all members orders the
requests, but each request is *executed* by only a small primary
committee of f + 1 members; replies are compared, and a mismatch triggers
re-execution on f more members, where any reply repeated f + 1 times is
correct (at most f liars).

This module implements that service on top of the totally-ordered group:
the whole group agrees on the order (consensus does that), committee
membership is deterministic per request (rotating, locally computable),
and reply voting tolerates Byzantine executors while doing ~(f+1)/n of
the work of full active replication.
"""

from __future__ import annotations


class ParsimoniousService:
    """One member's instance of the agreement/execution split.

    Parameters
    ----------
    endpoint:
        A group endpoint whose stack runs ``total_order=True``.
    execute:
        Deterministic ``execute(command) -> result`` supplied by the
        application.  A Byzantine member may return garbage; voting masks
        up to f of them per request.
    on_result:
        ``callback(request_id, result)`` once a reply is certified.
    """

    def __init__(self, endpoint, execute, on_result=None, lie=None):
        if not endpoint.process.config.total_order:
            raise ValueError("parsimonious execution requires total_order")
        self.endpoint = endpoint
        self.execute = execute
        self.on_result = on_result or (lambda request_id, result: None)
        self.lie = lie  # Byzantine hook: corrupt our own replies
        self._ordered = 0
        self._replies = {}     # request_id -> {member: result}
        self._certified = {}   # request_id -> result
        self._pending = {}     # request_id -> command
        self._escalated = set()
        self.executions = 0
        endpoint.on_cast = self._on_cast

    # ------------------------------------------------------------------
    @property
    def f(self):
        return self.endpoint.process.f

    def submit(self, command, size=32):
        """Order a request; returns its request id."""
        return self.endpoint.cast(("preq", command), size=size)

    def certified(self, request_id):
        return self._certified.get(request_id)

    # ------------------------------------------------------------------
    def committee(self, index, extra=0):
        """The deterministic executor committee of request ``index``.

        f + 1 members, rotating with the request index so load spreads;
        ``extra`` widens it for the escalation round.
        """
        members = self.endpoint.view.mbrs
        size = min(len(members), self.f + 1 + extra)
        start = index % len(members)
        return tuple(members[(start + k) % len(members)]
                     for k in range(size))

    # ------------------------------------------------------------------
    def _on_cast(self, event):
        payload = event.payload
        if not isinstance(payload, tuple) or len(payload) != 2:
            return
        tag, body = payload
        if tag == "preq":
            self._on_request(event.msg_id, body)
        elif tag == "prep":
            self._on_reply(event.origin, body)

    def _on_request(self, request_id, command):
        index = self._ordered
        self._ordered += 1
        self._pending[request_id] = (index, command)
        me = self.endpoint.node_id
        if me in self.committee(index):
            self._run_and_reply(request_id, command)

    def _run_and_reply(self, request_id, command):
        self.executions += 1
        result = self.execute(command)
        if self.lie is not None:
            result = self.lie(command, result)
        self.endpoint.cast(("prep", (request_id, result)), size=24)

    def _on_reply(self, executor, body):
        if not isinstance(body, tuple) or len(body) != 2:
            return
        request_id, result = body
        if request_id in self._certified:
            return
        entry = self._pending.get(request_id)
        if entry is None:
            return
        index, command = entry
        committee = self.committee(
            index, extra=self.f if request_id in self._escalated else 0)
        if executor not in committee:
            # a reply from outside the committee is a verbose failure
            self.endpoint.process.verbose_detector.illegal(
                executor, "parsimonious:uninvited-reply")
            return
        replies = self._replies.setdefault(request_id, {})
        replies.setdefault(executor, result)
        self._evaluate(request_id, index, command, committee)

    def _evaluate(self, request_id, index, command, committee):
        replies = self._replies.get(request_id, {})
        votes = {}
        for result in replies.values():
            votes[result] = votes.get(result, 0) + 1
        # a result repeated f+1 times cannot be all-liars: certify it
        for result, count in votes.items():
            if count >= self.f + 1:
                self._certify(request_id, result)
                return
        if len(replies) >= len(committee):
            if len(votes) == 1 and self.f == 0:
                self._certify(request_id, next(iter(votes)))
                return
            if len(votes) > 1 and request_id not in self._escalated:
                # mismatch: escalate to f more executors ([43])
                self._escalated.add(request_id)
                wider = self.committee(index, extra=self.f)
                if self.endpoint.node_id in wider and \
                        self.endpoint.node_id not in replies:
                    self._run_and_reply(request_id, command)

    def _certify(self, request_id, result):
        self._certified[request_id] = result
        self._pending.pop(request_id, None)
        self.on_result(request_id, result)
