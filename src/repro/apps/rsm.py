"""Replicated state machine on atomic broadcast (paper section 3.5).

Adding total ordering to virtual synchrony yields atomic delivery, the
basic mechanism for replicated state machines [Schneider].  This module is
the canonical consumer: every replica applies the same deterministic
commands in the same total order and therefore stays in the same state --
even with Byzantine members injecting commands, as long as the ordering
layer's agreement holds.
"""

from __future__ import annotations

import hashlib


class StateMachine:
    """Deterministic application state; subclass or use KVStore."""

    def apply(self, origin, command):
        raise NotImplementedError

    def digest(self):
        raise NotImplementedError


class KVStore(StateMachine):
    """A key-value store with read-modify-write commands."""

    def __init__(self):
        self.data = {}
        self.applied = 0

    def apply(self, origin, command):
        if not isinstance(command, tuple) or not command:
            return None  # malformed commands are ignored deterministically
        op = command[0]
        result = None
        if op == "set" and len(command) == 3:
            self.data[command[1]] = command[2]
        elif op == "del" and len(command) == 2:
            self.data.pop(command[1], None)
        elif op == "incr" and len(command) == 3:
            key = command[1]
            base = self.data.get(key, 0)
            if isinstance(base, int) and isinstance(command[2], int):
                self.data[key] = base + command[2]
                result = self.data[key]
        elif op == "append" and len(command) == 3:
            key = command[1]
            base = self.data.get(key, ())
            if isinstance(base, tuple):
                self.data[key] = base + (command[2],)
        self.applied += 1
        return result

    def digest(self):
        canon = tuple(sorted(self.data.items(), key=repr))
        return hashlib.sha256(repr(canon).encode("utf-8")).hexdigest()[:16]


class Replica:
    """One RSM replica bound to a group endpoint.

    Requires a stack configured with ``total_order=True`` -- construction
    refuses anything weaker, because state-machine replication is exactly
    the semantics total ordering buys.
    """

    def __init__(self, endpoint, machine=None):
        if not endpoint.process.config.total_order:
            raise ValueError("replicated state machine requires total_order")
        self.endpoint = endpoint
        self.machine = machine or KVStore()
        self.log = []
        endpoint.on_cast = self._on_cast
        # joiners receive the group's state through the Byzantine-safe
        # state-transfer layer (f+1 matching digests vouch the snapshot)
        endpoint.state_provider = self._snapshot
        endpoint.state_installer = self._install_snapshot

    def submit(self, command, size=32):
        """Propose a command; it is applied once atomically delivered."""
        return self.endpoint.cast(("rsm", command), size=size)

    def _on_cast(self, event):
        payload = event.payload
        if not isinstance(payload, tuple) or len(payload) != 2 or payload[0] != "rsm":
            return
        command = payload[1]
        self.log.append((event.origin, command))
        self.machine.apply(event.origin, command)

    def state_digest(self):
        return self.machine.digest()

    def _snapshot(self):
        if isinstance(self.machine, KVStore):
            return ("kv", tuple(sorted(self.machine.data.items(), key=repr)),
                    self.machine.applied)
        return ("opaque", repr(self.machine))

    def _install_snapshot(self, snapshot):
        if (isinstance(snapshot, tuple) and len(snapshot) == 3
                and snapshot[0] == "kv" and isinstance(self.machine, KVStore)):
            self.machine.data = dict(snapshot[1])
            self.machine.applied = snapshot[2]
