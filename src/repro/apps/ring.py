"""The Ensemble "Ring" demo (paper section 4).

The application advances in rounds: each node casts a burst of k messages
and waits until it has received k messages from every other member, then
moves to the next round.  With k = 1 the round time measures network
latency; with large k the system saturates and the delivered-broadcast
rate measures throughput.

Throughput accounting follows the paper: a broadcast delivered to n nodes
counts as *one* message.

Measurements land in a :class:`repro.obs.MetricsRegistry` under the
``("app", "ring", ...)`` coordinates -- the group's shared registry when
the cluster was bootstrapped with observability on, or a private one
otherwise, so the demo works identically either way.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry


class RingDemo:
    """Drives a :class:`repro.core.group.Group` through Ring rounds."""

    def __init__(self, group, burst=8, msg_size=16, warmup_rounds=2):
        self.group = group
        self.burst = burst
        self.msg_size = msg_size
        self.warmup_rounds = warmup_rounds
        self._round = {}        # node -> current round number
        self._received = {}     # node -> {origin: count in current round}
        self._cast_times = {}   # msg_id -> cast time
        self.metrics = (group.metrics if group.metrics is not None
                        else MetricsRegistry())
        self._deliveries = self.metrics.counter("app", "ring", "deliveries")
        self.latency = self.metrics.histogram("app", "ring", "latency")
        self.rounds_completed = {}
        self.measuring = False
        self._measure_start = None
        self._measured_deliveries = 0
        for node, endpoint in group.endpoints.items():
            endpoint.record_events = False
            endpoint.on_cast = self._make_on_cast(node)
            self._round[node] = 0
            self._received[node] = {}
            self.rounds_completed[node] = 0

    # ------------------------------------------------------------------
    def start(self):
        for node in self.group.endpoints:
            self._send_burst(node)

    def start_measurement(self):
        self.measuring = True
        self._measure_start = self.group.sim.now
        self._measured_deliveries = 0

    def stop_measurement(self):
        self.measuring = False
        self._measure_stop = self.group.sim.now

    @property
    def deliveries(self):
        """Total cast-deliver events across all nodes."""
        return self._deliveries.value

    @property
    def throughput(self):
        """Broadcasts delivered per simulated second (paper's metric)."""
        stop = getattr(self, "_measure_stop", self.group.sim.now)
        elapsed = stop - (self._measure_start or 0.0)
        n = len(self.group.endpoints)
        if elapsed <= 0 or n == 0:
            return float("nan")
        return self._measured_deliveries / (n - 1) / elapsed

    def min_rounds_completed(self):
        return min(self.rounds_completed.values())

    # ------------------------------------------------------------------
    def _send_burst(self, node):
        endpoint = self.group.endpoints[node]
        if endpoint.process.stopped:
            return
        rnd = self._round[node]
        now = self.group.sim.now
        for i in range(self.burst):
            msg_id = endpoint.cast((rnd, i), size=self.msg_size)
            self._cast_times[msg_id] = now

    def _make_on_cast(self, node):
        def on_cast(event):
            self._deliveries.inc()
            if self.measuring:
                self._measured_deliveries += 1
            cast_time = self._cast_times.get(event.msg_id)
            if cast_time is not None and self.rounds_completed[node] >= self.warmup_rounds:
                self.latency.observe(event.time - cast_time)
            if event.origin == node:
                return  # own messages do not gate the round
            received = self._received[node]
            received[event.origin] = received.get(event.origin, 0) + 1
            self._maybe_advance(node)
        return on_cast

    def _maybe_advance(self, node):
        endpoint = self.group.endpoints[node]
        view = endpoint.view
        received = self._received[node]
        for member in view.mbrs:
            if member == node:
                continue
            if received.get(member, 0) < self.burst:
                return
        for member in list(received):
            received[member] = received[member] - self.burst
            if received[member] <= 0:
                del received[member]
        self._round[node] += 1
        self.rounds_completed[node] += 1
        self._send_burst(node)
