"""The paper's 2-step Byzantine uniform broadcast (section 3.4.3, Figure 4).

A Byzantine sender may hand different versions of "the same" message to
different correct processes; *uniform* broadcast guarantees all core
processes deliver one identical value.  The paper trades resilience for
latency: two communication steps (``initial`` then ``echo``) instead of
Bracha's three, at the price of lower resilience.

Per broadcast (tagged ``(origin, k)`` to keep concurrent broadcasts apart):

* the originator sends ``initial(v)``;
* a process echoes ``v`` after receiving the ``initial`` from the origin
  itself, or after n/2 + f + 1 ``echo(v)`` messages -- and echoes at most
  once, ever;
* a process delivers ``v`` after n/2 + 2f + 1 ``echo(v)`` messages.

Safety (Lemma 3.7) holds because two deliverable values would need
n/2 + f + 1 core echoes each, forcing some core process to echo twice.
Liveness (Lemmas 3.8/3.9) needs every core process to be able to reach the
delivery threshold, i.e. n - f >= n/2 + 2f + 1; the paper headlines
f < n/5 but that inequality actually requires n >= 6f + 2, and we expose
the safe bound as :func:`repro.consensus.interface.max_f_uniform`
(DESIGN.md deviation 1).
"""

from __future__ import annotations

from collections import Counter

from repro.consensus.interface import AgreementInstance


class UniformBroadcast(AgreementInstance):
    """One uniform broadcast instance, identified by ``(origin, k)``."""

    #: regression-revert switch (tests only): with ``False``, a repeated
    #: ``originate`` re-broadcasts the initial -- combined with a caller
    #: that retries on every ack-matrix update, the zero-delay
    #: self-delivery feeds itself forever (the livelock PR 3 fixed)
    idempotent_originate = True

    def __init__(self, instance_id, members, me, f, origin, broadcast,
                 on_deliver=None, on_misbehavior=None):
        super().__init__(instance_id, members, me, f, broadcast,
                         is_suspected=None, on_decide=on_deliver,
                         on_misbehavior=on_misbehavior)
        if self.n - f < self.n / 2.0 + 2 * f + 1:
            raise ValueError(
                "2-step uniform broadcast cannot terminate with n=%d, f=%d "
                "(needs n - f >= n/2 + 2f + 1)" % (self.n, f)
            )
        self.origin = origin
        self._initial_value = None
        self._echoed_value = None  # a correct process echoes at most once
        self._echoes = {}          # sender -> value (first echo only)

    # thresholds, kept as real-valued comparisons exactly as in Figure 4
    @property
    def echo_threshold(self):
        return self.n / 2.0 + self.f + 1

    @property
    def deliver_threshold(self):
        return self.n / 2.0 + 2 * self.f + 1

    # ------------------------------------------------------------------
    def originate(self, value):
        """Step 0: only the origin broadcasts ``initial``.

        Idempotent: retransmission of a lost initial is the reliable
        layer's job, so a second call must not re-broadcast (a caller
        retrying on every ack-matrix update would otherwise feed its own
        zero-delay self-delivery forever).
        """
        if self.me != self.origin:
            raise RuntimeError("only the origin may originate")
        if self._initial_value is not None and self.idempotent_originate:
            return
        self.broadcast(("ub-initial", value))
        self._on_initial(self.me, value)

    def on_message(self, sender, payload):
        if sender not in self.members:
            return
        kind = payload[0]
        if kind == "ub-initial":
            self._on_initial(sender, payload[1])
        elif kind == "ub-echo":
            self._on_echo(sender, payload[1])
        else:
            self.on_misbehavior(sender, "ub:unknown-kind")

    @property
    def delivered(self):
        return self.decided

    # ------------------------------------------------------------------
    def _on_initial(self, sender, value):
        if sender != self.origin:
            # only the origin may send initial for its own tag
            self.on_misbehavior(sender, "ub:initial-forged")
            return
        if self._initial_value is not None:
            if self._initial_value != value:
                self.on_misbehavior(sender, "ub:initial-equivocated")
            return
        self._initial_value = value
        self._maybe_echo(value)

    def _on_echo(self, sender, value):
        previous = self._echoes.get(sender)
        if previous is not None:
            if previous != value:
                self.on_misbehavior(sender, "ub:echo-equivocated")
            return
        self._echoes[sender] = value
        counts = Counter(self._echoes.values())
        count = counts[value]
        if count >= self.echo_threshold:
            self._maybe_echo(value)
            count = Counter(self._echoes.values())[value]
        if count >= self.deliver_threshold:
            self._decide(value)

    def _maybe_echo(self, value):
        if self._echoed_value is not None:
            return
        self._echoed_value = value
        self.broadcast(("ub-echo", value))
        self._on_echo(self.me, value)
