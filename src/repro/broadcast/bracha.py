"""Bracha's reliable broadcast (n > 3f) -- the higher-resilience option.

The paper's layered architecture allows swapping in "any other protocol
that offers higher resiliency, yet higher latency, such as [11]" (Bracha).
This is the classic 3-phase echo/ready protocol:

* the origin sends ``initial(v)``;
* on the origin's ``initial``, a process sends ``echo(v)`` (at most once);
* on more than (n + f) / 2 ``echo(v)`` or f + 1 ``ready(v)``, a process
  sends ``ready(v)`` (at most once);
* on 2f + 1 ``ready(v)``, a process delivers ``v``.

It tolerates f < n/3 at the cost of three communication steps -- one more
than :class:`repro.broadcast.uniform.UniformBroadcast`, which is exactly
the performance/resilience trade-off the membership layer lets deployments
pick (``StackConfig.uniform_protocol``).
"""

from __future__ import annotations

from collections import Counter

from repro.consensus.interface import AgreementInstance


class BrachaBroadcast(AgreementInstance):
    """One Bracha reliable-broadcast instance."""

    #: regression-revert switch (tests only); see
    #: :attr:`UniformBroadcast.idempotent_originate`
    idempotent_originate = True

    def __init__(self, instance_id, members, me, f, origin, broadcast,
                 on_deliver=None, on_misbehavior=None):
        super().__init__(instance_id, members, me, f, broadcast,
                         is_suspected=None, on_decide=on_deliver,
                         on_misbehavior=on_misbehavior)
        if self.n <= 3 * f:
            raise ValueError(
                "Bracha broadcast needs n > 3f (n=%d, f=%d)" % (self.n, f)
            )
        self.origin = origin
        self._initial_value = None
        self._echoed = None
        self._readied = None
        self._echoes = {}
        self._readies = {}

    #: number of communication steps to delivery in a failure-free run
    steps = 3

    # ------------------------------------------------------------------
    def originate(self, value):
        # idempotent, like UniformBroadcast.originate: lost initials are
        # recovered by the reliable layer, never by re-broadcasting here
        if self.me != self.origin:
            raise RuntimeError("only the origin may originate")
        if self._initial_value is not None and self.idempotent_originate:
            return
        self.broadcast(("br-initial", value))
        self._on_initial(self.me, value)

    def on_message(self, sender, payload):
        if sender not in self.members:
            return
        kind = payload[0]
        if kind == "br-initial":
            self._on_initial(sender, payload[1])
        elif kind == "br-echo":
            self._record(self._echoes, sender, payload[1], "echo")
        elif kind == "br-ready":
            self._record(self._readies, sender, payload[1], "ready")
        else:
            self.on_misbehavior(sender, "bracha:unknown-kind")
        self._progress()

    @property
    def delivered(self):
        return self.decided

    # ------------------------------------------------------------------
    def _on_initial(self, sender, value):
        if sender != self.origin:
            self.on_misbehavior(sender, "bracha:initial-forged")
            return
        if self._initial_value is not None:
            if self._initial_value != value:
                self.on_misbehavior(sender, "bracha:initial-equivocated")
            return
        self._initial_value = value
        self._send_echo(value)
        self._progress()

    def _record(self, table, sender, value, tag):
        previous = table.get(sender)
        if previous is not None:
            if previous != value:
                self.on_misbehavior(sender, "bracha:%s-equivocated" % tag)
            return
        table[sender] = value

    def _send_echo(self, value):
        if self._echoed is not None:
            return
        self._echoed = value
        self.broadcast(("br-echo", value))
        self._echoes.setdefault(self.me, value)

    def _send_ready(self, value):
        if self._readied is not None:
            return
        self._readied = value
        self.broadcast(("br-ready", value))
        self._readies.setdefault(self.me, value)

    def _progress(self):
        n, f = self.n, self.f
        echo_counts = Counter(self._echoes.values())
        ready_counts = Counter(self._readies.values())
        for value, count in echo_counts.items():
            if count > (n + f) / 2.0:
                self._send_ready(value)
        for value, count in Counter(self._readies.values()).items():
            if count >= f + 1:
                self._send_ready(value)
        ready_counts = Counter(self._readies.values())
        for value, count in ready_counts.items():
            if count >= 2 * f + 1:
                self._decide(value)
                return
