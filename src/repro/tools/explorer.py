"""Bounded schedule exploration for the agreement protocols.

The paper proves Algorithm 1 and the 2-step uniform broadcast correct on
paper (and mentions ITUA's formal verification as desirable future work,
section 6).  This tool is the executable counterpart: it runs a protocol
instance set under *every* message-delivery schedule up to a bound --
breadth-limited DFS over the nondeterministic choice of which in-flight
message to deliver next -- and checks the safety properties in every
reachable terminal state.

Exhaustive exploration explodes fast, so it is only tractable for tiny
systems (n <= 5, short protocols); that is exactly where hand-proofs are
most often wrong about thresholds, which makes it a good complement to
the randomized tests.
"""

from __future__ import annotations


class ScheduleExplorer:
    """Explores delivery orders of a message-passing protocol.

    The protocol under test is supplied as a factory returning fresh
    instances wired to the explorer's virtual bus:

    * ``factory(explorer)`` creates and returns ``{node_id: instance}``;
      instances send by calling ``explorer.broadcast(sender, payload)``;
    * instances receive via ``on_message(sender, payload)``;
    * ``check(instances)`` returns a violation string or None; it is
      evaluated at every quiescent state.
    """

    def __init__(self, factory, check, max_states=200_000,
                 max_inflight_choice=None):
        self.factory = factory
        self.check = check
        self.max_states = max_states
        self.max_inflight_choice = max_inflight_choice
        self.states_explored = 0
        self.terminal_states = 0
        self.violations = []
        self.truncated = False

    # ------------------------------------------------------------------
    # bus API used by instances under test
    # ------------------------------------------------------------------
    def broadcast(self, sender, payload):
        for receiver in self._instances:
            if receiver != sender:
                self._inflight.append((sender, receiver, payload))

    def send(self, sender, receiver, payload):
        self._inflight.append((sender, receiver, payload))

    # ------------------------------------------------------------------
    def run(self):
        """Explore; returns True if no schedule violated the check."""
        self._explore_root()
        return not self.violations

    def _explore_root(self):
        self._instances = {}
        self._inflight = []
        result = self.factory(self)
        if isinstance(result, tuple):
            # (instances, kickoff): register first, THEN let the protocol
            # start -- its initial broadcasts need the member list
            self._instances, kickoff = result
            kickoff()
        else:
            self._instances = result
        self._explore(self._inflight)

    def _explore(self, inflight):
        self.states_explored += 1
        if self.states_explored > self.max_states:
            self.truncated = True
            return
        if not inflight:
            self.terminal_states += 1
            violation = self.check(self._instances)
            if violation:
                self.violations.append(violation)
            return
        choices = range(len(inflight))
        if (self.max_inflight_choice is not None
                and len(inflight) > self.max_inflight_choice):
            choices = range(self.max_inflight_choice)
        for index in choices:
            if self.violations:
                return  # first counterexample is enough
            sender, receiver, payload = inflight[index]
            rest = inflight[:index] + inflight[index + 1:]
            # deliver and capture the new sends it triggers
            saved_instances = self._snapshot()
            self._inflight = list(rest)
            self._instances[receiver].on_message(sender, payload)
            self._explore(self._inflight)
            self._restore(saved_instances)

    # ------------------------------------------------------------------
    # state snapshot/restore: protocols under test must be deep-copyable
    # ------------------------------------------------------------------
    def _snapshot(self):
        import copy
        return copy.deepcopy(self._instances)

    def _restore(self, snapshot):
        self._instances = snapshot


def explore_uniform_broadcast(n, f, origin=0, two_faced=None,
                              max_states=100_000):
    """Explore the 2-step UB for uniformity under every schedule.

    ``two_faced``: optional ``{receiver: value}`` overriding the initial
    the Byzantine origin shows each receiver.
    """
    from repro.broadcast.uniform import UniformBroadcast

    def factory(bus):
        instances = {}
        members = list(range(n))
        for i in members:
            instances[i] = UniformBroadcast(
                ("x", 0), members, i, f, origin,
                lambda payload, i=i: bus.broadcast(i, payload))
        # kick off: the origin's initial, possibly two-faced
        for receiver in members:
            if receiver == origin:
                continue
            value = "v"
            if two_faced is not None:
                value = two_faced.get(receiver, "v")
            bus.send(origin, receiver, ("ub-initial", value))
        return instances

    def check(instances):
        delivered = {i: inst.decision for i, inst in instances.items()
                     if inst.decided and i != origin}
        values = set(delivered.values())
        if len(values) > 1:
            return "uniformity violated: %r" % (delivered,)
        return None

    explorer = ScheduleExplorer(factory, check, max_states=max_states,
                                max_inflight_choice=4)
    explorer.run()
    return explorer


def explore_consensus_agreement(n, f, proposals, max_states=100_000,
                                width=1):
    """Explore the vector consensus for agreement under every schedule.

    Tractable only for very small n; crashes and suspicions are not
    modelled here (the randomized tests cover those), pure asynchrony is.
    """
    from repro.consensus.vector import VectorConsensus

    def factory(bus):
        instances = {}
        members = list(range(n))
        for i in members:
            instances[i] = VectorConsensus(
                "x", members, i, f, proposals[i],
                lambda payload, i=i: bus.broadcast(i, payload),
                coordinator_seed=0)

        def kickoff():
            for i in members:
                instances[i].start()
        return instances, kickoff

    def check(instances):
        decisions = {i: inst.decision for i, inst in instances.items()
                     if inst.decided}
        if len(set(decisions.values())) > 1:
            return "agreement violated: %r" % (decisions,)
        for i, decided in decisions.items():
            for k in range(width):
                inputs = {tuple(proposals[j])[k] for j in proposals}
                if len(inputs) == 1 and decided[k] not in inputs:
                    return "validity violated at entry %d: %r" % (k, decided)
        return None

    explorer = ScheduleExplorer(factory, check, max_states=max_states,
                                max_inflight_choice=3)
    explorer.run()
    return explorer
