"""Execution timelines: render a recorded run as text.

Debugging distributed protocols from per-node logs is miserable; this
tool merges the recorded histories of an :class:`Execution` into one
global, time-ordered timeline (the external observer's view the formal
model grants, section 2.1), and can summarize per-view delivery counts.
"""

from __future__ import annotations

from repro.core.history import (EV_CAST, EV_CAST_DELIVER, EV_SEND,
                                EV_SEND_DELIVER, EV_VIEW)

_FORMATTERS = {
    EV_VIEW: lambda ev: "VIEW %s members=%s" % (ev[2], (ev[3],)),
    EV_CAST: lambda ev: "cast %s in %s" % (ev[2], ev[3]),
    EV_CAST_DELIVER: lambda ev: "deliver %s from %s [%s] in %s"
                                % (ev[2], ev[3], ev[4], ev[5]),
    EV_SEND: lambda ev: "send to %s in %s" % (ev[2], ev[3]),
    EV_SEND_DELIVER: lambda ev: "p2p-deliver from %s [%s] in %s"
                                % (ev[2], ev[3], ev[4]),
}


def merged_events(execution, kinds=None, nodes=None):
    """All events of the execution, globally time-ordered.

    Yields ``(time, node, kind, event_tuple)``.
    """
    rows = []
    for node, history in execution.histories.items():
        if nodes is not None and node not in nodes:
            continue
        for ev in history.events:
            if kinds is not None and ev[0] not in kinds:
                continue
            rows.append((ev[1], repr(node), node, ev))
    rows.sort(key=lambda row: (row[0], row[1]))
    for time, _key, node, ev in rows:
        yield time, node, ev[0], ev


def render_timeline(execution, kinds=None, nodes=None, limit=None):
    """Text lines: ``t=0.001234  node 3  deliver (0, 1) from 0 ...``."""
    lines = []
    for time, node, kind, ev in merged_events(execution, kinds, nodes):
        formatter = _FORMATTERS.get(kind, lambda ev: repr(ev))
        lines.append("t=%10.6f  node %-6r %s" % (time, node, formatter(ev)))
        if limit is not None and len(lines) >= limit:
            lines.append("... (truncated at %d events)" % limit)
            break
    return lines


def render_trace(trace, node=None, limit=None):
    """Text lines for a recorded :class:`repro.obs.trace.Trace` span.

    The per-message analogue of :func:`render_timeline`: every layer hop,
    wire transfer, and delivery of one message, across all nodes, in time
    order.  With ``node``, only that node's hops.
    """
    if trace is None:
        return ["(no trace recorded for that message id)"]
    lines = []
    events = (trace.events if node is None
              else trace.events_for(node))
    for ev in events:
        detail = "" if ev.detail is None else " %r" % (ev.detail,)
        lines.append("t=%10.6f  node %-6r %-14s %-7s%s"
                     % (ev.time, ev.node, ev.layer, ev.action, detail))
        if limit is not None and len(lines) >= limit:
            lines.append("... (truncated at %d events)" % limit)
            break
    return lines


def view_summary(execution):
    """Per-view digest: members, installers, and delivery counts.

    Returns ``{vid: {"members": ..., "installed_by": [...],
    "deliveries": {node: count}}}`` -- the quickest way to see whether a
    view change lost or duplicated anything.
    """
    summary = {}
    for node, history in execution.histories.items():
        for _time, vid, mbrs in history.views():
            entry = summary.setdefault(
                vid, {"members": mbrs, "installed_by": [], "deliveries": {}})
            entry["installed_by"].append(node)
        for ev in history.events:
            if ev[0] == EV_CAST_DELIVER:
                vid = ev[5]
                entry = summary.setdefault(
                    vid, {"members": None, "installed_by": [],
                          "deliveries": {}})
                entry["deliveries"][node] = entry["deliveries"].get(node, 0) + 1
    return summary


def render_view_summary(execution):
    lines = []
    summary = view_summary(execution)
    for vid in sorted(summary, key=lambda v: v.key()):
        entry = summary[vid]
        installers = sorted(entry["installed_by"], key=repr)
        counts = sorted(entry["deliveries"].items(), key=lambda kv: repr(kv[0]))
        lines.append("%s  members=%s" % (vid, entry["members"]))
        lines.append("    installed by: %s" % (installers,))
        lines.append("    deliveries:   %s" % (counts,))
    return lines
