"""ASCII line charts for EXPERIMENTS.md.

The paper's evaluation is figures; a text repository renders them as
monospace charts so the curve *shapes* -- who is above whom, where the
knees are -- survive without an image pipeline.
"""

from __future__ import annotations

MARKERS = "ox+*#@%&"


def render_chart(series, width=64, height=16, title="", x_label="",
                 y_label="", y_format="{:.0f}"):
    """Render ``{label: [(x, y), ...]}`` as an ASCII chart.

    Returns a list of text lines.  Points are plotted with one marker per
    series; collisions show the later series' marker.
    """
    points = [(x, y) for pts in series.values() for x, y in pts
              if y == y]  # drop NaNs
    if not points:
        return [title, "(no data)"]
    xs = [x for x, _y in points]
    ys = [y for _x, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1
    if y_hi == y_lo:
        y_hi = y_lo + 1
    y_lo = min(y_lo, 0.0) if y_lo > 0 else y_lo

    grid = [[" "] * width for _ in range(height)]

    def plot(x, y, marker):
        col = int(round((x - x_lo) / (x_hi - x_lo) * (width - 1)))
        row = int(round((y - y_lo) / (y_hi - y_lo) * (height - 1)))
        grid[height - 1 - row][col] = marker

    legend = []
    for index, (label, pts) in enumerate(series.items()):
        marker = MARKERS[index % len(MARKERS)]
        legend.append("%s %s" % (marker, label))
        ordered = sorted((p for p in pts if p[1] == p[1]))
        # connect consecutive points with interpolated dots
        for (x1, y1), (x2, y2) in zip(ordered, ordered[1:]):
            steps = max(2, int((x2 - x1) / (x_hi - x_lo) * width))
            for s in range(1, steps):
                t = s / float(steps)
                plot(x1 + (x2 - x1) * t, y1 + (y2 - y1) * t, ".")
        for x, y in ordered:
            plot(x, y, marker)

    lines = []
    if title:
        lines.append(title)
    top_label = y_format.format(y_hi)
    bottom_label = y_format.format(y_lo)
    pad = max(len(top_label), len(bottom_label))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(pad)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(pad)
        else:
            prefix = " " * pad
        lines.append("%s |%s" % (prefix, "".join(row)))
    axis = "%s +%s" % (" " * pad, "-" * width)
    lines.append(axis)
    x_lo_label = "{:g}".format(x_lo)
    x_hi_label = "{:g}".format(x_hi)
    x_line = (" " * (pad + 2) + x_lo_label
              + " " * max(1, width - len(x_lo_label) - len(x_hi_label))
              + x_hi_label)
    lines.append(x_line)
    if x_label:
        lines.append(" " * (pad + 2) + x_label.center(width))
    lines.append("  ".join(legend))
    return lines


def chart_block(series, **kw):
    """The chart wrapped in a Markdown code fence."""
    return "\n".join(["```"] + render_chart(series, **kw) + ["```"])
