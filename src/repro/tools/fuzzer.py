"""Scenario fuzzing: random fault schedules, checked against the model.

The unit tests pin known scenarios; the fuzzer hunts for unknown ones.
Each run draws a random script of operations -- traffic, crashes, leaves,
joins, partitions, heals, Byzantine activations -- and executes it through
the chaos engine (:mod:`repro.chaos`), then verifies the safety clauses of
Definitions 2.1/2.2 on the recorded execution.  Seeds make every found
counterexample replayable, and :meth:`ScenarioFuzzer.as_plan` exports the
recorded script as a :class:`~repro.chaos.plan.FaultPlan` so failures can
be shrunk and replayed by the chaos tooling.

Determinism note: the *sequence of draws* from ``self.rng`` below is part
of each seed's identity -- reordering or removing a draw changes every
scenario after it.  The refactor onto the chaos engine deliberately kept
the draw sequence of the original in-line implementation.
"""

from __future__ import annotations

import random

from repro import Group, StackConfig
from repro.byzantine.behaviors import (MuteNode, TwoFacedCaster, VerboseNode)
from repro.chaos.engine import ChaosEngine
from repro.chaos.plan import FaultPlan

OPS = ("cast_burst", "run", "crash", "leave", "partition", "heal", "join")


class ScenarioFuzzer:
    """Generates one random scenario per seed; the chaos engine runs it."""

    def __init__(self, seed, n=None, config=None, ops=12,
                 byzantine_fraction=0.3, allow=OPS, obs=False):
        self.seed = seed
        self.rng = random.Random(seed)
        self.n = n or self.rng.randint(6, 10)
        self.ops = ops
        self.allow = allow
        self.config = config or StackConfig.byz()
        if obs and not self.config.obs:
            # observability never perturbs the run (pure accumulators), so
            # turning it on does not change which seeds fail; clone()
            # normalizes obs=True into a default ObsConfig
            self.config = self.config.clone(obs=obs)
        self.byzantine_fraction = byzantine_fraction
        self.script = []
        self.group = None
        self.engine = None
        self.next_join_id = 1000

    # ------------------------------------------------------------------
    # engine-backed state (single source of truth for crash/leave sets)
    # ------------------------------------------------------------------
    @property
    def crashed(self):
        return self.engine.crashed if self.engine is not None else set()

    @property
    def left(self):
        return self.engine.left if self.engine is not None else set()

    # ------------------------------------------------------------------
    def build(self):
        behaviors = {}
        if self.rng.random() < self.byzantine_fraction:
            villain = self.rng.randrange(self.n)
            behavior = self.rng.choice([
                MuteNode(mute_at=self.rng.uniform(0.05, 0.3)),
                VerboseNode(start_at=self.rng.uniform(0.05, 0.3)),
                TwoFacedCaster(),
            ])
            behaviors[villain] = behavior
            params = {}
            if isinstance(behavior, MuteNode):
                params = {"mute_at": behavior.mute_at}
            elif isinstance(behavior, VerboseNode):
                params = {"start_at": behavior.start_at}
            self.script.append(["byzantine", villain,
                                type(behavior).__name__, params])
        self.group = Group.bootstrap(self.n, config=self.config,
                                     seed=self.seed, behaviors=behaviors)
        self.engine = ChaosEngine.attached(self.group)
        return self

    def _apply(self, op):
        """Record one engine op in the script and execute it."""
        self.script.append(op)
        self.engine.apply(op)

    # ------------------------------------------------------------------
    def _live_correct(self):
        return [node for node, p in self.group.processes.items()
                if not p.stopped and node not in self.group.byzantine_nodes
                and node not in self.left]

    def _op_cast_burst(self):
        live = self._live_correct()
        if not live:
            return
        sender = self.rng.choice(live)
        count = self.rng.randint(1, 12)
        self._apply(["cast", sender, count])

    def _op_run(self):
        duration = self.rng.choice((0.05, 0.1, 0.3, 0.6))
        self._apply(["run", duration])

    def _op_crash(self):
        live = self._live_correct()
        # keep a solid majority alive so scenarios stay convergent
        if len(live) <= max(3, (2 * self.n) // 3):
            return
        victim = self.rng.choice(live)
        self._apply(["crash", victim])

    def _op_leave(self):
        live = self._live_correct()
        if len(live) <= max(3, (2 * self.n) // 3):
            return
        leaver = self.rng.choice(live)
        self._apply(["leave", leaver])

    def _op_partition(self):
        live = self._live_correct()
        if len(live) < 4:
            return
        self.rng.shuffle(live)
        split = self.rng.randint(1, len(live) - 1)
        side_a = sorted(set(live[:split]) | self.crashed, key=repr)
        side_b = sorted(live[split:], key=repr)
        self._apply(["partition", [side_a, side_b]])

    def _op_heal(self):
        self._apply(["heal"])

    def _op_join(self):
        node_id = self.next_join_id
        self.next_join_id += 1
        self._apply(["join", node_id])

    # ------------------------------------------------------------------
    def execute(self):
        self.build()
        for _step in range(self.ops):
            op = self.rng.choice(self.allow)
            getattr(self, "_op_" + op)()
        # settle: heal and give the membership protocols room to converge
        self.engine.settle(2.0)
        return self

    def check(self):
        """Safety-check the recorded execution; returns violations."""
        return self.engine.check()

    def as_plan(self):
        """Export the recorded script as a replayable, shrinkable plan.

        The exported config captures the knobs that shape the scenario
        (QoS level, crypto); timing constants stay at their defaults, as
        the fuzzer itself never varies them.
        """
        config = {"byzantine": self.config.byzantine,
                  "crypto": self.config.crypto,
                  "total_order": self.config.total_order,
                  "uniform_delivery": self.config.uniform_delivery}
        return FaultPlan(seed=self.seed, n=self.n, ops=self.script,
                         config=config)

    def metrics_summary(self):
        """Key counters of the finished run (requires ``obs=True``).

        A failing seed's summary shows at a glance *where* the scenario
        hurt: drops at the bottom layer, retransmission storms, view-change
        churn.  Returns None when the fuzzer ran without observability.
        """
        metrics = self.group.metrics if self.group is not None else None
        if metrics is None:
            return None
        return {
            "casts_sent": metrics.total("casts_sent", layer="top"),
            "casts_delivered": metrics.total("casts_delivered", layer="top"),
            "datagrams_out": metrics.total("datagrams_out", layer="net"),
            "datagrams_dropped": metrics.total("datagrams_dropped",
                                               layer="net"),
            "retransmissions": metrics.total("retransmissions_served",
                                             layer="reliable"),
            "suspicions": metrics.total("local_suspicions",
                                        layer="suspicion"),
            "view_changes": metrics.total("view_changes",
                                          layer="membership"),
        }


def fuzz(seeds, **kw):
    """Run many seeds; returns {seed: violations} for failing seeds only."""
    failures = {}
    for seed in seeds:
        fuzzer = ScenarioFuzzer(seed, **kw).execute()
        violations = fuzzer.check()
        if violations:
            failures[seed] = (violations, fuzzer.script)
        fuzzer.group.stop()
    return failures
