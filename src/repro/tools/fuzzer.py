"""Scenario fuzzing: random fault schedules, checked against the model.

The unit tests pin known scenarios; the fuzzer hunts for unknown ones.
Each run draws a random script of operations -- traffic, crashes, leaves,
joins, partitions, heals, Byzantine activations -- executes it against a
fresh cluster, and verifies the safety clauses of Definitions 2.1/2.2 on
the recorded execution.  Seeds make every found counterexample replayable.
"""

from __future__ import annotations

import random

from repro import Group, StackConfig
from repro.byzantine.behaviors import (MuteNode, TwoFacedCaster, VerboseNode)
from repro.core.properties import check_virtual_synchrony

OPS = ("cast_burst", "run", "crash", "leave", "partition", "heal", "join")


class ScenarioFuzzer:
    """Generates and executes one random scenario per seed."""

    def __init__(self, seed, n=None, config=None, ops=12,
                 byzantine_fraction=0.3, allow=OPS, obs=False):
        self.seed = seed
        self.rng = random.Random(seed)
        self.n = n or self.rng.randint(6, 10)
        self.ops = ops
        self.allow = allow
        self.config = config or StackConfig.byz()
        if obs and not self.config.obs:
            # observability never perturbs the run (pure accumulators), so
            # turning it on does not change which seeds fail
            self.config = self.config.clone(obs=True if obs is True else obs)
        self.byzantine_fraction = byzantine_fraction
        self.script = []
        self.group = None
        self.crashed = set()
        self.left = set()
        self.next_join_id = 1000

    # ------------------------------------------------------------------
    def build(self):
        behaviors = {}
        if self.rng.random() < self.byzantine_fraction:
            villain = self.rng.randrange(self.n)
            behavior = self.rng.choice([
                MuteNode(mute_at=self.rng.uniform(0.05, 0.3)),
                VerboseNode(start_at=self.rng.uniform(0.05, 0.3)),
                TwoFacedCaster(),
            ])
            behaviors[villain] = behavior
            self.script.append(("byzantine", villain,
                                type(behavior).__name__))
        self.group = Group.bootstrap(self.n, config=self.config,
                                     seed=self.seed, behaviors=behaviors)
        return self

    # ------------------------------------------------------------------
    def _live_correct(self):
        return [node for node, p in self.group.processes.items()
                if not p.stopped and node not in self.group.byzantine_nodes
                and node not in self.left]

    def _op_cast_burst(self):
        live = self._live_correct()
        if not live:
            return
        sender = self.rng.choice(live)
        count = self.rng.randint(1, 12)
        self.script.append(("cast_burst", sender, count))
        for k in range(count):
            self.group.endpoints[sender].cast((sender, "fz", k))

    def _op_run(self):
        duration = self.rng.choice((0.05, 0.1, 0.3, 0.6))
        self.script.append(("run", duration))
        self.group.run(duration)

    def _op_crash(self):
        live = self._live_correct()
        # keep a solid majority alive so scenarios stay convergent
        if len(live) <= max(3, (2 * self.n) // 3):
            return
        victim = self.rng.choice(live)
        self.script.append(("crash", victim))
        self.group.crash(victim)
        self.crashed.add(victim)

    def _op_leave(self):
        live = self._live_correct()
        if len(live) <= max(3, (2 * self.n) // 3):
            return
        leaver = self.rng.choice(live)
        self.script.append(("leave", leaver))
        self.group.endpoints[leaver].leave()
        self.left.add(leaver)

    def _op_partition(self):
        live = self._live_correct()
        if len(live) < 4:
            return
        self.rng.shuffle(live)
        split = self.rng.randint(1, len(live) - 1)
        side_a = set(live[:split]) | self.crashed
        side_b = set(live[split:])
        self.script.append(("partition", sorted(side_b, key=repr)))
        self.group.partition(side_a, side_b)

    def _op_heal(self):
        self.script.append(("heal",))
        self.group.heal()

    def _op_join(self):
        node_id = self.next_join_id
        self.next_join_id += 1
        self.script.append(("join", node_id))
        self.group.add_node(node_id)

    # ------------------------------------------------------------------
    def execute(self):
        self.build()
        for _step in range(self.ops):
            op = self.rng.choice(self.allow)
            getattr(self, "_op_" + op)()
        # settle: heal and give the membership protocols room to converge
        self.group.heal()
        self.group.run(2.0)
        return self

    def check(self):
        """Safety-check the recorded execution; returns violations."""
        execution = self.group.execution()
        # crash/leave mid-run ends a node's obligation to keep delivering
        for node in self.crashed | self.left:
            execution.correct.discard(node)
        return check_virtual_synchrony(
            execution,
            content_agreement=self.config.total_order,
            total_order=self.config.total_order)

    def metrics_summary(self):
        """Key counters of the finished run (requires ``obs=True``).

        A failing seed's summary shows at a glance *where* the scenario
        hurt: drops at the bottom layer, retransmission storms, view-change
        churn.  Returns None when the fuzzer ran without observability.
        """
        metrics = self.group.metrics if self.group is not None else None
        if metrics is None:
            return None
        return {
            "casts_sent": metrics.total("casts_sent", layer="top"),
            "casts_delivered": metrics.total("casts_delivered", layer="top"),
            "datagrams_out": metrics.total("datagrams_out", layer="net"),
            "datagrams_dropped": metrics.total("datagrams_dropped",
                                               layer="net"),
            "retransmissions": metrics.total("retransmissions_served",
                                             layer="reliable"),
            "suspicions": metrics.total("local_suspicions",
                                        layer="suspicion"),
            "view_changes": metrics.total("view_changes",
                                          layer="membership"),
        }


def fuzz(seeds, **kw):
    """Run many seeds; returns {seed: violations} for failing seeds only."""
    failures = {}
    for seed in seeds:
        fuzzer = ScenarioFuzzer(seed, **kw).execute()
        violations = fuzzer.check()
        if violations:
            failures[seed] = (violations, fuzzer.script)
        fuzzer.group.stop()
    return failures
