"""repro.obs -- the stack-wide observability plane.

Per-node metrics (counters, gauges, histograms keyed by ``(node, layer,
name)``) plus message-lifecycle tracing with causal links across nodes
through the wire format's message ids.  Enable it per cluster with
``StackConfig(obs=True)`` (or an explicit :class:`ObsConfig`); read it
back through ``group.metrics`` and ``endpoint.trace(msg_id)``; export
with ``group.export_obs(path)``.  Disabled (the default), every hook in
the stack is a single ``is None`` branch and the simulated execution is
byte-identical to an uninstrumented run.

See ``docs/OBSERVABILITY.md``.
"""

from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               mean, percentile, stddev)
from repro.obs.plane import ObsConfig, ObservabilityPlane
from repro.obs.trace import Trace, TraceEvent, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsConfig",
    "ObservabilityPlane",
    "Trace",
    "TraceEvent",
    "Tracer",
    "mean",
    "percentile",
    "stddev",
]
