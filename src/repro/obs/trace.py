"""Message-lifecycle tracing: spans across the stack and the wire.

A *span* (here: :class:`Trace`) is opened the moment a message enters any
node's stack and accumulates one :class:`TraceEvent` per hop: layer
``down``/``up`` transitions, network ``tx``/``rx``, timer firings that
carry the message, and the final application ``deliver``.  Because the
wire format already stamps every application cast with a globally unique
``msg_id = (origin, counter)``, the same span naturally collects events
from *every* node the message touches -- the causal, cross-node view the
paper's evaluation needed ad-hoc probes for.

Tracing is an accumulator only: it never schedules, never draws
randomness, never charges CPU.  Simulated executions are identical with
and without it.
"""

from __future__ import annotations


class TraceEvent:
    """One annotated hop in a message's life."""

    __slots__ = ("time", "node", "layer", "action", "detail")

    def __init__(self, time, node, layer, action, detail=None):
        self.time = time
        self.node = node
        self.layer = layer
        self.action = action
        self.detail = detail

    def to_dict(self):
        return {"time": self.time, "node": repr(self.node),
                "layer": self.layer, "action": self.action,
                "detail": repr(self.detail) if self.detail is not None else None}

    def __repr__(self):
        return "TraceEvent(t=%.6f, node=%r, %s/%s%s)" % (
            self.time, self.node, self.layer, self.action,
            ", %r" % (self.detail,) if self.detail is not None else "")


class Trace:
    """The full recorded span of one message id."""

    __slots__ = ("trace_id", "events")

    def __init__(self, trace_id):
        self.trace_id = trace_id
        self.events = []

    def add(self, time, node, layer, action, detail=None):
        self.events.append(TraceEvent(time, node, layer, action, detail))

    # queries ------------------------------------------------------------
    @property
    def opened(self):
        """Simulated time the span was opened (first recorded hop)."""
        return self.events[0].time if self.events else None

    @property
    def closed(self):
        """Simulated time of the last recorded hop so far."""
        return self.events[-1].time if self.events else None

    def nodes(self):
        """Every node that touched this message."""
        return {ev.node for ev in self.events if ev.node is not None}

    def events_for(self, node):
        return [ev for ev in self.events if ev.node == node]

    def path(self, node=None, actions=None):
        """The sequence of layers the message traversed.

        With ``node``, only that node's hops; with ``actions`` (e.g.
        ``("up",)``), only hops of those kinds.
        """
        out = []
        for ev in self.events:
            if node is not None and ev.node != node:
                continue
            if actions is not None and ev.action not in actions:
                continue
            out.append(ev.layer)
        return out

    def deliveries(self):
        """``{node: time}`` of application deliveries recorded so far."""
        return {ev.node: ev.time for ev in self.events
                if ev.action == "deliver"}

    def to_dict(self):
        return {"trace_id": repr(self.trace_id),
                "events": [ev.to_dict() for ev in self.events]}

    def render(self):
        """Human-readable lines, one per hop."""
        lines = []
        for ev in self.events:
            detail = "" if ev.detail is None else " %r" % (ev.detail,)
            lines.append("t=%10.6f  node %-6r %-14s %-7s%s"
                         % (ev.time, ev.node, ev.layer, ev.action, detail))
        return lines

    def __len__(self):
        return len(self.events)

    def __repr__(self):
        return "Trace(%r, %d events, %d nodes)" % (
            self.trace_id, len(self.events), len(self.nodes()))


class Tracer:
    """All live spans of one observability plane, capacity-bounded."""

    def __init__(self, capacity=4096):
        self.capacity = capacity
        self.traces = {}
        self.evicted = 0

    def span(self, trace_id):
        """The span for ``trace_id``, created on first use."""
        trace = self.traces.get(trace_id)
        if trace is None:
            trace = Trace(trace_id)
            self.traces[trace_id] = trace
            if len(self.traces) > self.capacity:
                # dict preserves insertion order: drop the oldest span
                self.traces.pop(next(iter(self.traces)))
                self.evicted += 1
        return trace

    def get(self, trace_id):
        return self.traces.get(trace_id)

    def hop(self, trace_id, time, node, layer, action, detail=None):
        self.span(trace_id).add(time, node, layer, action, detail)

    def origin_time(self, trace_id):
        trace = self.traces.get(trace_id)
        return trace.opened if trace is not None else None

    def __len__(self):
        return len(self.traces)

    def to_dict(self):
        return {repr(tid): trace.to_dict()
                for tid, trace in self.traces.items()}
