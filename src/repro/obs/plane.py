"""The observability plane: one per instrumented cluster.

An :class:`ObservabilityPlane` owns the cluster-wide
:class:`~repro.obs.metrics.MetricsRegistry` and
:class:`~repro.obs.trace.Tracer` and implements the three hook
interfaces the simulation core calls into when (and only when) a plane
is installed:

* **layer hooks** -- :meth:`hop`/:meth:`mark`, called by
  :class:`repro.layers.base.LayerStack` on every ``handle_down`` /
  ``handle_up`` transition;
* **scheduler observer** -- :meth:`on_timer`, called by
  :class:`repro.sim.scheduler.Simulator` before each fired timer;
* **network observer** -- ``on_datagram_*`` / ``on_gossip_*``, called by
  :class:`repro.sim.network.Network` on the datagram path.

When observability is disabled (the default) none of these hooks exist
anywhere: the hook sites see a ``None`` plane and skip in one branch.
The paper's failure-free path stays untaxed -- enforced by the parity
and overhead tests in ``tests/test_obs.py``.
"""

from __future__ import annotations

import json

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


class ObsConfig:
    """Knobs of the observability plane (see ``StackConfig(obs=...)``).

    ``obs=True`` in :class:`~repro.core.config.StackConfig` is shorthand
    for ``ObsConfig()`` with everything on.
    """

    __slots__ = ("metrics", "tracing", "trace_capacity")

    def __init__(self, metrics=True, tracing=True, trace_capacity=4096):
        self.metrics = metrics
        self.tracing = tracing
        self.trace_capacity = trace_capacity

    def __bool__(self):
        return bool(self.metrics or self.tracing)

    def __repr__(self):
        return ("ObsConfig(metrics=%r, tracing=%r, trace_capacity=%r)"
                % (self.metrics, self.tracing, self.trace_capacity))


class ObservabilityPlane:
    """Metrics + tracing for one simulated cluster."""

    def __init__(self, sim, config=None):
        self.sim = sim
        self.config = config if isinstance(config, ObsConfig) else ObsConfig()
        self.metrics = MetricsRegistry()
        self.metrics_enabled = self.config.metrics
        self.tracer = Tracer(self.config.trace_capacity) \
            if self.config.tracing else None

    # ------------------------------------------------------------------
    # layer hooks (called from LayerStack / Layer helpers)
    # ------------------------------------------------------------------
    def hop(self, node, layer, action, msg):
        """A message crossed into ``layer`` heading ``action`` (up/down)."""
        if self.metrics_enabled:
            self.metrics.inc(node, layer, "msgs_" + action)
        tracer = self.tracer
        if tracer is not None and msg.msg_id is not None:
            tracer.hop(msg.msg_id, self.sim.now, node, layer, action,
                       msg.kind)

    def mark(self, node, layer, action, msg, detail=None):
        """Trace-only annotation (e.g. the application ``deliver``)."""
        tracer = self.tracer
        if tracer is not None and msg.msg_id is not None:
            tracer.hop(msg.msg_id, self.sim.now, node, layer, action,
                       detail if detail is not None else msg.kind)

    def origin_time(self, msg_id):
        """When the traced message first entered any stack, or None."""
        if self.tracer is None or msg_id is None:
            return None
        return self.tracer.origin_time(msg_id)

    # ------------------------------------------------------------------
    # scheduler observer
    # ------------------------------------------------------------------
    def on_timer(self, now, timer):
        callback = timer.callback
        owner = getattr(callback, "__self__", None)
        node = getattr(owner, "me", None)
        if node is None:
            node = getattr(owner, "node_id", None)
        if self.metrics_enabled:
            self.metrics.inc(node, "scheduler", "timers_fired")
        tracer = self.tracer
        if tracer is None:
            return
        for arg in timer.args:
            mid = getattr(arg, "msg_id", None)
            if mid is not None and tracer.get(mid) is not None:
                tracer.hop(mid, now, node, "scheduler", "timer",
                           getattr(callback, "__name__", None))
                return

    # ------------------------------------------------------------------
    # network observer
    # ------------------------------------------------------------------
    def on_datagram_sent(self, src, dst, size, payload):
        if self.metrics_enabled:
            self.metrics.inc(src, "net", "datagrams_out")
            self.metrics.inc(src, "net", "bytes_out", size)
        tracer = self.tracer
        if tracer is not None:
            mid = getattr(payload, "msg_id", None)
            if mid is not None:
                tracer.hop(mid, self.sim.now, src, "net", "tx", dst)

    def on_datagram_dropped(self, src, dst):
        if self.metrics_enabled:
            self.metrics.inc(src, "net", "datagrams_dropped")

    def on_datagram_delivered(self, dst, src, payload):
        if self.metrics_enabled:
            self.metrics.inc(dst, "net", "datagrams_in")
        tracer = self.tracer
        if tracer is not None:
            mid = getattr(payload, "msg_id", None)
            if mid is not None:
                tracer.hop(mid, self.sim.now, dst, "net", "rx", src)

    def on_gossip_sent(self, src, size):
        if self.metrics_enabled:
            self.metrics.inc(src, "net", "gossips_out")
            self.metrics.inc(src, "net", "bytes_out", size)

    # ------------------------------------------------------------------
    # wire-path observer (real-network transport coalescer)
    # ------------------------------------------------------------------
    def on_coalesce_flush(self, node, reason, frames, nbytes):
        """The datagram coalescer emitted one UDP datagram.

        ``reason`` is why it flushed ("size" budget, backstop "timer",
        end-of-"burst", or "final" teardown drain); ``frames`` is the
        sub-frame fill.  The fill histogram is the coalescer's figure of
        merit: mean frames/datagram is the wire-path amortization factor.
        """
        if self.metrics_enabled:
            self.metrics.inc(node, "wire", "coalesce_flush_" + reason)
            self.metrics.observe(node, "wire", "datagram_fill", frames)
            self.metrics.observe(node, "wire", "datagram_bytes", nbytes)

    def on_oversize_drop(self, node, kind):
        """An encoded frame exceeded the hard datagram ceiling and was
        dropped (surfaced, not silent: the transport also warns once per
        kind on stderr)."""
        if self.metrics_enabled:
            self.metrics.inc(node, "wire", "oversize_drops")

    def on_gossip_delivered(self, dst, src):
        if self.metrics_enabled:
            self.metrics.inc(dst, "net", "gossips_in")

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_dict(self):
        """The whole run as one JSON-serializable artifact."""
        return {
            "sim_now": self.sim.now,
            "metrics": self.metrics.to_dict(),
            "traces": self.tracer.to_dict() if self.tracer is not None else {},
        }

    def export_json(self, path, indent=2):
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=indent, default=repr)
        return path

    def export_csv(self, path):
        """Metrics table only (traces are inherently nested; use JSON)."""
        self.metrics.write_csv(path)
        return path
