"""Metrics primitives: counters, gauges, histograms, and the registry.

This is the canonical home of every measurement accumulator in the
reproduction.  A :class:`MetricsRegistry` holds instruments keyed by
``(node, layer, name)`` -- the same coordinates the paper's evaluation
slices by (which node, which micro-protocol layer, which quantity) -- and
can export the whole table as dict/JSON/CSV.

All instruments are pure accumulators: observing them never schedules
events, draws randomness, or charges simulated CPU, so an instrumented
run is byte-identical (in simulated time) to an uninstrumented one.
"""

from __future__ import annotations

import json
import math


# ----------------------------------------------------------------------
# sample statistics (moved here from repro.sim.stats, which now shims)
# ----------------------------------------------------------------------
def mean(samples):
    if not samples:
        return float("nan")
    return sum(samples) / len(samples)


def percentile(samples, q):
    """Nearest-rank percentile; ``q`` in [0, 100]."""
    if not samples:
        return float("nan")
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, int(math.ceil(q / 100.0 * len(ordered))) - 1))
    return ordered[rank]


def stddev(samples):
    if len(samples) < 2:
        return 0.0
    mu = mean(samples)
    return math.sqrt(sum((s - mu) ** 2 for s in samples) / (len(samples) - 1))


# ----------------------------------------------------------------------
# instruments
# ----------------------------------------------------------------------
class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self):
        self.value = 0

    def inc(self, n=1):
        self.value += n

    def summary(self):
        return {"value": self.value}

    def __repr__(self):
        return "Counter(%r)" % (self.value,)


class Gauge:
    """A point-in-time value (queue depth, window occupancy, ...)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self):
        self.value = None

    def set(self, value):
        self.value = value

    def add(self, delta):
        self.value = (self.value or 0) + delta

    def summary(self):
        return {"value": self.value}

    def __repr__(self):
        return "Gauge(%r)" % (self.value,)


class Histogram:
    """A distribution of samples (latencies, batch sizes, costs)."""

    __slots__ = ("samples",)
    kind = "histogram"

    def __init__(self):
        self.samples = []

    def observe(self, value):
        self.samples.append(value)

    @property
    def count(self):
        return len(self.samples)

    @property
    def total(self):
        return sum(self.samples)

    @property
    def mean(self):
        return mean(self.samples)

    @property
    def maximum(self):
        return max(self.samples) if self.samples else float("nan")

    @property
    def p50(self):
        return percentile(self.samples, 50)

    @property
    def p99(self):
        return percentile(self.samples, 99)

    def percentile(self, q):
        return percentile(self.samples, q)

    def summary(self):
        return {"count": self.count,
                "mean": self.mean,
                "p50": self.p50,
                "p99": self.p99,
                "max": self.maximum}

    def __repr__(self):
        return "Histogram(n=%d, mean=%s)" % (self.count, self.mean)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
class MetricsRegistry:
    """Instruments keyed by ``(node, layer, name)``.

    ``node`` is a node id (or a tag like ``"app"`` for application-level
    aggregates, ``None`` for global quantities); ``layer`` is the
    micro-protocol layer name (or ``"net"``/``"scheduler"`` for the
    simulation substrate); ``name`` is the quantity.
    """

    def __init__(self):
        self._instruments = {}

    # creation / access ------------------------------------------------
    def _get_or_make(self, node, layer, name, cls):
        key = (node, layer, name)
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls()
            self._instruments[key] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError("metric %r is a %s, not a %s"
                            % (key, instrument.kind, cls.kind))
        return instrument

    def counter(self, node, layer, name):
        return self._get_or_make(node, layer, name, Counter)

    def gauge(self, node, layer, name):
        return self._get_or_make(node, layer, name, Gauge)

    def histogram(self, node, layer, name):
        return self._get_or_make(node, layer, name, Histogram)

    def get(self, node, layer, name):
        """The instrument at that key, or None if never touched."""
        return self._instruments.get((node, layer, name))

    # hot-path conveniences ---------------------------------------------
    def inc(self, node, layer, name, n=1):
        self.counter(node, layer, name).inc(n)

    def observe(self, node, layer, name, value):
        self.histogram(node, layer, name).observe(value)

    def set_gauge(self, node, layer, name, value):
        self.gauge(node, layer, name).set(value)

    # queries ------------------------------------------------------------
    def __len__(self):
        return len(self._instruments)

    def select(self, node=..., layer=None, name=None):
        """Sub-dict of instruments matching the given coordinates."""
        out = {}
        for (knode, klayer, kname), instrument in self._instruments.items():
            if node is not ... and knode != node:
                continue
            if layer is not None and klayer != layer:
                continue
            if name is not None and kname != name:
                continue
            out[(knode, klayer, kname)] = instrument
        return out

    def total(self, name, layer=None):
        """Sum of the counters called ``name`` across all nodes."""
        acc = 0
        for instrument in self.select(layer=layer, name=name).values():
            if isinstance(instrument, Counter):
                acc += instrument.value
        return acc

    def merged_histogram(self, name, layer=None):
        """All samples of the histograms called ``name``, pooled."""
        pooled = Histogram()
        for instrument in self.select(layer=layer, name=name).values():
            if isinstance(instrument, Histogram):
                pooled.samples.extend(instrument.samples)
        return pooled

    # per-shard namespaces (repro.shard): instruments stay keyed by node
    # -- one registry serves the whole plane -- and these projections
    # slice them by any node subset, e.g. one shard's member block
    def select_nodes(self, nodes, layer=None, name=None):
        """Instruments of any node in ``nodes`` (a shard's namespace)."""
        nodes = set(nodes)
        out = {}
        for (knode, klayer, kname), instrument in self._instruments.items():
            if knode not in nodes:
                continue
            if layer is not None and klayer != layer:
                continue
            if name is not None and kname != name:
                continue
            out[(knode, klayer, kname)] = instrument
        return out

    def total_nodes(self, nodes, name, layer=None):
        """Sum of the counters called ``name`` across ``nodes`` only."""
        acc = 0
        for instrument in self.select_nodes(nodes, layer=layer,
                                            name=name).values():
            if isinstance(instrument, Counter):
                acc += instrument.value
        return acc

    def merged_histogram_nodes(self, nodes, name, layer=None):
        """Pooled samples of ``name`` across ``nodes`` only."""
        pooled = Histogram()
        for instrument in self.select_nodes(nodes, layer=layer,
                                            name=name).values():
            if isinstance(instrument, Histogram):
                pooled.samples.extend(instrument.samples)
        return pooled

    # export -------------------------------------------------------------
    def rows(self):
        """One flat dict per instrument, deterministically ordered."""
        keys = sorted(self._instruments,
                      key=lambda k: (repr(k[0]), str(k[1]), str(k[2])))
        for key in keys:
            instrument = self._instruments[key]
            row = {"node": repr(key[0]), "layer": key[1], "name": key[2],
                   "kind": instrument.kind}
            row.update(instrument.summary())
            yield row

    def to_dict(self):
        return list(self.rows())

    def to_json(self, indent=None):
        return json.dumps(self.to_dict(), indent=indent, default=repr)

    def to_csv(self):
        fields = ("node", "layer", "name", "kind", "value",
                  "count", "mean", "p50", "p99", "max")
        lines = [",".join(fields)]
        for row in self.rows():
            lines.append(",".join(str(row.get(f, "")) for f in fields))
        return "\n".join(lines) + "\n"

    def write_json(self, path, indent=2):
        with open(path, "w") as handle:
            handle.write(self.to_json(indent=indent))

    def write_csv(self, path):
        with open(path, "w") as handle:
            handle.write(self.to_csv())
