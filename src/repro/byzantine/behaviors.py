"""Byzantine fault injection (paper section 2.2 and Table 1 scenarios).

A behavior attaches to a :class:`repro.core.process.GroupProcess` and
deviates from the protocol through two hook points:

* ``filter_outgoing(dst, msg)`` -- called by the bottom layer for every
  datagram about to leave the node; the behavior may drop it (mute),
  alter it (two-faced / corruption), or pass it through;
* ``start()`` -- a scheduling hook for active attacks (flooding slanders,
  sending forged traffic).

Because the network prevents impersonation and the key manager never
releases another node's keys, behaviors model exactly the adversary of the
paper: arbitrary deviation *by a signed identity*.

The classes mirror Table 1, plus the active attackers the adversary
tournament evolves against (equivocation on the *control* plane, slander
floods aimed at one victim, and replay storms of stale traffic):

==================  ====================================================
ByzLeave            announces leave, then vanishes
MuteNode            stops sending anything at a chosen time
MuteCoordinator     goes mute only while it is the coordinator
VerboseNode         slanders everyone, all the time
BadViewCoordinator  sends a wrong new-view message when coordinator
TwoFacedCaster      casts different payloads to different receivers
Equivocator         per-receiver conflicting votes/views (control plane)
TargetedSlanderer   floods slanders against one chosen correct victim
ReplayStorm         replays recorded traffic in bursts, stale vids and
                    spoofed incarnation headers included
==================  ====================================================
"""

from __future__ import annotations

from zlib import crc32

from repro.core import message as mk
from repro.core.message import Message


class ByzantineBehavior:
    """Base: a well-behaved 'behavior' (passes everything through)."""

    def __init__(self):
        self.process = None

    def install(self, process):
        self.process = process

    def start(self):
        """Called when the process starts; schedule active attacks here."""

    def filter_outgoing(self, dst, msg):
        """Return ``msg`` (possibly altered) or ``None`` to drop it."""
        return msg

    # convenience -------------------------------------------------------
    @property
    def sim(self):
        return self.process.sim

    @property
    def me(self):
        return self.process.node_id


class MuteNode(ByzantineBehavior):
    """Stops sending *everything* at ``mute_at`` (heartbeats included).

    This is the paper's ByzMuteNode scenario: the node keeps running (it
    still receives), but emits nothing -- indistinguishable, to others,
    from a crash, and detected by the fuzzy mute detector.
    """

    def __init__(self, mute_at=0.0):
        super().__init__()
        self.mute_at = mute_at
        self.muted = False

    def start(self):
        self.sim.schedule(self.mute_at, self._go_mute)

    def _go_mute(self):
        self.muted = True
        # gossip bypasses the bottom layer; silence it too
        self.process.gossip = lambda payload, size=64: None

    def filter_outgoing(self, dst, msg):
        if self.muted:
            return None
        return msg


class MuteCoordinator(MuteNode):
    """Mute only while holding the coordinator role (ByzMuteCoord).

    The damage profile differs from a plain mute node: the group loses its
    gossip announcements and its view generator, so detection rides on the
    coordinator-specific expectations.
    """

    def filter_outgoing(self, dst, msg):
        if self.muted and self.process.view.coordinator == self.me:
            return None
        return msg

    def _go_mute(self):
        self.muted = True
        original_gossip = self.process.gossip

        def gossip(payload, size=64):
            if self.process.view.coordinator != self.me:
                original_gossip(payload, size)
        self.process.gossip = gossip


class VerboseNode(ByzantineBehavior):
    """Slanders every other member, continuously (ByzVerboseNode).

    The attack tries to force needless view changes; the slander rate
    bound in the suspicion layer turns the flood into verbose fuzziness
    against the attacker itself.
    """

    def __init__(self, start_at=0.0, interval=0.002):
        super().__init__()
        self.start_at = start_at
        self.interval = interval
        self.slanders_sent = 0

    def start(self):
        self.sim.schedule(self.start_at, self._flood)

    def _flood(self):
        process = self.process
        if process.stopped:
            return
        view = process.view
        for target in view.mbrs:
            if target == self.me:
                continue
            slander = Message(mk.KIND_SLANDER, self.me, view.vid,
                              (target, "byz"), payload_size=12)
            process.membership.send_down(slander)
            self.slanders_sent += 1
        self.sim.schedule(self.interval, self._flood)


class BadViewCoordinator(ByzantineBehavior):
    """Sends a *wrong* new-view message when it is the view generator
    (CoordBadView): the membership list is truncated.

    Correct members verify the view content against their own computation
    before echoing, refuse it, suspect the coordinator, and re-run the
    view change without it.
    """

    def __init__(self):
        super().__init__()
        self.corrupted = 0

    def filter_outgoing(self, dst, msg):
        if msg.kind != mk.KIND_UB:
            return msg
        payload = msg.payload
        if (not isinstance(payload, tuple) or len(payload) != 2
                or not isinstance(payload[1], tuple)):
            return msg
        instance_id, proto = payload
        if proto[0] not in ("ub-initial", "br-initial", "ub-plain"):
            return msg
        value = proto[1]
        if not isinstance(value, tuple) or len(value) != 2:
            return msg
        view_wire, cut_wire = value
        if not isinstance(view_wire, tuple) or len(view_wire) != 6:
            return msg
        tag, vid_wire, mbrs, coordinator, f, under = view_wire
        bad_mbrs = tuple(m for m in mbrs if m != dst) or mbrs
        bad_view = (tag, vid_wire, bad_mbrs, coordinator, f, under)
        self.corrupted += 1
        out = msg.clone_for(dst)
        out.payload = (instance_id, (proto[0], (bad_view, cut_wire)))
        return out


class TwoFacedCaster(ByzantineBehavior):
    """Sends different versions of the "same" cast to different receivers.

    Plain reliable delivery cannot notice this; uniform delivery / total
    ordering must ensure all correct members agree on one version.
    """

    def __init__(self, alter=None):
        super().__init__()
        self.alter = alter or (lambda payload, dst: ("evil", payload, dst))
        self.forged = 0

    def filter_outgoing(self, dst, msg):
        if msg.kind != mk.KIND_CAST:
            return msg
        # re-sign the altered copy: signing our *own* message is allowed
        out = msg.clone_for(dst)
        out.payload = self.alter(msg.payload, dst)
        process = self.process
        receivers = tuple(m for m in process.view.mbrs if m != self.me)
        signature, _cost, _bytes = process.auth.sign(
            self.me, receivers, out.auth_token())
        out.signature = signature
        self.forged += 1
        return out


class ForgedRetransmitter(ByzantineBehavior):
    """Serves NAKs with *altered* message contents.

    The inner signature no longer matches, so receivers reject the
    retransmission and mark this node as verbose-faulty.
    """

    def __init__(self):
        super().__init__()
        self.forged = 0

    def filter_outgoing(self, dst, msg):
        if msg.kind != mk.KIND_RETRANS:
            return msg
        wire = msg.payload
        if not isinstance(wire, tuple) or len(wire) != 8:
            return msg
        kind, origin, vid, stream, seq, payload, size, signature = wire
        if origin == self.me:
            return msg  # altering own messages is TwoFacedCaster's job
        out = msg.clone_for(dst)
        out.payload = (kind, origin, vid, stream, seq,
                       ("tampered", payload), size, signature)
        # re-sign the outer wrapper so only the inner check can catch it
        process = self.process
        new_sig, _cost, _bytes = process.auth.sign(
            self.me, (dst,), out.auth_token())
        out.signature = new_sig
        self.forged += 1
        return out


class SlowNode(ByzantineBehavior):
    """Not Byzantine, just *slow*: delays every outgoing datagram.

    The motivating case for fuzzy membership (paper section 3.1): a slow
    node must neither stall the group (fuzzy flow control skips it) nor be
    evicted too eagerly (the aging keeps its fuzziness oscillating below
    the suspicion threshold when the delay is moderate).
    """

    def __init__(self, delay=0.01, start_at=0.0):
        super().__init__()
        self.delay = delay
        self.start_at = start_at
        self.started = False
        self.delayed = 0

    def start(self):
        self.sim.schedule(self.start_at, self._go)

    def _go(self):
        self.started = True

    def filter_outgoing(self, dst, msg):
        if not self.started:
            return msg
        # re-send the copy later through the raw network, bypassing the
        # (already charged) bottom-layer path
        process = self.process
        size = msg.wire_size(6 * len(msg.headers), 0)
        self.delayed += 1
        self.sim.schedule(self.delay,
                          lambda: process.network.send(process.node_id, dst,
                                                       size, msg))
        return None


class Equivocator(ByzantineBehavior):
    """Per-receiver conflicting *control-plane* payloads (votes, views).

    Where :class:`TwoFacedCaster` two-faces application casts, this one
    equivocates on the agreement traffic itself: uniform-broadcast and
    consensus messages are altered for half of the receivers (split by a
    deterministic hash of the destination), each copy re-signed -- the
    strongest adversary Definitions 2.1/2.2 must survive, since a split
    initial vote is exactly what the echo quorums exist to mask.
    """

    def __init__(self, kinds=(mk.KIND_UB, mk.KIND_CONSENSUS, mk.KIND_ORDER),
                 start_at=0.0):
        super().__init__()
        self.kinds = tuple(kinds)
        self.start_at = start_at
        self.armed = start_at <= 0.0
        self.equivocations = 0

    def start(self):
        if not self.armed:
            self.sim.schedule(self.start_at, self._arm)

    def _arm(self):
        self.armed = True

    def filter_outgoing(self, dst, msg):
        if not self.armed or msg.kind not in self.kinds:
            return msg
        payload = msg.payload
        # uniform-broadcast / consensus envelopes are (instance_id, inner);
        # ordering envelopes are ("ord", k, inner) -- equivocate on both,
        # which with the fast path live also attacks fprop/fecho traffic
        if not isinstance(payload, tuple) or len(payload) not in (2, 3):
            return msg
        if crc32(repr(dst).encode("utf-8")) & 1 == 0:
            return msg   # this half of the group sees the honest copy
        inner = payload[-1]
        out = msg.clone_for(dst)
        out.payload = payload[:-1] + (("equiv", inner, dst),)
        process = self.process
        receivers = tuple(m for m in process.view.mbrs if m != self.me)
        signature, _cost, _bytes = process.auth.sign(
            self.me, receivers, out.auth_token())
        out.signature = signature
        self.equivocations += 1
        return out


class TargetedSlanderer(ByzantineBehavior):
    """Floods slanders against ONE chosen correct victim (slander storm).

    Unlike :class:`VerboseNode` (which slanders everyone and trips the
    rate bound on itself), the targeted flood concentrates on a single
    member, probing the f+1 adoption threshold: one Byzantine slanderer
    must never be able to evict a correct node, no matter the volume.
    """

    def __init__(self, target=None, start_at=0.02, interval=0.004):
        super().__init__()
        self.target = target
        self.start_at = start_at
        self.interval = interval
        self.slanders_sent = 0

    def start(self):
        self.sim.schedule(self.start_at, self._flood)

    def _victim(self):
        if self.target is not None and self.target in self.process.view.mbrs:
            return self.target
        others = sorted((m for m in self.process.view.mbrs if m != self.me),
                        key=repr)
        return others[0] if others else None

    def _flood(self):
        process = self.process
        if process.stopped:
            return
        victim = self._victim()
        if victim is not None:
            slander = Message(mk.KIND_SLANDER, self.me, process.view.vid,
                              (victim, "byz-flood"), payload_size=12)
            process.membership.send_down(slander)
            self.slanders_sent += 1
        self.sim.schedule(self.interval, self._flood)


class ReplayStorm(ByzantineBehavior):
    """Records ALL outgoing traffic and replays it in bursts.

    The repeated-operation adversary of the self-stabilizing repeated-BRB
    literature: old messages (stale seqs, stale view ids, optionally a
    spoofed ``inc`` transport header) arrive over and over.  The stack
    must absorb the storm with *bounded* state -- duplicate stream seqs
    die in the reliable layer, stale vids at the bottom layer's view
    filter, spoofed incarnations in the per-peer incarnation table -- and
    none of those tables may grow without bound while it rages (the
    BoundedStateChecker's concern).

    ``spoof_incarnation`` replays copies claiming incarnation + 1: peers
    bump their incarnation table and start dropping the node's *honest*
    traffic as stale, so the storm node effectively silences itself and
    must be evicted like a mute -- burning one's own identity is within
    the adversary's rights, harming others is not.
    """

    def __init__(self, start_at=0.05, interval=0.02, burst=8, keep=64,
                 spoof_incarnation=False):
        super().__init__()
        self.start_at = start_at
        self.interval = interval
        self.burst = burst
        self.keep = keep
        self.spoof_incarnation = spoof_incarnation
        self._tape = []
        self._cursor = 0
        self.replayed = 0

    def start(self):
        self.sim.schedule(self.start_at, self._storm)

    def filter_outgoing(self, dst, msg):
        if len(self._tape) < self.keep:
            self._tape.append((dst, msg))
        return msg

    def _storm(self):
        process = self.process
        if process.stopped:
            return
        for _ in range(min(self.burst, len(self._tape))):
            dst, msg = self._tape[self._cursor % len(self._tape)]
            self._cursor += 1
            out = msg
            if self.spoof_incarnation:
                out = msg.clone_for(dst)
                out.pop_header("inc", 0)
                out.push_header("inc", process.incarnation + 1)
            size = out.wire_size(6 * len(out.headers), 0)
            process.network.send(process.node_id, dst, size, out)
            self.replayed += 1
        self.sim.schedule(self.interval, self._storm)


class Replayer(ByzantineBehavior):
    """Records its own outgoing traffic and replays stale copies later.

    Replayed stream messages are exact duplicates (same seq): the reliable
    layer must absorb them without duplicate delivery; replayed messages
    from an old view must die at the bottom layer's view-id filter.
    """

    def __init__(self, replay_every=0.05, keep=50):
        super().__init__()
        self.replay_every = replay_every
        self.keep = keep
        self._tape = []
        self.replayed = 0

    def start(self):
        self.sim.schedule(self.replay_every, self._replay)

    def filter_outgoing(self, dst, msg):
        if len(self._tape) < self.keep and msg.kind == "cast":
            self._tape.append((dst, msg))
        return msg

    def _replay(self):
        process = self.process
        if process.stopped:
            return
        if self._tape:
            dst, msg = self._tape[self.sim.rng.randrange(len(self._tape))
                                  if hasattr(self.sim, "rng") else 0]
            size = msg.wire_size(6 * len(msg.headers), 0)
            process.network.send(process.node_id, dst, size, msg)
            self.replayed += 1
        self.sim.schedule(self.replay_every, self._replay)
