"""Cluster builder: spin up n daemons on one simulated network.

This is the experiment harness every test, example, and benchmark uses.
``Group.bootstrap`` creates the simulator, the network (BladeCenter
topology by default, matching the paper's testbed), the key manager, and
one :class:`GroupProcess` + :class:`GroupEndpoint` per node.

With ``established=True`` (the default) all nodes start inside one common
view -- the steady state the paper measures from.  With
``established=False`` every node boots in its own singleton view and the
gossip/merge machinery must assemble the group, which is how the join
path is exercised.
"""

from __future__ import annotations

import warnings

from repro.core.config import StackConfig
from repro.core.endpoint import GroupEndpoint
from repro.core.history import Execution
from repro.core.process import GroupProcess
from repro.core.view import View, ViewId, singleton_view
from repro.crypto.keys import KeyManager
from repro.obs import ObservabilityPlane
from repro.runtime.interface import SimRuntime
from repro.sim.clock import NodeClock

#: sentinel the builder classmethods pass so only *direct* Group(...)
#: construction trips the deprecation shim
_BUILT = object()


class Group:
    """A simulated cluster of group-communication daemons."""

    def __init__(self, sim, network, processes, endpoints, config,
                 keys=None, obs=None, runtime=None, _built=None):
        if _built is not _BUILT:
            warnings.warn(
                "direct Group(sim, network, processes, ...) construction is "
                "deprecated; use Cluster.create(...), Group.bootstrap(...), "
                "or Group.on_runtime(...)",
                DeprecationWarning, stacklevel=2)
        self.sim = sim
        self.network = network
        self.runtime = runtime        # the Runtime these seams came from
        self.processes = processes    # {node_id: GroupProcess}
        self.endpoints = endpoints    # {node_id: GroupEndpoint}
        self.config = config
        self.keys = keys or KeyManager()
        self.obs = obs                # ObservabilityPlane, or None
        self.group_id = None          # shard tag on a shared runtime
        self.byzantine_nodes = set()
        self.clocks = {}              # node_id -> NodeClock (skewed nodes)
        # (node_id, incarnation, History) of pre-restart incarnations --
        # kept for debugging; deliberately NOT part of execution(): the
        # property checkers constrain correct processes, and a crashed
        # incarnation's obligations ended at its crash
        self.retired = []

    @staticmethod
    def _make_obs(sim, network, config):
        """Build and install the observability plane when configured."""
        if not config.obs:
            return None
        plane = ObservabilityPlane(sim, config.obs)
        sim.observer = plane
        network.observer = plane
        return plane

    # ------------------------------------------------------------------
    @classmethod
    def bootstrap(cls, n, config=None, seed=0, topology_cls=None,
                  net_config=None, behaviors=None, established=True,
                  start=True, node_ids=None, clock_drift=None):
        """Create and (optionally) start a cluster of ``n`` nodes.

        Parameters
        ----------
        behaviors:
            ``{node_id: ByzantineBehavior}`` -- fault-injection plan.
        established:
            Start all nodes in one common view (True) or in singleton
            views that must merge (False).
        clock_drift:
            ``{node_id: drift}`` -- give these nodes a
            :class:`~repro.sim.clock.NodeClock` whose relative timer
            delays are scaled by ``drift`` (chaos clock-skew fault).
        """
        config = config or StackConfig.byz()
        runtime = SimRuntime(n, seed=seed, topology_cls=topology_cls,
                             net_config=net_config)
        if node_ids is None:
            node_ids = list(range(n))
        # the one-shard special case of the shared-runtime builder: same
        # construction order (obs, keys, view, processes in node_ids
        # order), so seed-pinned single-group histories are unchanged
        return cls.on_runtime(runtime, node_ids, config=config,
                              behaviors=behaviors, established=established,
                              start=start, clock_drift=clock_drift)

    @classmethod
    def on_runtime(cls, runtime, node_ids, config=None, keys=None, obs=None,
                   behaviors=None, established=True, start=True,
                   group_id=None, clock_drift=None):
        """Build one group over an existing (possibly shared) sim runtime.

        This is the multi-group entry point :class:`repro.shard.ShardManager`
        uses: several groups attach to ONE runtime's clock/network, each
        tagged with ``group_id`` (stamped into every signed message and
        scoping the gossip channel), sharing one ``keys`` manager's
        pairwise-key cache and one observability plane.  With the defaults
        (private keys, obs built from the config, ``group_id=None``) it is
        exactly the classic single-group bootstrap.
        """
        config = config or StackConfig.byz()
        sim = runtime.sim
        network = runtime.network
        if obs is None:
            obs = cls._make_obs(sim, network, config)
        if keys is None:
            keys = KeyManager()
        behaviors = behaviors or {}
        clock_drift = clock_drift or {}
        members = tuple(node_ids)
        n = len(members)
        f = config.resilience(n)
        common = View(ViewId(1, members[0]), members, f=f,
                      underprovisioned=(f == 0 and config.byzantine))
        processes = {}
        endpoints = {}
        clocks = {}
        for node_id in node_ids:
            initial = common if established else singleton_view(node_id)
            clock = None
            if node_id in clock_drift:
                clock = NodeClock(sim, clock_drift[node_id])
                clocks[node_id] = clock
            process = GroupProcess(sim, network, node_id, config, keys,
                                   initial, behavior=behaviors.get(node_id),
                                   obs=obs, clock=clock, group_id=group_id)
            processes[node_id] = process
            endpoints[node_id] = GroupEndpoint(process)
        group = cls(sim, network, processes, endpoints, config, keys=keys,
                    obs=obs, runtime=runtime, _built=_BUILT)
        group.group_id = group_id
        group.byzantine_nodes = set(behaviors)
        group.clocks = clocks
        if start:
            group.start()
        return group

    @classmethod
    def bootstrap_adhoc(cls, n, config=None, seed=0, field=None,
                        net_config=None, behaviors=None, established=True,
                        start=True, max_paths=2):
        """Create a cluster on a simulated MANET (paper section 6).

        The identical protocol stack runs over a multi-hop radio network:
        unit-disk connectivity, node-disjoint multipath forwarding, and
        flooding gossip.  With ``field=None`` the nodes are placed on a
        deterministic grid whose radio range yields a connected graph.
        """
        from repro.adhoc.geometry import Field
        from repro.adhoc.network import AdHocNetwork
        from repro.sim.scheduler import Simulator
        config = config or StackConfig.byz()
        # radio timing is ~20x wired: scale the detection constants so the
        # stack does not mistake multi-hop latency for muteness
        config = config.clone(
            # "the stability protocol must become gossip based" (section 6)
            ack_mode="gossip",
            heartbeat_interval=max(config.heartbeat_interval, 0.1),
            mute_timeout=max(config.mute_timeout, 0.5),
            gossip_interval=max(config.gossip_interval, 0.25),
            consensus_msg_timeout=max(config.consensus_msg_timeout, 0.5),
            newview_timeout=max(config.newview_timeout, 0.8),
            retrans_timeout=max(config.retrans_timeout, 0.2),
            ack_interval=max(config.ack_interval, 0.05),
            fuzzy_decay_interval=max(config.fuzzy_decay_interval, 0.25),
            suspicion_settle_delay=max(config.suspicion_settle_delay, 0.05))
        sim = Simulator(seed=seed)
        node_ids = list(range(n))
        if field is None:
            field = Field(radio_range=0.45)
            field.place_grid(node_ids)
        network = AdHocNetwork(sim, field, net_config, max_paths=max_paths)
        obs = cls._make_obs(sim, network, config)
        keys = KeyManager()
        behaviors = behaviors or {}
        members = tuple(node_ids)
        f = config.resilience(n)
        common = View(ViewId(1, members[0]), members, f=f,
                      underprovisioned=(f == 0 and config.byzantine))
        processes = {}
        endpoints = {}
        for node_id in node_ids:
            initial = common if established else singleton_view(node_id)
            process = GroupProcess(sim, network, node_id, config, keys,
                                   initial, behavior=behaviors.get(node_id),
                                   obs=obs)
            processes[node_id] = process
            endpoints[node_id] = GroupEndpoint(process)
        network.refresh_components()
        group = cls(sim, network, processes, endpoints, config, keys=keys,
                    obs=obs, _built=_BUILT)
        group.byzantine_nodes = set(behaviors)
        if start:
            group.start()
        return group

    def start(self):
        for process in self.processes.values():
            process.start()

    def stop(self):
        """Halt every member AND release this group's shared-runtime
        resources: each process's stop cancels its own timers, and the
        per-group transport registrations are detached so a ShardManager
        can stop one shard without leaking ports on the runtime the other
        shards keep using (``crash()`` alone would leave the dead ports
        in every gossip iteration forever)."""
        for process in self.processes.values():
            process.stop()
        for node_id in self.processes:
            self.network.detach(node_id)

    # ------------------------------------------------------------------
    # driving the simulation
    # ------------------------------------------------------------------
    def run(self, duration, max_events=None):
        """Advance the cluster ``duration`` simulated seconds."""
        return self.sim.run(until=self.sim.now + duration,
                            max_events=max_events)

    def run_until(self, predicate, timeout=5.0, max_events=None):
        return self.sim.run_until(predicate, timeout, max_events=max_events)

    def run_until_stable_views(self, timeout=5.0):
        """Run until every live correct node has installed the same view."""
        def settled():
            vids = {p.view.vid for p in self._live_correct()}
            mbrs = {p.view.mbrs for p in self._live_correct()}
            return len(vids) == 1 and len(mbrs) == 1
        return self.run_until(settled, timeout)

    def _live_correct(self):
        return [p for node, p in self.processes.items()
                if not p.stopped and node not in self.byzantine_nodes]

    # ------------------------------------------------------------------
    # observability (repro.obs)
    # ------------------------------------------------------------------
    @property
    def metrics(self):
        """The cluster-wide MetricsRegistry, or None when obs is off."""
        return self.obs.metrics if self.obs is not None else None

    def trace(self, msg_id):
        """The recorded cross-node span of ``msg_id`` (see endpoint.trace)."""
        if self.obs is None or self.obs.tracer is None:
            raise RuntimeError(
                "message tracing is disabled; bootstrap with "
                "StackConfig(obs=True) or obs=ObsConfig(tracing=True)")
        return self.obs.tracer.get(msg_id)

    def export_obs(self, path):
        """Write the metrics+traces artifact of this run as JSON."""
        if self.obs is None:
            raise RuntimeError(
                "observability is disabled; bootstrap with "
                "StackConfig(obs=True) to collect an artifact")
        return self.obs.export_json(path)

    # ------------------------------------------------------------------
    # observation helpers
    # ------------------------------------------------------------------
    def views(self):
        return {node: p.view for node, p in self.processes.items()}

    def common_view(self):
        """The single view all live correct nodes share, or None."""
        live = self._live_correct()
        if not live:
            return None
        views = {p.view for p in live}
        if len(views) == 1:
            return live[0].view
        return None

    def execution(self):
        """Snapshot the run as an :class:`Execution` for property checks."""
        histories = {node: p.history for node, p in self.processes.items()}
        correct = set(self.processes) - self.byzantine_nodes
        return Execution(histories, correct=correct)

    def add_node(self, node_id, behavior=None, start=True):
        """Spawn a new node mid-run, in its own singleton view.

        This is the paper's *join* path: the newcomer establishes a
        singleton view (Horus/Ensemble style), its gossip is heard by the
        established group's members, and the merge machinery folds it in.
        """
        if node_id in self.processes:
            raise ValueError("node %r already exists" % (node_id,))
        process = GroupProcess(self.sim, self.network, node_id, self.config,
                               self.keys, singleton_view(node_id),
                               behavior=behavior, obs=self.obs,
                               group_id=self.group_id)
        endpoint = GroupEndpoint(process)
        self.processes[node_id] = process
        self.endpoints[node_id] = endpoint
        if behavior is not None:
            self.byzantine_nodes.add(node_id)
        if start:
            process.start()
        return endpoint

    def crash(self, node_id):
        """Crash-stop a node (the benign special case of Byzantine)."""
        self.processes[node_id].stop()

    def restart(self, node_id, behavior=None, start=True):
        """Reboot a crashed node as a fresh incarnation that rejoins.

        The new process boots in a *singleton view with counter 0* (a
        reboot is a cold start, exactly like ``add_node``): its view id is
        smaller than the running group's, so gossip discovery makes it the
        requesting side of the merge and state flows *to* it through the
        state-transfer layer.  The incarnation number is bumped so the
        bottom layer of every peer rejects stragglers sent by the dead
        incarnation instead of replaying them into the fresh stack.
        Rejoin only proceeds once the group has evicted the crashed member
        (the merge guards refuse overlapping memberships), which the
        failure detectors drive on their own.
        """
        old = self.processes[node_id]
        if not old.stopped:
            old.stop()
        self.network.detach(node_id)   # free the port for the new process
        self.retired.append((node_id, old.incarnation, old.history))
        self.byzantine_nodes.discard(node_id)
        # the fresh incarnation keeps the group tag: a rebooted shard
        # member must rejoin ITS shard's gossip scope, not the global one
        process = GroupProcess(self.sim, self.network, node_id, self.config,
                               self.keys, singleton_view(node_id),
                               behavior=behavior, obs=self.obs,
                               incarnation=old.incarnation + 1,
                               clock=self.clocks.get(node_id),
                               group_id=self.group_id)
        endpoint = GroupEndpoint(process)
        self.processes[node_id] = process
        self.endpoints[node_id] = endpoint
        if behavior is not None:
            self.byzantine_nodes.add(node_id)
        if start:
            process.start()
        return endpoint

    def partition(self, *component_groups):
        """Split the network into the given connectivity components."""
        self.network.set_components([set(g) for g in component_groups])

    def heal(self):
        self.network.heal()
