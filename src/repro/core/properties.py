"""Checker for Byzantine view synchrony and Byzantine virtual synchrony.

Verifies the safety clauses of Definitions 2.1 and 2.2 over a recorded
:class:`repro.core.history.Execution`.  Each check returns a list of
violation strings (empty = property holds); ``check_all`` aggregates.

Only *correct* processes are restricted -- the execution carries the
ground-truth fault set from the injection plan.  The liveness clauses
(items 4 and 5 of Definition 2.1) are inherently eventual and are asserted
by the scenario tests as convergence conditions instead.
"""

from __future__ import annotations


def check_self_inclusion(execution):
    """Def 2.1 item 1: a correct process appears in every view it installs."""
    violations = []
    for node, history in execution.correct_histories().items():
        for _time, _vid, mbrs in history.views():
            if node not in mbrs:
                violations.append(
                    "self-inclusion: %r installed a view without itself: %r"
                    % (node, mbrs))
    return violations


def check_monotonic_view_ids(execution):
    """Def 2.1 item 2: view identifiers increase along each history."""
    violations = []
    for node, history in execution.correct_histories().items():
        vids = history.view_ids()
        for earlier, later in zip(vids, vids[1:]):
            if not earlier < later:
                violations.append(
                    "monotonic-vid: %r installed %r then %r" % (node, earlier, later))
    return violations


def check_view_agreement(execution):
    """Def 2.1 item 3: same vid at two correct processes => same members."""
    violations = []
    seen = {}
    for node, history in execution.correct_histories().items():
        for _time, vid, mbrs in history.views():
            if vid in seen:
                other_node, other_mbrs = seen[vid]
                if other_mbrs != mbrs:
                    violations.append(
                        "view-agreement: vid %r is %r at %r but %r at %r"
                        % (vid, other_mbrs, other_node, mbrs, node))
            else:
                seen[vid] = (node, mbrs)
    return violations


def check_view_confirmation(execution):
    """Def 2.1 item 6: pj in two consecutive views of pi => pj installed
    the first of them."""
    violations = []
    correct = execution.correct
    installed = {node: set(history.view_ids())
                 for node, history in execution.correct_histories().items()}
    for node, history in execution.correct_histories().items():
        views = history.views()
        for (_t1, v1, m1), (_t2, v2, m2) in zip(views, views[1:]):
            for peer in set(m1) & set(m2):
                if peer == node or peer not in correct:
                    continue
                if v1 not in installed.get(peer, set()):
                    violations.append(
                        "view-confirmation: %r in consecutive views %r,%r of "
                        "%r but never installed %r" % (peer, v1, v2, node, v1))
    return violations


def check_sending_view_delivery(execution):
    """Def 2.2 item 2: a message is delivered in the view it was sent in."""
    violations = []
    sent_in = {}
    for node, history in execution.correct_histories().items():
        for ev in history.events:
            if ev[0] == "cast":
                sent_in[ev[2]] = ev[3]
    for node, history in execution.correct_histories().items():
        for ev in history.events:
            if ev[0] != "cast_deliver":
                continue
            msg_id, vid = ev[2], ev[5]
            origin_vid = sent_in.get(msg_id)
            if origin_vid is not None and origin_vid != vid:
                violations.append(
                    "sending-view: %r delivered %r in %r but it was sent in %r"
                    % (node, msg_id, vid, origin_vid))
    return violations


def _continuing_pairs(history):
    """[(v1, v2)] for consecutive views v1 -> v2 in a history."""
    vids = history.view_ids()
    return list(zip(vids, vids[1:]))


def check_reliable_delivery(execution):
    """Def 2.2 item 3: a cast by a correct member that stays into the next
    view is delivered by every correct member that installed both views."""
    violations = []
    for sender, shistory in execution.correct_histories().items():
        for v1, v2 in _continuing_pairs(shistory):
            casts = shistory.casts_in_view(v1)
            if not casts:
                continue
            for node, history in execution.correct_histories().items():
                vids = history.view_ids()
                if v1 not in vids or v2 not in vids:
                    continue
                delivered = history.deliveries_in_view(v1)
                for msg_id in casts - delivered:
                    violations.append(
                        "reliable-delivery: %r never delivered %r (cast by %r "
                        "in %r, both installed %r and %r)"
                        % (node, msg_id, sender, v1, v1, v2))
    return violations


def check_delivery_agreement(execution):
    """Def 2.2 item 4: members continuing from v1 to v2 agree on the set of
    messages delivered in v1."""
    violations = []
    continuing = {}
    for node, history in execution.correct_histories().items():
        for v1, v2 in _continuing_pairs(history):
            continuing.setdefault((v1, v2), []).append(node)
    for (v1, _v2), nodes in continuing.items():
        if len(nodes) < 2:
            continue
        reference = None
        for node in nodes:
            delivered = execution.history(node).deliveries_in_view(v1)
            if reference is None:
                reference = (node, delivered)
            elif delivered != reference[1]:
                missing = reference[1] ^ delivered
                violations.append(
                    "delivery-agreement: %r and %r disagree on view %r "
                    "deliveries (difference: %r)"
                    % (reference[0], node, v1, sorted(missing, key=repr)[:5]))
    return violations


def check_fifo_no_holes(execution):
    """Def 2.2 item 5: per-sender FIFO with no omissions.

    Message ids are (origin, counter) with counters increasing in send
    order, so for a correct origin, deliveries within one view must be the
    counter-contiguous, order-preserving prefix continuation.
    """
    violations = []
    for node, history in execution.correct_histories().items():
        per_view_origin = {}
        for ev in history.events:
            if ev[0] != "cast_deliver":
                continue
            msg_id, origin, vid = ev[2], ev[3], ev[5]
            if origin not in execution.correct or not isinstance(msg_id, tuple):
                continue
            per_view_origin.setdefault((vid, origin), []).append(msg_id[1])
        for (vid, origin), counters in per_view_origin.items():
            if counters != sorted(counters):
                violations.append(
                    "fifo: %r delivered %r's casts out of order in %r: %r"
                    % (node, origin, vid, counters[:8]))
            for earlier, later in zip(counters, counters[1:]):
                if later != earlier + 1:
                    violations.append(
                        "fifo-hole: %r delivered %r's casts with a gap in %r "
                        "(%d -> %d)" % (node, origin, vid, earlier, later))
    return violations


def check_content_agreement(execution):
    """Uniformity: two correct processes never deliver different contents
    for the same message id (guaranteed by uniform delivery / total order;
    a plain-reliable stack does NOT promise this for Byzantine senders)."""
    violations = []
    seen = {}
    for node, history in execution.correct_histories().items():
        for msg_id, digest in history.delivery_digests().items():
            if msg_id in seen:
                other_node, other_digest = seen[msg_id]
                if other_digest != digest:
                    violations.append(
                        "content-agreement: %r delivered %r as %s but %r "
                        "delivered %s" % (other_node, msg_id, other_digest,
                                          node, digest))
            else:
                seen[msg_id] = (node, digest)
    return violations


def check_total_order(execution):
    """Atomic broadcast: the delivery orders at correct processes are
    mutually consistent (no two messages delivered in opposite orders)."""
    violations = []
    orders = {node: history.delivery_order()
              for node, history in execution.correct_histories().items()}
    positions = {node: {m: i for i, m in enumerate(seq)}
                 for node, seq in orders.items()}
    nodes = sorted(orders, key=repr)
    for i, a in enumerate(nodes):
        for b in nodes[i + 1:]:
            common = set(positions[a]) & set(positions[b])
            ranked_a = sorted(common, key=lambda m: positions[a][m])
            ranked_b = sorted(common, key=lambda m: positions[b][m])
            if ranked_a != ranked_b:
                for m1, m2 in zip(ranked_a, ranked_b):
                    if m1 != m2:
                        violations.append(
                            "total-order: %r and %r deliver %r/%r in "
                            "opposite orders" % (a, b, m1, m2))
                        break
    return violations


def check_no_duplicate_delivery(execution):
    """A message id is delivered at most once per correct process."""
    violations = []
    for node, history in execution.correct_histories().items():
        seen = set()
        for ev in history.events:
            if ev[0] != "cast_deliver":
                continue
            msg_id = ev[2]
            if msg_id in seen:
                violations.append(
                    "duplicate-delivery: %r delivered %r twice" % (node, msg_id))
            seen.add(msg_id)
    return violations


def check_self_delivery(execution):
    """A correct sender delivers its own casts (group-communication
    self-inclusion of traffic; only checked for messages whose sending
    view the sender stayed in past one more view, mirroring item 3)."""
    violations = []
    for node, history in execution.correct_histories().items():
        delivered = {ev[2] for ev in history.events
                     if ev[0] == "cast_deliver"}
        for v1, v2 in _continuing_pairs(history):
            for msg_id in history.casts_in_view(v1):
                if msg_id not in delivered:
                    violations.append(
                        "self-delivery: %r never delivered its own %r"
                        % (node, msg_id))
    return violations


VIEW_SYNCHRONY_CHECKS = (
    check_self_inclusion,
    check_monotonic_view_ids,
    check_view_agreement,
    check_view_confirmation,
)

VIRTUAL_SYNCHRONY_CHECKS = VIEW_SYNCHRONY_CHECKS + (
    check_sending_view_delivery,
    check_reliable_delivery,
    check_delivery_agreement,
    check_fifo_no_holes,
    check_no_duplicate_delivery,
    check_self_delivery,
)


def check_view_synchrony(execution):
    """All safety clauses of Definition 2.1.  Returns violations."""
    violations = []
    for check in VIEW_SYNCHRONY_CHECKS:
        violations.extend(check(execution))
    return violations


def check_virtual_synchrony(execution, content_agreement=False,
                            total_order=False):
    """All safety clauses of Definition 2.2 (+ optional QoS guarantees)."""
    violations = []
    for check in VIRTUAL_SYNCHRONY_CHECKS:
        violations.extend(check(execution))
    if content_agreement:
        violations.extend(check_content_agreement(execution))
    if total_order:
        violations.extend(check_total_order(execution))
    return violations
