"""One node: the stack, the detectors, and the glue between them.

A :class:`GroupProcess` is the reproduction of Figure 1: an application
module (the endpoint), a group-communication module (the layer stack), a
failure-detector module (the fuzzy mute/verbose detectors), and a network
module (the port on the simulated network), plus the node's CPU.
"""

from __future__ import annotations

from repro.core.history import History
from repro.crypto.auth import make_authenticator
from repro.detectors.fuzzy import FuzzyLevels
from repro.detectors.mute import FuzzyMuteDetector
from repro.detectors.verbose import FuzzyVerboseDetector
from repro.layers.base import LayerStack
from repro.layers.bottom import BottomLayer
from repro.layers.flow import FlowLayer
from repro.layers.fragment import FragmentLayer
from repro.layers.heartbeat import HeartbeatLayer
from repro.layers.membership import MembershipLayer
from repro.layers.ordering import OrderingLayer
from repro.layers.reliable import ReliableLayer
from repro.layers.stability import StabilityTracker
from repro.layers.state_transfer import StateTransferLayer
from repro.layers.suspicion import SuspicionLayer
from repro.layers.top import TopLayer
from repro.layers.uniform_delivery import UniformDeliveryLayer
from repro.sim.network import Cpu


def default_layers():
    """The full JazzEnsemble-Byzantine stack, bottom first.

    Optional layers (ordering, uniform delivery) are always present and
    become pass-throughs when their feature is off, so every configuration
    runs the same stack shape.
    """
    return [
        BottomLayer(),
        ReliableLayer(),
        FragmentLayer(),
        FlowLayer(),
        HeartbeatLayer(),
        SuspicionLayer(),
        MembershipLayer(),
        StateTransferLayer(),
        OrderingLayer(),
        UniformDeliveryLayer(),
        TopLayer(),
    ]


class GroupProcess:
    """A single group-communication daemon on the simulated network."""

    def __init__(self, sim, network, node_id, config, keys, initial_view,
                 behavior=None, obs=None, incarnation=0, clock=None,
                 group_id=None):
        # a NodeClock proxy (chaos clock-skew fault) must be installed
        # here, before the stack attaches: layers cache process.sim
        self.sim = sim if clock is None else clock
        self.network = network
        self.node_id = node_id
        # shard plane (repro.shard): which group of a multi-group runtime
        # this daemon belongs to; None on a classic single-group stack.
        # The bottom layer stamps it into every outgoing message before
        # signing and filters mismatches on the way up.
        self.group_id = group_id
        # reboot counter (crash-recovery): 0 for first boot; bumped by
        # Group.restart so peers can reject the dead incarnation's stragglers
        self.incarnation = incarnation
        self.config = config
        self.keys = keys
        self.view = initial_view
        self.f = config.resilience(initial_view.n)
        self.behavior = behavior
        self.obs = obs    # shared ObservabilityPlane, or None (disabled)
        self.endpoint = None
        self.stopped = False
        self.cpu = Cpu(self.sim)
        self.auth = make_authenticator(config.crypto, keys,
                                       config.crypto_costs)
        self.history = History(node_id)
        self.mute_levels = FuzzyLevels(
            self.sim, "mute", config.fuzzy_decay_interval,
            config.fuzzy_decay_amount)
        self.verbose_levels = FuzzyLevels(
            self.sim, "verbose", config.fuzzy_decay_interval,
            config.fuzzy_decay_amount)
        self.mute_detector = FuzzyMuteDetector(self.sim, self.mute_levels,
                                               config.mute_timeout)
        self.verbose_detector = FuzzyVerboseDetector(self.sim,
                                                     self.verbose_levels)
        self.stability = StabilityTracker(self)
        self._last_heard = {}
        self.stack = LayerStack(self, default_layers())
        if group_id is None:
            # the historical 3-arg attach keeps every transport (ad-hoc
            # radio, test doubles) working without a ``group`` kwarg
            self.network.attach(node_id, self._on_datagram, self._on_gossip)
        else:
            self.network.attach(node_id, self._on_datagram, self._on_gossip,
                                group=group_id)
        if behavior is not None:
            behavior.install(self)

    # ------------------------------------------------------------------
    # convenient layer handles
    # ------------------------------------------------------------------
    @property
    def bottom(self):
        return self.stack.layer("bottom")

    @property
    def reliable(self):
        return self.stack.layer("reliable")

    @property
    def suspicion(self):
        return self.stack.layer("suspicion")

    @property
    def membership(self):
        return self.stack.layer("membership")

    @property
    def ordering(self):
        return self.stack.layer("ordering")

    @property
    def uniform(self):
        return self.stack.layer("uniform")

    @property
    def top(self):
        return self.stack.layer("top")

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def state_sizes(self):
        """Flat ``{"<layer>.<metric>": count}`` sample of every unbounded-
        looking state store in this process -- the bounded-state checker's
        input.  Aggregates each layer's ``state_sizes()`` plus the
        process-level tables (stability matrix, fuzzy levels, liveness
        timestamps) that live outside the stack.
        """
        sizes = {}
        for layer in self.stack.layers:
            for metric, count in layer.state_sizes().items():
                sizes["%s.%s" % (layer.name, metric)] = count
        for metric, count in self.stability.state_sizes().items():
            sizes["stability.%s" % (metric,)] = count
        sizes["fuzzy.mute_levels"] = len(self.mute_levels._levels)
        sizes["fuzzy.verbose_levels"] = len(self.verbose_levels._levels)
        sizes["process.last_heard"] = len(self._last_heard)
        return sizes

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self):
        now = self.sim.now
        for member in self.view.mbrs:
            self._last_heard[member] = now
        self.history.record_view(now, self.view)
        self.stack.start()
        self.stability.start()
        if self.endpoint is not None:
            self.endpoint.dispatch_view(now, self.view)
        if self.behavior is not None:
            self.behavior.start()

    def stop(self):
        """Halt the node (crash semantics: no further events of any kind)."""
        if self.stopped:
            return
        self.stopped = True
        self.stack.stop()
        self.stability.stop()
        self.mute_levels.stop()
        self.verbose_levels.stop()
        self.mute_detector.cancel_all()
        self.network.crash(self.node_id)
        # a per-process clock (the real-network runtime) still holds the
        # node's pending wall timers; cancel them so a stopped node leaks
        # neither sockets (released by crash above) nor timer callbacks.
        # The shared Simulator clock is untouched: per_process is False.
        # A multiplexing transport hosting other live shard ports stays
        # open after crash(node_id) -- then the clock is shared too and
        # must survive until the last co-hosted process stops.
        if (getattr(self.sim, "per_process", False)
                and getattr(self.network, "closed", True)):
            self.sim.close()

    # ------------------------------------------------------------------
    # view installation
    # ------------------------------------------------------------------
    def install_view(self, new_view):
        """Adopt a new view: reset per-view state in every component."""
        self.view = new_view
        self.f = self.config.resilience(new_view.n)
        now = self.sim.now
        for member in new_view.mbrs:
            self._last_heard[member] = now
        self.mute_detector.cancel_all()
        self.mute_levels.forget_all()
        self.verbose_levels.forget_all()
        self.stack.blocked = False
        self.stack.install_view(new_view)
        self.history.record_view(now, new_view)
        if self.endpoint is not None:
            self.endpoint.dispatch_view(now, new_view)

    # ------------------------------------------------------------------
    # services used by the layers
    # ------------------------------------------------------------------
    def note_heard_from(self, src):
        self._last_heard[src] = self.sim.now

    def last_heard(self, member):
        return self._last_heard.get(member, 0.0)

    def ordering_freeze(self, undecidable):
        """Freeze the ordering layer for a flush; returns its
        (started, decided) instance watermarks for the SYNC report."""
        if self.config.total_order:
            return self.ordering.freeze_for_flush(undecidable)
        return (0, 0)

    def flush_app(self, k_star, on_done, undecidable=False):
        """Finish the app-level agreement backlog during a flush."""
        if self.config.total_order:
            self.ordering.flush(k_star, on_done, undecidable=undecidable)
        elif self.config.uniform_delivery:
            self.uniform.flush(on_done)
        else:
            on_done()

    def gossip(self, payload, size=64):
        if not self.stopped:
            self.network.gossip_cast(self.node_id, size, payload)

    # ------------------------------------------------------------------
    # network callbacks
    # ------------------------------------------------------------------
    def _on_datagram(self, src, msg):
        if not self.stopped:
            self.bottom.on_datagram(src, msg)

    def _on_gossip(self, src, payload):
        if not self.stopped:
            self.stack.layer("heartbeat").on_gossip(src, payload)
