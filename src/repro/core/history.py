"""Process histories and executions (paper section 2.1).

A process history h_i is the sequence of (input and output) events at
process p_i; a collection of histories, one per process, is an execution
sigma.  The property checker in :mod:`repro.core.properties` consumes
these records to verify Byzantine view synchrony and Byzantine virtual
synchrony (Definitions 2.1 and 2.2) over whole simulated runs.

Events are recorded with the *global* simulated time, which the formal
model grants to external observers.
"""

from __future__ import annotations

import hashlib

EV_VIEW = "view"
EV_CAST = "cast"
EV_CAST_DELIVER = "cast_deliver"
EV_SEND = "send"
EV_SEND_DELIVER = "send_deliver"


def content_digest(payload):
    """Digest used to compare delivered message *contents* across nodes."""
    return hashlib.sha256(repr(payload).encode("utf-8")).hexdigest()[:16]


class History:
    """The recorded event sequence of one process."""

    def __init__(self, node_id):
        self.node_id = node_id
        self.events = []

    # ------------------------------------------------------------------
    def record_view(self, time, view):
        self.events.append((EV_VIEW, time, view.vid, view.mbrs))

    def record_cast(self, time, msg_id, vid):
        self.events.append((EV_CAST, time, msg_id, vid))

    def record_cast_deliver(self, time, msg_id, origin, payload, vid):
        self.events.append((EV_CAST_DELIVER, time, msg_id, origin,
                            content_digest(payload), vid))

    def record_send(self, time, dest, vid):
        self.events.append((EV_SEND, time, dest, vid))

    def record_send_deliver(self, time, origin, payload, vid):
        self.events.append((EV_SEND_DELIVER, time, origin,
                            content_digest(payload), vid))

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def views(self):
        """All view events, in history order: [(time, vid, mbrs)]."""
        return [(ev[1], ev[2], ev[3]) for ev in self.events if ev[0] == EV_VIEW]

    def view_ids(self):
        return [vid for _t, vid, _m in self.views()]

    def deliveries_in_view(self, vid):
        """Cast msg_ids delivered while ``vid`` was installed."""
        return {ev[2] for ev in self.events
                if ev[0] == EV_CAST_DELIVER and ev[5] == vid}

    def casts_in_view(self, vid):
        """Casts whose *final* emission happened in ``vid``.

        A cast buffered across a view change is re-stamped and re-sent in
        the next view; the last record is authoritative.
        """
        last = {}
        for ev in self.events:
            if ev[0] == EV_CAST:
                last[ev[2]] = ev[3]
        return {msg_id for msg_id, v in last.items() if v == vid}

    def delivery_digests(self):
        """{msg_id: content digest} over all cast deliveries."""
        return {ev[2]: ev[4] for ev in self.events
                if ev[0] == EV_CAST_DELIVER}

    def delivery_order(self):
        """Cast msg_ids in delivery order."""
        return [ev[2] for ev in self.events if ev[0] == EV_CAST_DELIVER]


class Execution:
    """An execution: one history per process, plus ground-truth fault info.

    ``correct`` is the set of processes that followed their protocol for
    the whole run (the fault-injection plan knows); properties only
    restrict the behaviour of correct processes.
    """

    def __init__(self, histories, correct=None):
        self.histories = dict(histories)
        if correct is None:
            correct = set(self.histories)
        self.correct = set(correct)

    def history(self, node_id):
        return self.histories[node_id]

    def correct_histories(self):
        return {node: h for node, h in self.histories.items()
                if node in self.correct}
