"""Application-facing events (paper section 2.1).

The group communication module is an automaton accepting input events
(``cast``, ``send``, ``join``, ``leave``, ``net-receive``) and producing
output events toward the application: ``cast-deliver``, ``send-deliver``
and ``view``.  These classes are the output side; they are what a
:class:`repro.core.endpoint.GroupEndpoint` hands to application callbacks
and what :mod:`repro.core.history` records for the property checker.
"""

from __future__ import annotations


class AppEvent:
    """Base class for events delivered to the application module."""

    __slots__ = ("time",)

    def __init__(self, time):
        self.time = time


class ViewEvent(AppEvent):
    """A new view was installed (``view`` output event)."""

    __slots__ = ("view",)

    def __init__(self, time, view):
        super().__init__(time)
        self.view = view

    def __repr__(self):
        return "ViewEvent(t={:.4f}, {})".format(self.time, self.view)


class CastDeliver(AppEvent):
    """A broadcast message was delivered (``cast-deliver``)."""

    __slots__ = ("origin", "payload", "view_id", "msg_id")

    def __init__(self, time, origin, payload, view_id, msg_id=None):
        super().__init__(time)
        self.origin = origin
        self.payload = payload
        self.view_id = view_id
        self.msg_id = msg_id

    def __repr__(self):
        return "CastDeliver(t={:.4f}, from={}, vid={})".format(
            self.time, self.origin, self.view_id)


class SendDeliver(AppEvent):
    """A point-to-point message was delivered (``send-deliver``)."""

    __slots__ = ("origin", "payload", "view_id", "msg_id")

    def __init__(self, time, origin, payload, view_id, msg_id=None):
        super().__init__(time)
        self.origin = origin
        self.payload = payload
        self.view_id = view_id
        self.msg_id = msg_id

    def __repr__(self):
        return "SendDeliver(t={:.4f}, from={}, vid={})".format(
            self.time, self.origin, self.view_id)


class BlockEvent(AppEvent):
    """The stack entered a view change; casts are buffered until the next
    view.  Ensemble exposes the same block/unblock signal to applications
    that want to stop producing during synchronization."""

    __slots__ = ("blocked",)

    def __init__(self, time, blocked):
        super().__init__(time)
        self.blocked = blocked

    def __repr__(self):
        return "BlockEvent(t={:.4f}, blocked={})".format(self.time, self.blocked)
