"""The application-facing API (paper Figure 1: the application module).

A :class:`GroupEndpoint` exposes exactly the abstract events of the model:
``cast`` / ``send`` inputs, and ``view`` / ``cast-deliver`` /
``send-deliver`` outputs via callbacks.  Fuzziness levels, suspicion,
consensus -- all of it stays hidden below this line, which is the point of
the strong virtual synchrony abstraction.
"""

from __future__ import annotations

from repro.core.events import BlockEvent, CastDeliver, SendDeliver, ViewEvent


class GroupEndpoint:
    """Application handle on one group member."""

    def __init__(self, process):
        self.process = process
        process.endpoint = self
        self.on_view = None        # callback(ViewEvent)
        self.on_cast = None        # callback(CastDeliver)
        self.on_send = None        # callback(SendDeliver)
        self.on_block = None       # callback(BlockEvent)
        # state transfer (opt-in): provider() -> snapshot object;
        # installer(snapshot) adopts a vouched snapshot after joining
        self.state_provider = None
        self.state_installer = None
        self.events = []           # every delivered event, in order
        self.record_events = True

    # ------------------------------------------------------------------
    # inputs
    # ------------------------------------------------------------------
    @property
    def view(self):
        """The most recently installed view."""
        return self.process.view

    @property
    def node_id(self):
        return self.process.node_id

    def cast(self, payload, size=16):
        """Broadcast ``payload`` to the current view; returns a message id.

        ``size`` is the payload's wire size in bytes (the simulation
        transfers Python objects but charges bandwidth/CPU for ``size``).
        """
        if self.process.stopped:
            raise RuntimeError("endpoint of a stopped process")
        return self.process.top.submit_cast(payload, size)

    def send(self, dest, payload, size=16):
        """Reliable FIFO point-to-point send to ``dest``."""
        if self.process.stopped:
            raise RuntimeError("endpoint of a stopped process")
        if dest == self.node_id:
            raise ValueError("use cast/local calls, not send-to-self")
        self.process.top.submit_send(dest, payload, size)

    def leave(self):
        """Politely leave the group: announce, then let the view exclude us."""
        self.process.membership.announce_leave()

    # ------------------------------------------------------------------
    # observability (repro.obs)
    # ------------------------------------------------------------------
    def trace(self, msg_id):
        """The recorded span of one message across the whole cluster.

        Returns the :class:`repro.obs.trace.Trace` for ``msg_id`` -- every
        layer hop, wire transfer, timer hop, and application delivery the
        message went through on every node -- or None if the id was never
        seen.  Raises RuntimeError when observability is disabled (the
        default): bootstrap with ``StackConfig(obs=True)``.
        """
        obs = self.process.obs
        if obs is None or obs.tracer is None:
            raise RuntimeError(
                "message tracing is disabled; bootstrap with "
                "StackConfig(obs=True) or obs=ObsConfig(tracing=True)")
        return obs.tracer.get(msg_id)

    @property
    def metrics(self):
        """This node's slice of the metrics registry, or None when off."""
        obs = self.process.obs
        if obs is None:
            return None
        return obs.metrics.select(node=self.node_id)

    # ------------------------------------------------------------------
    # dispatch from the top layer
    # ------------------------------------------------------------------
    def dispatch_view(self, time, view):
        event = ViewEvent(time, view)
        if self.record_events:
            self.events.append(event)
        if self.on_view is not None:
            self.on_view(event)

    def dispatch_cast(self, time, origin, payload, vid, msg_id):
        event = CastDeliver(time, origin, payload, vid, msg_id)
        if self.record_events:
            self.events.append(event)
        if self.on_cast is not None:
            self.on_cast(event)

    def dispatch_send(self, time, origin, payload, vid, msg_id):
        event = SendDeliver(time, origin, payload, vid, msg_id)
        if self.record_events:
            self.events.append(event)
        if self.on_send is not None:
            self.on_send(event)

    def dispatch_block(self, time, blocked):
        event = BlockEvent(time, blocked)
        if self.on_block is not None:
            self.on_block(event)
