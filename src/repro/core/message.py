"""Messages and per-layer headers (paper Figure 2).

Every message carries a *kind* (application cast/send, or a protocol
layer's own traffic), the identity of its original sender (``origin``),
the view it was sent in, and a header map.  Each layer pushes its header on
the way down and reads it on the way up; a layer never inspects another
layer's header -- lower-layer headers are opaque "data" to it, exactly the
structure the fuzzy detectors exploit (a layer knows which of *its own*
headers it is owed).

Wire-size accounting: the application declares its payload size in bytes;
each layer declares a fixed header overhead; the bottom layer adds the
signature size.  The simulator charges NIC bandwidth for the total.
"""

from __future__ import annotations

# application-data kinds
KIND_CAST = "cast"
KIND_SEND = "send"

# protocol kinds (layer-originated traffic)
KIND_ACK = "ack"
KIND_NAK = "nak"
KIND_RETRANS = "retrans"
KIND_HEARTBEAT = "heartbeat"
KIND_SLANDER = "slander"
KIND_CONSENSUS = "consensus"
KIND_UB = "ub"
KIND_SYNC = "sync"
KIND_NEWVIEW = "newview"
KIND_LEAVE = "leave"
KIND_ORDER = "order"
KIND_UDELIV = "udeliv"
KIND_MERGE = "merge"
KIND_MANNOUNCE = "mannounce"
KIND_FRAG = "frag"


class Message:
    """One protocol message travelling through a node's stack."""

    __slots__ = ("kind", "origin", "sender", "view_id", "payload",
                 "payload_size", "headers", "signature", "dest", "msg_id")

    def __init__(self, kind, origin, view_id, payload, payload_size=0,
                 dest=None, msg_id=None):
        self.kind = kind
        self.origin = origin      # the node that created the message
        self.sender = origin      # the node that last transmitted it
        self.view_id = view_id
        self.payload = payload
        self.payload_size = payload_size
        self.headers = {}
        self.signature = None
        self.dest = dest          # None for broadcast
        self.msg_id = msg_id

    # ------------------------------------------------------------------
    def push_header(self, layer_name, header):
        self.headers[layer_name] = header

    def header(self, layer_name, default=None):
        return self.headers.get(layer_name, default)

    def pop_header(self, layer_name, default=None):
        return self.headers.pop(layer_name, default)

    # ------------------------------------------------------------------
    def auth_content(self):
        """The byte-stable content covered by the bottom layer's signature.

        Covers everything a Byzantine retransmitter could try to alter:
        kind, origin, view id, headers, and the payload itself.
        """
        vid = self.view_id.to_wire() if self.view_id is not None else None
        return (self.kind, repr(self.origin), vid,
                tuple(sorted((k, repr(v)) for k, v in self.headers.items())),
                repr(self.payload))

    def wire_size(self, header_overhead, signature_bytes):
        base = 8  # kind + origin + view-id framing
        return base + self.payload_size + header_overhead + signature_bytes

    def clone_for(self, dest):
        """Shallow copy addressed to one destination (used by two-faced
        Byzantine behaviour and by per-destination retransmission)."""
        copy = Message(self.kind, self.origin, self.view_id, self.payload,
                       self.payload_size, dest=dest, msg_id=self.msg_id)
        copy.sender = self.sender
        copy.headers = dict(self.headers)
        copy.signature = self.signature
        return copy

    def __repr__(self):
        return "Message({}, origin={}, vid={}, hdrs={})".format(
            self.kind, self.origin, self.view_id, sorted(self.headers))
