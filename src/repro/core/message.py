"""Messages and per-layer headers (paper Figure 2).

Every message carries a *kind* (application cast/send, or a protocol
layer's own traffic), the identity of its original sender (``origin``),
the view it was sent in, and a header map.  Each layer pushes its header on
the way down and reads it on the way up; a layer never inspects another
layer's header -- lower-layer headers are opaque "data" to it, exactly the
structure the fuzzy detectors exploit (a layer knows which of *its own*
headers it is owed).

Wire-size accounting: the application declares its payload size in bytes;
each layer declares a fixed header overhead; the bottom layer adds the
signature size.  The simulator charges NIC bandwidth for the total.

Hot-path notes (see docs/PERFORMANCE.md): the canonical byte encoding a
message is authenticated over -- and its SHA-256 digest, which is what the
authenticators actually MAC -- is computed once and memoized.  Every write
that can change the authenticated content (``push_header``/``pop_header``
and ``payload`` assignment, which is why ``payload`` is a property) drops
the cache, so a Byzantine mutation after signing is still caught on
verification.  Per-destination fan-out (``clone_for``) is copy-on-write:
the clone shares the header map and the digest cache until either side
mutates, so an n-1-receiver broadcast no longer copies n-1 header dicts.
"""

from __future__ import annotations

import hashlib

from repro.core.view import ViewId

# application-data kinds
KIND_CAST = "cast"
KIND_SEND = "send"

# protocol kinds (layer-originated traffic)
KIND_ACK = "ack"
KIND_NAK = "nak"
KIND_RETRANS = "retrans"
KIND_HEARTBEAT = "heartbeat"
KIND_SLANDER = "slander"
KIND_CONSENSUS = "consensus"
KIND_UB = "ub"
KIND_SYNC = "sync"
KIND_NEWVIEW = "newview"
KIND_LEAVE = "leave"
KIND_ORDER = "order"
KIND_UDELIV = "udeliv"
KIND_MERGE = "merge"
KIND_MANNOUNCE = "mannounce"
KIND_FRAG = "frag"

_sha256 = hashlib.sha256


class Message:
    """One protocol message travelling through a node's stack."""

    __slots__ = ("kind", "origin", "sender", "view_id", "_payload",
                 "payload_size", "headers", "signature", "dest", "msg_id",
                 "group", "_auth_cache", "_hdrs_shared")

    #: class-wide switches used by the perf-parity tests
    #: (tests/test_perf_parity.py): with the cache off, every
    #: ``auth_token()`` re-encodes from scratch (the unoptimized reference
    #: path); in "content" mode the token is the full canonical byte string
    #: instead of its digest (the pre-optimization MAC input).  Simulated
    #: histories are byte-identical in all three combinations.
    auth_cache_enabled = True
    auth_token_mode = "digest"  # "digest" | "content"

    def __init__(self, kind, origin, view_id, payload, payload_size=0,
                 dest=None, msg_id=None, group=None):
        self.kind = kind
        self.origin = origin      # the node that created the message
        self.sender = origin      # the node that last transmitted it
        self.view_id = view_id
        self._payload = payload
        self.payload_size = payload_size
        self.headers = {}
        self.signature = None
        self.dest = dest          # None for broadcast
        self.msg_id = msg_id
        # multi-group envelope (repro.shard): the shard/group this message
        # belongs to, or None for a single-group stack.  Stamped by the
        # bottom layer before signing, so one transport can multiplex many
        # groups and a replayed cross-shard message fails authentication.
        self.group = group
        self._auth_cache = None
        self._hdrs_shared = False

    # ------------------------------------------------------------------
    # the payload is a property so that Byzantine in-flight mutation
    # (behaviors assign ``msg.payload = ...``) invalidates the memoized
    # authentication digest -- a stale cache would let a tampered message
    # slip past the bottom layer's signature check
    @property
    def payload(self):
        return self._payload

    @payload.setter
    def payload(self, value):
        self._payload = value
        self._auth_cache = None

    # ------------------------------------------------------------------
    def push_header(self, layer_name, header):
        headers = self.headers
        if self._hdrs_shared:
            headers = dict(headers)
            self.headers = headers
            self._hdrs_shared = False
        headers[layer_name] = header
        self._auth_cache = None

    def header(self, layer_name, default=None):
        return self.headers.get(layer_name, default)

    def pop_header(self, layer_name, default=None):
        headers = self.headers
        if layer_name not in headers:
            return default
        if self._hdrs_shared:
            headers = dict(headers)
            self.headers = headers
            self._hdrs_shared = False
        self._auth_cache = None
        return headers.pop(layer_name)

    # ------------------------------------------------------------------
    def auth_content(self):
        """The byte-stable content covered by the bottom layer's signature.

        Covers everything a Byzantine retransmitter could try to alter:
        kind, origin, view id, headers, and the payload itself.
        """
        vid = self.view_id.to_wire() if self.view_id is not None else None
        content = (self.kind, repr(self.origin), vid,
                   tuple(sorted((k, repr(v)) for k, v in self.headers.items())),
                   repr(self._payload))
        if self.group is None:
            # single-group stacks keep the historical byte encoding, so
            # every seed-pinned history is unchanged by the shard plane
            return content
        return content + (("grp", repr(self.group)),)

    def canonical_bytes(self):
        """Canonical byte encoding of :meth:`auth_content` (uncached)."""
        return repr(self.auth_content()).encode("utf-8")

    def auth_token(self):
        """What the authenticators sign/verify: a 32-byte SHA-256 digest
        of the canonical encoding, computed once per message and memoized.

        Receivers share the sender's cache through the object reference --
        in-model that is sound because every mutation path (headers,
        payload) drops the cache, so the digest always matches the actual
        content.  The parity-test switches above select the uncached and
        the legacy full-content reference paths.
        """
        if Message.auth_token_mode != "digest":
            return self.canonical_bytes()
        if Message.auth_cache_enabled:
            cached = self._auth_cache
            if cached is None:
                cached = _sha256(self.canonical_bytes()).digest()
                self._auth_cache = cached
            return cached
        return _sha256(self.canonical_bytes()).digest()

    def wire_size(self, header_overhead, signature_bytes):
        base = 8  # kind + origin + view-id framing
        return base + self.payload_size + header_overhead + signature_bytes

    # ------------------------------------------------------------------
    # wire codec seam (repro.runtime.wire): the message owns its field
    # list so the codec never reaches into the struct layout.  The order
    # below is the wire order and is covered by WIRE_FIELD_COUNT --
    # adding a slot that must travel means appending it here, bumping
    # repro.runtime.wire.WIRE_VERSION, and nothing else.
    WIRE_FIELD_COUNT = 11

    #: field count of wire versions 1 and 2 (no ``group`` envelope); the
    #: codec still decodes those frames, defaulting ``group`` to None
    WIRE_FIELD_COUNT_V2 = 10

    def wire_fields(self):
        """The transmitted state, in wire order (see runtime/wire.py)."""
        return (self.kind, self.origin, self.sender, self.view_id,
                self._payload, self.payload_size, self.headers,
                self.signature, self.group, self.dest, self.msg_id)

    # encode-once fan-out seam (runtime/wire.py): the leading wire fields
    # are identical across a clone_for fan-out, so the wire encoder can
    # serialize them once per broadcast and append only the trailing
    # per-destination fields for each sibling.  The split must follow the
    # wire_fields() order: shared fields first, tail fields last.
    WIRE_SHARED_FIELD_COUNT = 9

    def wire_shared_fields(self):
        """The leading wire fields shared by all clone_for siblings."""
        return (self.kind, self.origin, self.sender, self.view_id,
                self._payload, self.payload_size, self.headers,
                self.signature, self.group)

    def wire_tail_fields(self):
        """The trailing wire fields that vary per fan-out destination."""
        return (self.dest, self.msg_id)

    def wire_shares_body(self, other):
        """True when ``other`` serializes to the same shared wire prefix.

        Holds exactly for undiverged ``clone_for`` siblings: the mutable
        parts (view id, payload, header map, signature) are compared by
        identity -- any mutation path (COW ``push_header``/``pop_header``,
        the ``payload`` property, a Byzantine behavior swapping the
        signature) replaces the object and breaks the match, so a false
        hit would require in-place mutation of a shared structure, which
        also breaks the memoized auth digest and is excluded by the same
        contract.  Scalar fields are compared by value.  A miss is always
        safe (the encoder just serializes from scratch).
        """
        return (other is not None
                and self.kind == other.kind
                and self.origin == other.origin
                and self.sender == other.sender
                and self.view_id is other.view_id
                and self._payload is other._payload
                and self.payload_size == other.payload_size
                and self.headers is other.headers
                and self.signature is other.signature
                and self.group == other.group)

    @classmethod
    def from_wire_fields(cls, fields):
        """Rebuild a message from :meth:`wire_fields` output.

        Validates only structure (the field count and the types the
        codec cannot express wrongly); *content* authenticity is the
        bottom layer's signature check, exactly as for simulated
        messages.  The memoized auth digest is NOT carried over the
        wire: the receiver recomputes it from the decoded content, so a
        tampered datagram can never smuggle a stale digest past
        verification.
        """
        fields = tuple(fields)
        if len(fields) == cls.WIRE_FIELD_COUNT_V2:
            # a v1/v2 peer: no group envelope on the wire
            fields = fields[:8] + (None,) + fields[8:]
        if len(fields) != cls.WIRE_FIELD_COUNT:
            raise ValueError("message struct has %d fields, expected %d"
                             % (len(fields), cls.WIRE_FIELD_COUNT))
        (kind, origin, sender, view_id, payload, payload_size, headers,
         signature, group, dest, msg_id) = fields
        if not isinstance(kind, str):
            raise ValueError("message kind is not a string: %r" % (kind,))
        if not isinstance(headers, dict):
            raise ValueError("message headers are not a dict: %r" % (headers,))
        if view_id is not None and not isinstance(view_id, ViewId):
            # auth_token() calls view_id.to_wire(); a garbage-typed view
            # id would crash the receiving stack instead of being dropped
            raise ValueError("message view id is not a ViewId: %r"
                             % (view_id,))
        if not isinstance(payload_size, int) or isinstance(payload_size, bool) \
                or payload_size < 0:
            raise ValueError("bad payload size: %r" % (payload_size,))
        msg = cls.__new__(cls)
        msg.kind = kind
        msg.origin = origin
        msg.sender = sender
        msg.view_id = view_id
        msg._payload = payload
        msg.payload_size = payload_size
        msg.headers = headers
        msg.signature = signature
        msg.group = group
        msg.dest = dest
        msg.msg_id = msg_id
        msg._auth_cache = None
        msg._hdrs_shared = False
        return msg

    def clone_for(self, dest):
        """Shallow copy addressed to one destination (used by two-faced
        Byzantine behaviour, per-destination retransmission, and the
        bottom layer's broadcast fan-out).

        Copy-on-write: the clone shares the header map and the memoized
        auth digest; the first ``push_header``/``pop_header`` on either
        side copies the map, so unmutated fan-out copies cost no dict
        allocation.
        """
        copy = Message.__new__(Message)
        copy.kind = self.kind
        copy.origin = self.origin
        copy.sender = self.sender
        copy.view_id = self.view_id
        copy._payload = self._payload
        copy.payload_size = self.payload_size
        copy.headers = self.headers
        copy.signature = self.signature
        copy.group = self.group
        copy.dest = dest
        copy.msg_id = self.msg_id
        copy._auth_cache = self._auth_cache
        copy._hdrs_shared = True
        self._hdrs_shared = True
        return copy

    def __repr__(self):
        return "Message({}, origin={}, vid={}, hdrs={})".format(
            self.kind, self.origin, self.view_id, sorted(self.headers))
