"""Stack configuration: quality-of-service level, crypto scheme, timing.

The paper evaluates a matrix of configurations; `StackConfig` presets
reproduce its exact line labels:

* ``JazzEns``                -- benign stack, no Byzantine checks, no crypto
* ``ByzEns+NoCrypto``        -- hardened stack, authentication disabled
* ``ByzEns+SymCrypto``       -- pairwise symmetric MACs (n-1 per broadcast)
* ``ByzEns+PubCrypto``       -- one public-key signature per message
* ``...+Total``              -- total ordering via Byzantine consensus
* ``...+Uniform``            -- per-cast uniform (agreed-content) delivery

Timing constants are the tunables the paper calls "tunable parameters"
(failure-detection timeouts, aging, thresholds).  Defaults are sized for
the simulated LAN in :mod:`repro.sim.topology`.
"""

from __future__ import annotations

from repro.consensus.interface import (
    max_f_bracha,
    max_f_consensus,
    max_f_uniform,
)
from repro.crypto.cost import CryptoCostModel
from repro.obs import ObsConfig
from repro.sim.topology import HostModel

#: sentinel distinguishing "caller passed this flat kwarg" from the default
_UNSET = object()


class WireConfig:
    """Datagram aggregation policy: sim-side packing and wire coalescing.

    One composable section of :class:`StackConfig` (``wire=``): the
    modelled LAN MTU and packing-optimization knobs the simulator charges
    for, plus the real-network transport's datagram-coalescer budget.
    The flat kwargs (``packing=``, ``mtu=``, ``wire_mtu=``, ...) remain
    accepted on :class:`StackConfig` and route here.
    """

    def __init__(self, packing=False, packing_delay=0.0008, mtu=1400,
                 coalesce=True, coalesce_mtu=16000, coalesce_delay=None):
        self.packing = packing
        self.packing_delay = packing_delay
        self.mtu = mtu
        self.coalesce = coalesce
        self.coalesce_mtu = coalesce_mtu
        self.coalesce_delay = coalesce_delay

    def clone(self, **overrides):
        fresh = WireConfig(**vars(self))
        fresh.__dict__.update(overrides)
        return fresh

    def __repr__(self):
        return "WireConfig(packing={}, mtu={}, coalesce={})".format(
            self.packing, self.mtu, self.coalesce)


class ShardConfig:
    """Shard-plane layout (:mod:`repro.shard`): how many groups the
    cluster runs, their size, and the directory's hash-ring shape.

    ``ring_slots`` is the number of virtual points each shard owns on the
    consistent-hash ring; ``epoch`` versions the routing table so
    resharding can fence stale routes.  ``ring_shards`` (default: all
    built groups) puts only the first K groups on the initial ring,
    leaving the rest as spare capacity a live ``Cluster.reshard(...)``
    can scale out onto.
    """

    def __init__(self, shards=1, nodes_per_shard=5, ring_slots=64, epoch=0,
                 ring_shards=None):
        self.shards = shards
        self.nodes_per_shard = nodes_per_shard
        self.ring_slots = ring_slots
        self.epoch = epoch
        self.ring_shards = ring_shards

    def clone(self, **overrides):
        fresh = ShardConfig(**vars(self))
        fresh.__dict__.update(overrides)
        return fresh

    def __repr__(self):
        return "ShardConfig(shards={}, nodes_per_shard={})".format(
            self.shards, self.nodes_per_shard)


class ChaosConfig:
    """Declarative fault injection (:mod:`repro.chaos`) as a config
    section: a :class:`~repro.chaos.plan.FaultPlan` (or a plain list of
    its op tuples) the owner of the stack applies at bootstrap, and the
    seed salt for the fault engine's *own* RNG stream (never the
    simulator's -- toggling chaos must not shift scheduled histories).
    """

    def __init__(self, plan=None, seed=None):
        self.plan = plan
        self.seed = seed

    def clone(self, **overrides):
        fresh = ChaosConfig(**vars(self))
        fresh.__dict__.update(overrides)
        return fresh

    def __repr__(self):
        return "ChaosConfig(plan={!r}, seed={!r})".format(self.plan, self.seed)


class StackConfig:
    """All knobs of one node's protocol stack.

    Composable sections (``wire=``, ``obs=``, ``chaos=``, ``shard=``)
    group the aggregation, observability, fault-injection, and
    shard-plane knobs so a per-shard override replaces one small section
    instead of copying the whole config; every historical flat kwarg is
    still accepted and routed into its section (an explicit flat kwarg
    wins over the same field of a passed section).
    """

    def __init__(self,
                 byzantine=True,
                 crypto="none",
                 total_order=False,
                 uniform_delivery=False,
                 uniform_protocol="twostep",
                 f_override=None,
                 # failure detection / fuzziness
                 heartbeat_interval=0.02,
                 mute_timeout=0.08,
                 fuzzy_decay_interval=0.05,
                 fuzzy_decay_amount=1.0,
                 mute_suspect_threshold=3.0,
                 verbose_suspect_threshold=4.0,
                 # membership
                 gossip_interval=0.05,
                 suspicion_settle_delay=0.004,
                 suspect_count_threshold=3,
                 consensus_msg_timeout=0.08,
                 newview_timeout=0.12,
                 # reliable delivery / flow control
                 fuzzy_flow=True,
                 fuzzy_flow_threshold=2.0,
                 flow_window=256,
                 ack_interval=0.012,
                 ack_every=512,
                 # ack dissemination: "broadcast" (wired default) or
                 # "gossip" ([29]-style epidemic exchange, benign trust;
                 # Byzantine-hardening is the paper's stated open problem)
                 ack_mode="broadcast",
                 ack_gossip_fanout=2,
                 retrans_timeout=0.04,
                 # hardening against loss storms (chaos plane): repeated
                 # retransmission retries back off exponentially up to this
                 # ceiling, with +-retrans_jitter relative decorrelation
                 retrans_backoff_max=0.32,
                 retrans_jitter=0.25,
                 # NAKs one node may emit per retrans_timeout window
                 # (0 disables suppression)
                 nak_window_budget=64,
                 # signature rejections from one transmitter before the
                 # bottom layer reports it to the suspicion layer
                 # (0 disables corruption-triggered suspicion)
                 corruption_suspect_threshold=4,
                 mtu=_UNSET,
                 # packing/batching optimization [33] -- OFF in the paper's
                 # measurements; implemented here as the predicted extension
                 packing=_UNSET,
                 packing_delay=_UNSET,
                 # wire-path datagram coalescing (real-network runtime only;
                 # the sim backend never reads these, so toggling them is
                 # byte-identical per seed).  wire_mtu is the coalescer's
                 # byte budget per UDP datagram (capped by the transport's
                 # MAX_DATAGRAM_BYTES); wire_coalesce_delay is the flush
                 # backstop timer, defaulting to packing_delay -- one
                 # packing policy shared with the sim pack queues
                 wire_coalesce=_UNSET,
                 wire_mtu=_UNSET,
                 wire_coalesce_delay=_UNSET,
                 # total ordering
                 order_batch_max=1024,
                 order_tick=0.002,
                 # optimistic 2-step ordering fast path (coordinator
                 # proposal + echo quorum); falls back to the full vector
                 # consensus on suspicion, conflict, or this deadline
                 ordering_fast_path=False,
                 order_fast_timeout=0.08,
                 # observability (repro.obs): None/False = fully disabled
                 # (untaxed failure-free path); True = ObsConfig defaults
                 obs=None,
                 # composable sections: aggregation policy, fault
                 # injection, shard-plane layout (obs= above is the fourth)
                 wire=None,
                 chaos=None,
                 shard=None,
                 # models
                 host=None,
                 crypto_costs=None):
        self.byzantine = byzantine
        self.crypto = crypto
        self.total_order = total_order
        self.uniform_delivery = uniform_delivery
        self.uniform_protocol = uniform_protocol
        self.f_override = f_override
        self.heartbeat_interval = heartbeat_interval
        self.mute_timeout = mute_timeout
        self.fuzzy_decay_interval = fuzzy_decay_interval
        self.fuzzy_decay_amount = fuzzy_decay_amount
        self.mute_suspect_threshold = mute_suspect_threshold
        self.verbose_suspect_threshold = verbose_suspect_threshold
        self.gossip_interval = gossip_interval
        self.fuzzy_flow = fuzzy_flow
        self.fuzzy_flow_threshold = fuzzy_flow_threshold
        self.suspicion_settle_delay = suspicion_settle_delay
        self.suspect_count_threshold = suspect_count_threshold
        self.consensus_msg_timeout = consensus_msg_timeout
        self.newview_timeout = newview_timeout
        self.flow_window = flow_window
        self.ack_interval = ack_interval
        self.ack_every = ack_every
        self.ack_mode = ack_mode
        self.ack_gossip_fanout = ack_gossip_fanout
        self.retrans_timeout = retrans_timeout
        self.retrans_backoff_max = retrans_backoff_max
        self.retrans_jitter = retrans_jitter
        self.nak_window_budget = nak_window_budget
        self.corruption_suspect_threshold = corruption_suspect_threshold
        # route the flat aggregation kwargs into the wire section; an
        # explicit flat kwarg overrides the same field of a passed section
        section = wire if wire is not None else WireConfig()
        flat = {name: value for name, value in (
            ("mtu", mtu), ("packing", packing), ("packing_delay", packing_delay),
            ("coalesce", wire_coalesce), ("coalesce_mtu", wire_mtu),
            ("coalesce_delay", wire_coalesce_delay)) if value is not _UNSET}
        self.wire = section.clone(**flat) if flat else section
        self.order_batch_max = order_batch_max
        self.order_tick = order_tick
        self.ordering_fast_path = ordering_fast_path
        self.order_fast_timeout = order_fast_timeout
        if obs is True:
            obs = ObsConfig()
        self.obs = obs or None
        self.chaos = chaos or None
        self.shard = shard if shard is not None else ShardConfig()
        self.host = host or HostModel()
        self.crypto_costs = crypto_costs or CryptoCostModel()

    # ------------------------------------------------------------------
    # flat-attribute compatibility surface over the wire section: reads
    # come from the section; writes replace it copy-on-write, so clones
    # sharing a section never see each other's overrides
    # ------------------------------------------------------------------
    def _wire_set(self, field, value):
        self.__dict__["wire"] = self.wire.clone(**{field: value})

    mtu = property(lambda self: self.wire.mtu,
                   lambda self, v: self._wire_set("mtu", v))
    packing = property(lambda self: self.wire.packing,
                       lambda self, v: self._wire_set("packing", v))
    packing_delay = property(lambda self: self.wire.packing_delay,
                             lambda self, v: self._wire_set("packing_delay", v))
    wire_coalesce = property(lambda self: self.wire.coalesce,
                             lambda self, v: self._wire_set("coalesce", v))
    wire_mtu = property(lambda self: self.wire.coalesce_mtu,
                        lambda self, v: self._wire_set("coalesce_mtu", v))
    wire_coalesce_delay = property(
        lambda self: self.wire.coalesce_delay,
        lambda self, v: self._wire_set("coalesce_delay", v))

    #: flat clone()/spec kwargs that route into the wire section
    _WIRE_FLAT = ("mtu", "packing", "packing_delay", "wire_coalesce",
                  "wire_mtu", "wire_coalesce_delay")

    # ------------------------------------------------------------------
    # presets named after the paper's plot lines
    # ------------------------------------------------------------------
    @classmethod
    def benign(cls, **kw):
        """The non-Byzantine JazzEnsemble stack ("JazzEns")."""
        kw.setdefault("byzantine", False)
        kw.setdefault("crypto", "none")
        return cls(**kw)

    @classmethod
    def byz(cls, crypto="none", total_order=False, uniform_delivery=False, **kw):
        """The Byzantine-hardened stack ("ByzEns+...")."""
        return cls(byzantine=True, crypto=crypto, total_order=total_order,
                   uniform_delivery=uniform_delivery, **kw)

    def label(self):
        """The paper's plot-line label for this configuration."""
        if not self.byzantine:
            return "JazzEns"
        crypto = {"none": "NoCrypto", "sym": "SymCrypto",
                  "pub": "PubCrypto"}[self.crypto]
        parts = ["ByzEns+" + crypto]
        if self.total_order:
            parts.append("Total")
        if self.uniform_delivery:
            parts.append("Uniform")
        if self.packing:
            parts.append("Pack")
        return "+".join(parts)

    # ------------------------------------------------------------------
    def resilience(self, n):
        """The f this stack tolerates in a view of n members.

        Bounded by every agreement protocol the stack uses: the vector
        consensus (n > 6f) and the configured uniform broadcast.  The
        benign stack tolerates no Byzantine nodes by definition.
        """
        if not self.byzantine:
            return 0
        bound = max_f_consensus(n)
        if self.uniform_protocol == "twostep":
            bound = min(bound, max_f_uniform(n))
        else:
            bound = min(bound, max_f_bracha(n))
        if self.f_override is not None:
            bound = min(bound, self.f_override)
        return max(0, bound)

    def packing_policy(self, wire=False):
        """The ``(max_bytes, flush_delay)`` aggregation policy.

        One definition serves both aggregation points: the simulator's
        bottom-layer pack queues (``wire=False``: the modelled LAN MTU and
        packing delay) and the real-network transport's datagram coalescer
        (``wire=True``: the loopback-sized ``wire_mtu`` budget, with the
        flush backstop defaulting to the same ``packing_delay``).  The
        transport additionally caps the wire budget at its hard datagram
        ceiling.
        """
        if wire:
            delay = self.wire_coalesce_delay
            return (self.wire_mtu,
                    self.packing_delay if delay is None else delay)
        return (self.mtu, self.packing_delay)

    def clone(self, **overrides):
        # clone() bypasses __init__, so the constructor's normalizations
        # (obs True -> ObsConfig(), falsy -> None; flat wire kwargs routed
        # into the wire section) must be applied here too -- otherwise a
        # literal True would be stored, or a flat override would be
        # shadowed by the section the compatibility properties read
        if "obs" in overrides:
            obs = overrides["obs"]
            overrides["obs"] = ObsConfig() if obs is True else (obs or None)
        if "chaos" in overrides:
            overrides["chaos"] = overrides["chaos"] or None
        if "shard" in overrides and overrides["shard"] is None:
            overrides["shard"] = ShardConfig()
        fresh = StackConfig.__new__(StackConfig)
        fresh.__dict__.update(self.__dict__)
        if "wire" in overrides:
            # the section override lands before flat keys so an explicit
            # flat kwarg wins over the same field of the passed section
            fresh.__dict__["wire"] = overrides.pop("wire") or WireConfig()
        for key in self._WIRE_FLAT:
            if key in overrides:
                # copy-on-write through the property setter: replaces the
                # (possibly shared) section instead of mutating it
                setattr(fresh, key, overrides.pop(key))
        fresh.__dict__.update(overrides)
        return fresh

    def __repr__(self):
        return "StackConfig({})".format(self.label())
