"""Views and view identifiers (paper section 2.3).

A view is the system's current estimate of the group membership: a view
identifier plus an *ordered* membership list.  View identifiers must be
totally ordered and monotonically increasing along any correct process's
history (Definition 2.1, item 2), and two correct processes that install
the same identifier must agree on the membership (item 3).

We realize identifiers as ``(counter, creator)`` pairs ordered
lexicographically -- the Ensemble/Horus construction: partitioned
sub-groups bump the counter independently but differ in creator, so equal
identifiers imply a single creation event and hence equal membership.
"""

from __future__ import annotations


class ViewId:
    """Totally-ordered view identifier: ``(counter, creator)``."""

    __slots__ = ("counter", "creator")

    def __init__(self, counter, creator):
        self.counter = counter
        self.creator = creator

    def key(self):
        return (self.counter, repr(self.creator))

    def __eq__(self, other):
        # per-message hot path (the bottom layer compares every arriving
        # message's view id): identity first -- in the simulator messages
        # carry the installed view's own ViewId object -- then fields
        # directly, skipping the key() tuples + repr
        if other is self:
            return True
        return (isinstance(other, ViewId)
                and self.counter == other.counter
                and self.creator == other.creator)

    def __lt__(self, other):
        return self.key() < other.key()

    def __le__(self, other):
        return self == other or self < other

    def __gt__(self, other):
        return not self <= other

    def __ge__(self, other):
        return not self < other

    def __hash__(self):
        return hash(self.key())

    def __repr__(self):
        return "vid({};{})".format(self.counter, self.creator)

    def to_wire(self):
        return ("vid", self.counter, self.creator)

    @classmethod
    def from_wire(cls, wire):
        if (not isinstance(wire, tuple) or len(wire) != 3
                or wire[0] != "vid" or not isinstance(wire[1], int)):
            raise ValueError("malformed view id: %r" % (wire,))
        return cls(wire[1], wire[2])


class View:
    """An installed view: identifier, ordered members, designated coordinator.

    The coordinator is locally computable from the view contents alone
    (paper section 3.4.3), so every member can verify who should be acting
    as coordinator without trusting anyone.
    """

    __slots__ = ("vid", "mbrs", "coordinator", "f", "underprovisioned")

    def __init__(self, vid, mbrs, coordinator=None, f=0, underprovisioned=False):
        if len(set(mbrs)) != len(mbrs):
            raise ValueError("duplicate members in view: %r" % (mbrs,))
        self.vid = vid
        self.mbrs = tuple(mbrs)
        if coordinator is None:
            coordinator = choose_coordinator(vid.counter, self.mbrs)
        if coordinator not in self.mbrs:
            raise ValueError("coordinator %r not a member" % (coordinator,))
        self.coordinator = coordinator
        self.f = f
        self.underprovisioned = underprovisioned

    @property
    def n(self):
        return len(self.mbrs)

    def rank(self, member):
        return self.mbrs.index(member)

    def __contains__(self, member):
        return member in self.mbrs

    def __eq__(self, other):
        return (isinstance(other, View) and self.vid == other.vid
                and self.mbrs == other.mbrs)

    def __hash__(self):
        return hash((self.vid, self.mbrs))

    def __repr__(self):
        return "View({}, n={}, coord={})".format(self.vid, self.n, self.coordinator)

    def to_wire(self):
        return ("view", self.vid.to_wire(), self.mbrs, self.coordinator,
                self.f, self.underprovisioned)

    @classmethod
    def from_wire(cls, wire):
        if not isinstance(wire, tuple) or len(wire) != 6 or wire[0] != "view":
            raise ValueError("malformed view: %r" % (wire,))
        _tag, vid_wire, mbrs, coordinator, f, under = wire
        return cls(ViewId.from_wire(vid_wire), tuple(mbrs), coordinator,
                   int(f), bool(under))


def choose_coordinator(old_counter, members):
    """The i-th member, i = old view counter mod membership size.

    Rotating the coordinator on every view change bounds the damage of a
    Byzantine coordinator to one view-change attempt (paper section 3.4.3).
    ``members`` must already exclude the nodes agreed to be faulty.
    """
    if not members:
        raise ValueError("cannot choose a coordinator of an empty view")
    return tuple(members)[old_counter % len(members)]


def singleton_view(me):
    """The bootstrap view a joining node establishes for itself."""
    return View(ViewId(0, me), (me,), coordinator=me, f=0,
                underprovisioned=True)
