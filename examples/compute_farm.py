"""Compute farm with parsimonious execution (paper section 5, [43]/[56]).

When requests are computation-intensive it pays to split *agreement* from
*execution*: all 8 members agree on the order, but each request runs on a
rotating committee of only f + 1 = 2 members; replies are voted, and a
mismatch escalates to f more executors where a result repeated f + 1
times wins.  The farm does ~2/8 of the work of full active replication --
until a lying executor forces (and loses) an escalation.

Run:  python examples/compute_farm.py
"""

from repro import Group, StackConfig
from repro.apps.parsimonious import ParsimoniousService


def expensive(command):
    """Stand-in for a heavy deterministic computation."""
    op, payload = command
    if op == "factor":
        n = payload
        factors = []
        d = 2
        while d * d <= n:
            while n % d == 0:
                factors.append(d)
                n //= d
            d += 1
        if n > 1:
            factors.append(n)
        return tuple(factors)
    return ("unknown-op",)


def main():
    config = StackConfig.byz(total_order=True, crypto="sym")
    group = Group.bootstrap(8, config=config, seed=17)
    results = {node: {} for node in group.endpoints}
    farms = {}
    for node, endpoint in group.endpoints.items():
        farms[node] = ParsimoniousService(
            endpoint, execute=expensive,
            on_result=lambda rid, res, node=node:
                results[node].__setitem__(rid, res),
            # node 5 lies about every computation it performs
            lie=(lambda cmd, res: ("bogus",)) if node == 5 else None)
    group.byzantine_nodes = {5}
    f = group.processes[0].f
    print("farm of 8, f=%d: committees of %d, full replication would be 8"
          % (f, f + 1))

    numbers = [982451653, 479001599, 2147483647, 999999937,
               123456789, 600851475143, 1234567891, 987654321]
    rids = [farms[k % 8].submit(("factor", num))
            for k, num in enumerate(numbers)]
    group.run(3.0)

    total_execs = sum(s.executions for s in farms.values())
    print("requests: %d   total executions: %d   (full replication: %d)"
          % (len(numbers), total_execs, len(numbers) * 8))
    for rid, num in zip(rids, numbers):
        certified = {repr(results[node].get(rid)) for node in group.endpoints
                     if node != 5}
        assert len(certified) == 1, "replicas disagree on %d" % num
        value = results[0][rid]
        assert value != ("bogus",), "the liar won?!"
        product = 1
        for factor in value:
            product *= factor
        assert product == num
        print("  factor(%d) = %s" % (num, "*".join(map(str, value))))
    liar_work = farms[5].executions
    print("liar executed %d times; every lie was outvoted" % liar_work)
    assert total_execs < len(numbers) * 8, "no savings over full replication"
    print("OK: ~%.0f%% of full-replication work, Byzantine-safe results"
          % (100.0 * total_execs / (len(numbers) * 8)))


if __name__ == "__main__":
    main()
