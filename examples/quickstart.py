"""Quickstart: a Byzantine-tolerant group in a dozen lines.

Boots an 8-node group with symmetric-key authentication, broadcasts a few
messages, crashes a member, and shows the view change arriving at the
application -- all of the paper's machinery (fuzzy failure detection,
slander, vector consensus, flush, uniform broadcast of the view) runs
underneath the tiny API surface.

Run:  python examples/quickstart.py
"""

from repro import Group, StackConfig


def main():
    config = StackConfig.byz(crypto="sym")
    group = Group.bootstrap(8, config=config, seed=1)
    print("booted: %s, f=%d tolerated" %
          (group.processes[0].view, group.processes[0].f))

    # application callbacks on one member
    alice = group.endpoints[0]
    alice.on_cast = lambda ev: print(
        "  [node 0] cast-deliver from %s: %r (view %s)"
        % (ev.origin, ev.payload, ev.view_id))
    alice.on_view = lambda ev: print(
        "  [node 0] VIEW %s members=%s" % (ev.view.vid, ev.view.mbrs))

    # everyone says hello
    for node, endpoint in group.endpoints.items():
        endpoint.cast(("hello from", node), size=16)
    group.run(0.2)

    # a member dies; the group reconfigures around it
    print("crashing node 5...")
    group.crash(5)
    group.run_until(lambda: alice.view.n == 7, timeout=5.0)
    print("recovered into %s after %.1f ms"
          % (alice.view,
             group.processes[0].membership.last_change_duration * 1000))

    # life goes on in the new view
    group.endpoints[1].cast(("still", "alive"), size=16)
    group.run(0.2)
    print("done; node 0 delivered %d events total" % len(alice.events))


if __name__ == "__main__":
    main()
