"""Partitionable membership: a cluster splits, both halves keep working,
then heal and merge back into one view (paper sections 2.3 and 3.4.2).

The Byzantine view synchrony definition explicitly supports concurrent
views of the same group; gossip over IP multicast lets the two sides
discover each other once the network heals, and the coordinator-driven
merge (with the joiner-side cross-check against a two-faced target
coordinator) reunifies them.

Run:  python examples/partitioned_cluster.py
"""

from repro import Group, StackConfig
from repro.apps.counter import ReplicatedCounter


def main():
    group = Group.bootstrap(8, config=StackConfig.byz(), seed=9)
    counters = {n: ReplicatedCounter(group.endpoints[n])
                for n in group.endpoints}
    group.run(0.05)

    print("splitting {0,1,2,3} | {4,5,6,7} ...")
    group.partition({0, 1, 2, 3}, {4, 5, 6, 7})
    group.run_until(lambda: all(p.view.n == 4
                                for p in group.processes.values()),
                    timeout=8.0)
    print("  side A view: %s" % (group.processes[0].view,))
    print("  side B view: %s" % (group.processes[4].view,))

    # both halves make independent progress
    counters[0].increment(10)
    counters[5].increment(1)
    group.run(0.2)
    print("  side A counters: %s" % {n: counters[n].value for n in range(4)})
    print("  side B counters: %s" % {n: counters[n].value
                                     for n in range(4, 8)})
    assert {counters[n].value for n in range(4)} == {10}
    assert {counters[n].value for n in range(4, 8)} == {1}

    print("healing the network ...")
    group.heal()
    group.run_until(lambda: all(p.view.n == 8
                                for p in group.processes.values())
                    and len({p.view.vid
                             for p in group.processes.values()}) == 1,
                    timeout=12.0)
    merged = group.processes[0].view
    print("  merged view: %s" % (merged,))

    # post-merge traffic reaches everyone
    counters[2].increment(100)
    group.run(0.3)
    gains = {n: counters[n].value for n in group.endpoints}
    print("  counters after merged increment: %s" % gains)
    assert all(value >= 100 for value in gains.values())
    print("OK: split, independent progress, merge, shared progress")


if __name__ == "__main__":
    main()
