"""Replicated bank: state-machine replication over Byzantine atomic
broadcast (paper section 3.5 -- "a basic mechanism for implementing a
replicated state machine semantics").

Seven replicas run a key-value bank.  Clients submit transfers at
different replicas concurrently; total ordering by repeated Byzantine
consensus guarantees every replica applies them in the same order, so
balances -- including overdraft rejections, which depend on order! --
agree everywhere.  A replica crash mid-stream does not disturb the
survivors' agreement.

Run:  python examples/replicated_bank.py
"""

from repro import Group, StackConfig
from repro.apps.rsm import Replica, StateMachine


class Bank(StateMachine):
    """Accounts with non-negative balances; order-dependent semantics."""

    def __init__(self):
        self.balances = {}
        self.rejected = 0

    def apply(self, origin, command):
        if not isinstance(command, tuple) or not command:
            return None
        op = command[0]
        if op == "open" and len(command) == 3:
            self.balances.setdefault(command[1], command[2])
        elif op == "transfer" and len(command) == 4:
            _op, src, dst, amount = command
            if (isinstance(amount, int) and amount > 0
                    and self.balances.get(src, 0) >= amount):
                self.balances[src] -= amount
                self.balances[dst] = self.balances.get(dst, 0) + amount
            else:
                self.rejected += 1
        return None

    def digest(self):
        import hashlib
        canon = tuple(sorted(self.balances.items()))
        return hashlib.sha256(repr(canon).encode()).hexdigest()[:16]


def main():
    config = StackConfig.byz(crypto="sym", total_order=True)
    group = Group.bootstrap(7, config=config, seed=3)
    replicas = {n: Replica(group.endpoints[n], Bank())
                for n in group.endpoints}

    # open accounts via replica 0
    replicas[0].submit(("open", "alice", 100))
    replicas[0].submit(("open", "bob", 50))
    group.run(0.3)

    # concurrent conflicting transfers from different replicas: whether
    # the second succeeds depends on the order -- replicas must agree
    replicas[1].submit(("transfer", "alice", "bob", 80))
    replicas[2].submit(("transfer", "alice", "bob", 80))  # one must bounce
    replicas[3].submit(("transfer", "bob", "alice", 10))
    group.run(0.5)

    print("crashing replica 6 mid-run...")
    group.crash(6)
    replicas[4].submit(("transfer", "bob", "alice", 25))
    group.run_until(lambda: group.processes[0].view.n == 6, timeout=5.0)
    group.run(0.5)

    digests = {n: r.state_digest() for n, r in replicas.items() if n != 6}
    balances = replicas[0].machine.balances
    print("balances:", balances)
    print("rejected transfers:", replicas[0].machine.rejected)
    print("state digests:", sorted(set(digests.values())))
    assert len(set(digests.values())) == 1, "replicas diverged!"
    assert sum(balances.values()) == 150, "money was created or destroyed!"
    print("OK: %d live replicas agree byte-for-byte" % len(digests))


if __name__ == "__main__":
    main()
