"""Byzantine attack drill: inject every Table-1 attack and watch the
group detect, slander, agree, and recover.

One 10-node cluster faces, in sequence: a node that goes completely mute,
a two-faced broadcaster (under uniform delivery), and a slander-flooding
verbose node.  After each attack the group reconfigures into a clean view
and the safety properties of Definitions 2.1/2.2 are re-checked.

Run:  python examples/byzantine_attack_drill.py
"""

from repro import Group, StackConfig
from repro.byzantine.behaviors import MuteNode, TwoFacedCaster, VerboseNode
from repro.core.properties import check_view_synchrony


def banner(text):
    print("\n=== %s ===" % text)


def main():
    behaviors = {
        7: MuteNode(mute_at=0.2),
        8: TwoFacedCaster(),
        9: VerboseNode(start_at=1.0, interval=0.003),
    }
    config = StackConfig.byz(crypto="sym", uniform_delivery=True)
    group = Group.bootstrap(10, config=config, seed=5, behaviors=behaviors)
    watcher = group.endpoints[0]
    watcher.on_view = lambda ev: print(
        "  node 0 installs %s: members=%s" % (ev.view.vid, ev.view.mbrs))

    banner("phase 1: two-faced broadcast (node 8)")
    group.endpoints[8].cast(("press release", "version?"), size=16)
    for node in (0, 1, 2):
        group.endpoints[node].cast(("normal", node), size=16)
    group.run(0.15)
    versions = set()
    for node in range(10):
        if node == 8:
            continue
        for ev in group.processes[node].history.events:
            if ev[0] == "cast_deliver" and ev[3] == 8:
                versions.add(ev[4])
    print("  versions of node 8's cast delivered anywhere: %d" % len(versions))
    assert len(versions) <= 1, "uniform delivery failed"

    banner("phase 2: node 7 goes mute at t=0.2s")
    group.run_until(
        lambda: all(7 not in p.view.mbrs for n, p in group.processes.items()
                    if n != 7 and not p.stopped), timeout=6.0)
    print("  mute node excluded; view is now %s" % (watcher.view,))

    banner("phase 3: node 9 floods slanders from t=1.0s")
    group.run_until(
        lambda: all(9 not in p.view.mbrs for n, p in group.processes.items()
                    if n not in (7, 9) and not p.stopped), timeout=8.0)
    print("  verbose node excluded; view is now %s" % (watcher.view,))
    correct = set(range(7)) - {0}  # all non-Byzantine, minus none actually
    assert all(m in watcher.view.mbrs for m in range(7)), \
        "a correct member was collateral damage"

    banner("verdict")
    violations = check_view_synchrony(group.execution())
    print("  view-synchrony violations: %d" % len(violations))
    assert not violations
    print("  all attacks contained; correct members never evicted")


if __name__ == "__main__":
    main()
