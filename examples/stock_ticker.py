"""Stock ticker fan-out: the high-throughput control-traffic workload the
paper's introduction motivates (stock quotes, cluster management).

A publisher floods small quote updates to a 12-node subscriber group and
we compare the quality-of-service ladder live: plain Byzantine-reliable
FIFO vs total ordering (consistent global tape) -- the same trade-off
Figure 5/7 quantify, here observable per-message.

Run:  python examples/stock_ticker.py
"""

from repro import Group, StackConfig


def run_feed(config, quotes=300, n=12):
    group = Group.bootstrap(n, config=config, seed=11)
    tape = {node: [] for node in group.endpoints}
    for node, endpoint in group.endpoints.items():
        endpoint.record_events = False
        endpoint.on_cast = (lambda ev, node=node:
                            tape[node].append((ev.origin, ev.payload)))

    # two publishers race updates for the same symbol
    sim = group.sim
    state = {"i": 0}

    def publish():
        i = state["i"]
        if i >= quotes:
            return
        group.endpoints[0].cast(("ACME", 100 + i), size=16)
        group.endpoints[1].cast(("ACME", 200 + i), size=16)
        state["i"] += 1
        sim.schedule(0.0005, publish)

    publish()
    group.run(1.5)
    group.stop()
    return tape


def last_quote_agreement(tape):
    """Do all subscribers end with the same final ACME quote?"""
    finals = set()
    for node, entries in tape.items():
        acme = [p for _o, p in entries if p[0] == "ACME"]
        if acme:
            finals.add(acme[-1])
    return finals


def main():
    print("plain Byzantine-reliable FIFO feed:")
    tape = run_feed(StackConfig.byz())
    finals = last_quote_agreement(tape)
    print("  delivered per node: %s quotes"
          % sorted({len(v) for v in tape.values()}))
    print("  distinct final quotes across subscribers: %d (FIFO is only "
          "per-publisher: interleaving may differ)" % len(finals))

    print("totally ordered feed (one global tape):")
    tape = run_feed(StackConfig.byz(total_order=True))
    finals = last_quote_agreement(tape)
    print("  delivered per node: %s quotes"
          % sorted({len(v) for v in tape.values()}))
    print("  distinct final quotes across subscribers: %d" % len(finals))
    assert len(finals) == 1, "total order must yield one global tape"
    tapes = {tuple(v) for v in tape.values()}
    assert len(tapes) == 1, "subscribers saw different tapes"
    print("OK: every subscriber saw the identical tape")


if __name__ == "__main__":
    main()
