"""MANET convoy: the ad-hoc deployment JazzEnsemble was built for
(paper section 6 and the JazzEnsemble report [23]).

A 9-vehicle convoy runs the full Byzantine group-communication stack over
a multi-hop radio network: most pairs cannot hear each other directly, so
messages are forwarded over node-disjoint paths.  One relay turns
Byzantine and silently drops everything it should forward -- multipath
masks it.  Then the convoy's tail drives out of range, the group
partitions by movement, and it merges back when the tail returns.

Run:  python examples/manet_convoy.py
"""

from repro import Group, StackConfig
from repro.adhoc.geometry import Field


def main():
    # a two-lane convoy: each vehicle hears its lane neighbours and the
    # adjacent lane, so node-disjoint routes exist around any single relay
    field = Field(radio_range=0.16)
    for i in range(9):
        field.place(i, 0.05 + (i // 2) * 0.1, 0.45 + (i % 2) * 0.1)
    group = Group.bootstrap_adhoc(9, config=StackConfig.byz(), seed=6,
                                  field=field, max_paths=2)
    net = group.network
    print("radio graph connected:", field.is_connected())
    print("hops 0 -> 8:", field.shortest_hops(0, 8))

    print("\nlead vehicle broadcasts a position report ...")
    group.endpoints[0].cast(("position", 0, "grid-ref 17B"), size=24)
    group.run(2.0)
    got = sum(1 for n in range(9)
              if any(e.payload == ("position", 0, "grid-ref 17B")
                     for e in group.endpoints[n].events
                     if type(e).__name__ == "CastDeliver"))
    print("  delivered at %d/9 vehicles over %d relayed hops"
          % (got, net.relayed_hops))
    assert got == 9

    print("\nvehicle 4 turns Byzantine: drops everything it relays ...")
    net.set_dropping_relays({4})
    group.endpoints[1].cast(("contact", "east ridge"), size=24)
    group.run(3.0)
    got = sum(1 for n in range(9)
              if any(e.payload == ("contact", "east ridge")
                     for e in group.endpoints[n].events
                     if type(e).__name__ == "CastDeliver"))
    print("  delivered at %d/9 despite %d relay drops (disjoint paths)"
          % (got, net.dropped_by_relay))

    print("\nthe tail (vehicles 7, 8) drives out of range ...")
    net.set_dropping_relays(set())
    group.run(2.0)  # let the fuzzy levels from the attack age out
    field.place(7, 0.30, 0.95)
    field.place(8, 0.40, 0.95)
    net.on_movement()
    group.run_until(
        lambda: all(p.view.n == 7 for n, p in group.processes.items() if n < 7)
        and all(p.view.n == 2 for n, p in group.processes.items() if n >= 7),
        timeout=30.0)
    print("  main group view: %s" % (group.processes[0].view,))
    print("  tail view:       %s" % (group.processes[7].view,))

    print("\nthe tail catches up ...")
    field.place(7, 0.35, 0.45)
    field.place(8, 0.35, 0.55)
    net.on_movement()
    merged = group.run_until(
        lambda: all(p.view.n == 9 for p in group.processes.values())
        and len({p.view.vid for p in group.processes.values()}) == 1,
        timeout=40.0)
    print("  merged back: %s -> %s" % (merged, group.processes[0].view))
    assert merged
    print("\nOK: Byzantine group communication over a moving radio network")


if __name__ == "__main__":
    main()
