"""The observability plane: metrics, tracing, and its no-op guarantee."""

import json
import os

import pytest

from repro import Group, ObsConfig, StackConfig
from repro.apps.ring import RingDemo
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import Tracer
from repro.tools.timeline import render_trace

RECEIVE_PATH = ["reliable", "fragment", "flow", "heartbeat", "suspicion",
                "membership", "state_transfer", "ordering", "uniform", "top"]


# ----------------------------------------------------------------------
# registry / tracer units
# ----------------------------------------------------------------------
def test_registry_instruments():
    reg = MetricsRegistry()
    reg.inc(0, "top", "casts", 2)
    reg.inc(0, "top", "casts")
    assert reg.get(0, "top", "casts").value == 3
    reg.observe(1, "top", "latency", 0.5)
    reg.observe(1, "top", "latency", 1.5)
    hist = reg.get(1, "top", "latency")
    assert hist.count == 2 and hist.mean == 1.0 and hist.maximum == 1.5
    reg.set_gauge(0, "flow", "queue", 7)
    assert reg.get(0, "flow", "queue").value == 7
    assert reg.get(9, "nope", "never") is None
    assert len(reg) == 3


def test_registry_kind_mismatch_raises():
    reg = MetricsRegistry()
    reg.inc(0, "top", "x")
    with pytest.raises(TypeError):
        reg.histogram(0, "top", "x")


def test_registry_queries_and_export():
    reg = MetricsRegistry()
    for node in (0, 1, 2):
        reg.inc(node, "top", "casts", node + 1)
        reg.observe(node, "top", "lat", float(node))
    assert reg.total("casts", layer="top") == 6
    assert set(reg.select(node=1)) == {(1, "top", "casts"), (1, "top", "lat")}
    assert sorted(reg.merged_histogram("lat").samples) == [0.0, 1.0, 2.0]
    rows = reg.to_dict()
    assert len(rows) == 6
    assert json.loads(reg.to_json())  # round-trips
    csv = reg.to_csv()
    assert csv.splitlines()[0].startswith("node,layer,name,kind")
    assert len(csv.splitlines()) == 7


def test_tracer_capacity_eviction():
    tracer = Tracer(capacity=3)
    for k in range(5):
        tracer.hop((0, k), 0.0, 0, "top", "down")
    assert len(tracer) == 3
    assert tracer.evicted == 2
    assert tracer.get((0, 0)) is None        # oldest went first
    assert tracer.get((0, 4)) is not None


# ----------------------------------------------------------------------
# disabled by default: the plane does not exist anywhere
# ----------------------------------------------------------------------
def test_disabled_by_default():
    group = Group.bootstrap(3, config=StackConfig.byz(), seed=1)
    assert group.obs is None
    assert group.metrics is None
    assert group.sim.observer is None
    assert group.network.observer is None
    for process in group.processes.values():
        assert process.obs is None
        assert process.stack.obs is None
    assert group.endpoints[0].metrics is None
    with pytest.raises(RuntimeError):
        group.trace((0, 1))
    with pytest.raises(RuntimeError):
        group.endpoints[0].trace((0, 1))
    with pytest.raises(RuntimeError):
        group.export_obs("never-written.json")
    group.stop()


# ----------------------------------------------------------------------
# the no-op guarantee: simulated execution identical with and without
# ----------------------------------------------------------------------
def _instrumented_run(obs):
    config = StackConfig.byz(obs=obs)
    group = Group.bootstrap(4, config=config, seed=11)
    ring = RingDemo(group, burst=8, msg_size=16)
    ring.start()
    group.run(0.1)
    fingerprint = (group.sim.now, group.sim.events_processed,
                   ring.deliveries, ring.min_rounds_completed(),
                   tuple(sorted((n, p.view.vid) for n, p in
                                group.processes.items())))
    group.stop()
    return fingerprint


def test_obs_execution_parity():
    base = _instrumented_run(None)
    assert _instrumented_run(True) == base
    assert _instrumented_run(ObsConfig(metrics=True, tracing=False)) == base
    assert _instrumented_run(ObsConfig(metrics=False, tracing=True)) == base


# ----------------------------------------------------------------------
# span completeness on a 4-node cast
# ----------------------------------------------------------------------
@pytest.fixture
def traced_cast():
    group = Group.bootstrap(4, config=StackConfig.byz(obs=True), seed=11)
    mid = group.endpoints[0].cast("traced", size=16)
    ok = group.run_until(
        lambda: all(p.top.delivered >= 1 for p in group.processes.values()),
        timeout=2.0)
    assert ok
    yield group, mid
    group.stop()


def test_trace_span_completeness(traced_cast):
    group, mid = traced_cast
    trace = group.trace(mid)
    assert trace is group.endpoints[2].trace(mid)
    assert trace.nodes() == {0, 1, 2, 3}
    # origin: span opens at the top layer heading down, through the stack
    down = trace.path(node=0, actions=("down",))
    assert down[0] == "top" and down[-1] == "bottom"
    # every receiver: the full up-path through the stack, in order
    for node in (1, 2, 3):
        assert trace.path(node=node, actions=("up",)) == RECEIVE_PATH
    # the wire: one tx per receiver at the origin, one rx per receiver
    tx = [ev for ev in trace.events if ev.action == "tx"]
    assert [ev.node for ev in tx] == [0, 0, 0]
    assert sorted(ev.detail for ev in tx) == [1, 2, 3]
    rx = [ev for ev in trace.events if ev.action == "rx"]
    assert sorted(ev.node for ev in rx) == [1, 2, 3]
    # application delivery on all four nodes (origin self-delivers)
    assert set(trace.deliveries()) == {0, 1, 2, 3}
    assert trace.opened == 0.0
    assert trace.closed >= max(trace.deliveries().values())
    # render paths
    assert len(trace.render()) == len(trace)
    assert len(render_trace(trace, node=1)) == len(trace.events_for(1))
    assert render_trace(None) == ["(no trace recorded for that message id)"]


def test_trace_latency_and_counters(traced_cast):
    group, mid = traced_cast
    metrics = group.metrics
    assert metrics.total("casts_sent", layer="top") == 1
    assert metrics.total("casts_delivered", layer="top") == 4
    assert metrics.total("messages_signed", layer="bottom") > 0
    assert metrics.total("timers_fired", layer="scheduler") > 0
    assert metrics.total("datagrams_out", layer="net") > 0
    latency = metrics.merged_histogram("cast_latency", layer="top")
    assert latency.count == 4
    assert latency.maximum < 0.05
    # the endpoint's slice only sees its own node
    slice0 = group.endpoints[0].metrics
    assert slice0 and all(key[0] == 0 for key in slice0)


def test_untraced_msg_id_returns_none(traced_cast):
    group, _mid = traced_cast
    assert group.trace((99, 12345)) is None


def test_obs_export_artifact(tmp_path):
    path = str(tmp_path / "obs.json")
    group = Group.bootstrap(4, config=StackConfig.byz(obs=True), seed=11)
    group.endpoints[0].cast("exported", size=16)
    group.run(0.05)
    assert group.export_obs(path) == path
    with open(path) as handle:
        artifact = json.load(handle)
    assert set(artifact) == {"sim_now", "metrics", "traces"}
    assert artifact["metrics"] and artifact["traces"]
    assert "(0, 1)" in artifact["traces"]
    group.stop()


# ----------------------------------------------------------------------
# harness / tools integration
# ----------------------------------------------------------------------
def test_ring_throughput_obs_export(tmp_path):
    import sys
    sys.path.insert(0, os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    from benchmarks.harness import ring_throughput
    path = str(tmp_path / "point.json")
    plain = ring_throughput(StackConfig.byz(), 8)
    result = ring_throughput(StackConfig.byz(), 8, obs_export=path)
    # enabling observability does not move the measured number at all
    assert result["throughput"] == plain["throughput"]
    assert result["obs"]["casts_delivered"] > 0
    assert result["obs"]["traces"] > 0
    with open(path) as handle:
        assert json.load(handle)["metrics"]


def test_fuzzer_metrics_summary():
    from repro.tools.fuzzer import ScenarioFuzzer
    fuzzer = ScenarioFuzzer(3, n=4, ops=3, byzantine_fraction=0.0,
                            allow=("cast_burst", "run"), obs=True)
    fuzzer.execute()
    assert fuzzer.check() == []
    summary = fuzzer.metrics_summary()
    assert summary["casts_delivered"] > 0
    assert summary["view_changes"] >= 0
    fuzzer.group.stop()
    # without obs the summary is None and fuzz() keeps its return shape
    plain = ScenarioFuzzer(3, n=4, ops=2, byzantine_fraction=0.0,
                           allow=("run",)).execute()
    assert plain.metrics_summary() is None
    plain.group.stop()


def test_trace_cli(capsys):
    from repro.__main__ import main
    assert main(["trace", "--nodes", "4", "--seed", "11"]) == 0
    out = capsys.readouterr().out
    assert "delivered everywhere: True" in out
    assert "deliver" in out
    assert main(["trace", "--json"]) == 0
    artifact = json.loads(capsys.readouterr().out)
    assert artifact["delivered_everywhere"] is True
    assert artifact["trace"]["events"]


def test_stats_probes_are_obs_shims():
    from repro.sim.stats import LatencyProbe
    probe = LatencyProbe()
    assert isinstance(probe, Histogram)
    probe.begin("a", 1.0)
    probe.end("a", 1.5)
    probe.add(1.0)
    assert probe.count == 2 and probe.p99 == 1.0


def test_instruments_have_kinds():
    assert Counter().kind == "counter"
    assert Gauge().kind == "gauge"
    assert Histogram().kind == "histogram"
    gauge = Gauge()
    gauge.add(2)
    gauge.add(3)
    assert gauge.value == 5
