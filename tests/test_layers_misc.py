"""Unit-ish tests for flow control, fragmentation, stability, heartbeat,
suspicion, and the gossip machinery -- exercised through small clusters."""

from tests.helpers import cast_payloads, make_group

from repro import Group, StackConfig
from repro.core import message as mk


# ----------------------------------------------------------------------
# flow control
# ----------------------------------------------------------------------
def test_flow_window_queues_excess_casts():
    group = make_group(4, seed=1, flow_window=8, ack_interval=0.05)
    for k in range(50):
        group.endpoints[0].cast(("w", k))
    flow = group.processes[0].stack.layer("flow")
    assert flow.queued > 0       # window smaller than the burst
    assert flow.stalls > 0
    group.run(1.0)
    assert flow.queued == 0      # acks drained the queue
    for node in range(1, 4):
        payloads = [p for p in cast_payloads(group.endpoints[node])
                    if p[0] == "w"]
        assert payloads == [("w", k) for k in range(50)]


def test_fuzzy_member_does_not_stall_window():
    # a member that stops acking gains fuzziness; the window must advance
    # anyway (the paper's flow-control optimization, section 3.1)
    group = make_group(5, seed=2, flow_window=8)
    group.run(0.05)
    # silence node 4 without telling anyone
    group.network.crash(4)
    sent = 0
    def pump():
        nonlocal sent
        if sent < 60:
            group.endpoints[0].cast(("f", sent))
            sent += 1
            group.sim.schedule(0.004, pump)
    pump()
    group.run(2.0)
    flow = group.processes[0].stack.layer("flow")
    delivered_at_1 = [p for p in cast_payloads(group.endpoints[1])
                      if isinstance(p, tuple) and p[0] == "f"]
    assert len(delivered_at_1) == 60   # never permanently stalled


# ----------------------------------------------------------------------
# fragmentation
# ----------------------------------------------------------------------
def test_large_cast_fragmented_and_reassembled():
    group = make_group(4, seed=3, mtu=1400)
    group.endpoints[0].cast(("big", "x" * 10), size=5000)
    group.run(0.3)
    frag0 = group.processes[0].stack.layer("fragment")
    assert frag0.fragmented == 1
    for node in range(1, 4):
        payloads = cast_payloads(group.endpoints[node])
        assert ("big", "x" * 10) in payloads
        frag = group.processes[node].stack.layer("fragment")
        assert frag.reassembled == 1


def test_small_casts_bypass_fragmentation():
    group = make_group(4, seed=4)
    group.endpoints[0].cast("small", size=100)
    group.run(0.2)
    assert group.processes[0].stack.layer("fragment").fragmented == 0
    assert "small" in cast_payloads(group.endpoints[1])


def test_mixed_large_and_small_keep_fifo():
    group = make_group(4, seed=5, mtu=1400)
    group.endpoints[0].cast(("a", 1), size=16)
    group.endpoints[0].cast(("b", 2), size=4000)
    group.endpoints[0].cast(("c", 3), size=16)
    group.run(0.3)
    for node in range(1, 4):
        seq = [p for p in cast_payloads(group.endpoints[node])
               if p[0] in ("a", "b", "c")]
        assert seq == [("a", 1), ("b", 2), ("c", 3)]


# ----------------------------------------------------------------------
# stability tracker
# ----------------------------------------------------------------------
def test_stability_all_stable_after_quiescence():
    group = make_group(4, seed=6)
    for k in range(5):
        group.endpoints[0].cast(("s", k))
    group.run(0.3)
    tracker = group.processes[0].stability
    cut = {0: 5, 1: 0, 2: 0, 3: 0}
    assert tracker.all_stable(cut, group.processes[0].view.mbrs)


def test_stability_not_stable_for_future_messages():
    group = make_group(4, seed=7)
    group.run(0.1)
    tracker = group.processes[0].stability
    assert not tracker.all_stable({0: 99}, group.processes[0].view.mbrs)


def test_laggard_gains_mute_fuzziness():
    group = make_group(4, seed=8, flow_window=4)
    group.run(0.05)
    group.network.crash(3)  # silent death: stops acking
    sent = 0
    def pump():
        nonlocal sent
        if sent < 40:
            group.endpoints[0].cast(("lag", sent))
            sent += 1
            group.sim.schedule(0.005, pump)
    pump()
    group.run(0.5)
    assert group.processes[0].mute_levels.level(3) > 0 or \
        3 not in group.processes[0].view.mbrs


# ----------------------------------------------------------------------
# heartbeat / gossip
# ----------------------------------------------------------------------
def test_silent_node_gains_mute_level():
    group = make_group(4, seed=9)
    group.run(0.05)
    group.network.crash(2)
    group.run(0.15)
    live = group.processes[0]
    assert (live.mute_levels.level(2) > 0
            or live.suspicion.is_suspected(2)
            or 2 not in live.view.mbrs)


def test_coordinator_gossips_and_members_track_it():
    group = make_group(4, seed=10)
    group.run(0.3)
    coord = group.processes[0].view.coordinator
    hb = group.processes[coord].stack.layer("heartbeat")
    assert hb.gossips_sent >= 4
    # non-coordinators did not announce
    for node, process in group.processes.items():
        if node != coord:
            assert process.stack.layer("heartbeat").gossips_sent == 0


def test_heartbeats_keep_idle_group_quiet():
    group = make_group(6, seed=11)
    group.run(1.0)  # no traffic at all: heartbeats must prevent suspicion
    assert all(p.membership.view_changes == 0
               for p in group.processes.values())
    assert all(p.view.n == 6 for p in group.processes.values())


# ----------------------------------------------------------------------
# suspicion layer
# ----------------------------------------------------------------------
def test_single_slander_insufficient_for_adoption():
    group = make_group(8, seed=12)  # f = 1 -> adoption needs 2 slanders
    group.run(0.05)
    process = group.processes[0]
    from repro.core.message import Message
    slander = Message(mk.KIND_SLANDER, 5, process.view.vid, (3, "fake"))
    slander.sender = 5
    process.suspicion.handle_up(slander)
    assert not process.suspicion.is_suspected(3)


def test_f_plus_one_slanders_adopt():
    group = make_group(8, seed=13)
    group.run(0.05)
    process = group.processes[0]
    from repro.core.message import Message
    for slanderer in (5, 6):
        slander = Message(mk.KIND_SLANDER, slanderer, process.view.vid,
                          (3, "mute"))
        slander.sender = slanderer
        process.suspicion.handle_up(slander)
    assert process.suspicion.is_suspected(3)


def test_slander_about_self_ignored():
    group = make_group(8, seed=14)
    group.run(0.05)
    process = group.processes[0]
    from repro.core.message import Message
    for slanderer in (5, 6):
        slander = Message(mk.KIND_SLANDER, slanderer, process.view.vid,
                          (slanderer, "weird"))
        slander.sender = slanderer
        process.suspicion.handle_up(slander)
    assert not process.suspicion.suspected_set()


def test_suspicion_cleared_on_new_view():
    group = make_group(6, seed=15)
    group.run(0.05)
    group.crash(5)
    group.run_until(lambda: all(p.view.n == 5 for p in group.processes.values()
                                if not p.stopped), timeout=4.0)
    for node, process in group.processes.items():
        if not process.stopped:
            assert not process.suspicion.suspected_set()
