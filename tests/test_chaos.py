"""Chaos-plane tests: fault plans, the engine, shrinking, and hardening."""

import random

from tests.helpers import make_group

from repro.chaos import (ChaosEngine, FaultPlan, LinkFaults, random_plan,
                         run_plan, shrink_plan)


# ----------------------------------------------------------------------
# plan serialization
# ----------------------------------------------------------------------
def test_plan_json_roundtrip(tmp_path):
    plan = random_plan(17, ops=10, config={"crypto": "sym"},
                       net={"drop_prob": 0.05}, check={"total_order": False})
    clone = FaultPlan.from_json(plan.to_json())
    assert clone == plan
    path = str(tmp_path / "plan.json")
    plan.save(path)
    assert FaultPlan.load(path) == plan
    assert len(plan.replace_ops(plan.ops[:3])) == 3


def test_random_plans_are_seed_deterministic():
    assert random_plan(23, ops=9).to_dict() == random_plan(23, ops=9).to_dict()
    assert random_plan(23, ops=9).to_dict() != random_plan(24, ops=9).to_dict()


# ----------------------------------------------------------------------
# link-fault tables
# ----------------------------------------------------------------------
def test_link_fault_wildcards_and_counters():
    faults = LinkFaults(random.Random(1))
    faults.set_fault("drop", None, None, 1.0)
    assert faults.filter(0, 1, "payload")[2] is True
    faults.clear()
    assert not faults.active
    faults.set_fault("drop", 2, None, 1.0)
    assert faults.filter(2, 5, "payload")[2] is True
    assert faults.filter(1, 5, "payload")[2] is False
    faults.set_fault("duplicate", None, 3, 1.0)
    payload, extra, dropped = faults.filter(1, 3, "payload")
    assert (payload, extra, dropped) == ("payload", 1, False)
    assert faults.dropped == 2 and faults.duplicated == 1
    # prob 0 removes the entry
    faults.set_fault("drop", 2, None, 0)
    assert faults.filter(2, 5, "payload")[2] is False


def test_plan_replay_is_deterministic():
    plan = random_plan(5, ops=10)
    first_v, first_e = run_plan(plan, settle=1.0)
    second_v, second_e = run_plan(plan, settle=1.0)
    assert first_v == second_v
    assert (first_e.group.network.datagrams_sent
            == second_e.group.network.datagrams_sent)
    assert (first_e.group.sim.events_processed
            == second_e.group.sim.events_processed)


def test_drop_and_duplicate_faults_recovered():
    plan = FaultPlan(seed=6, n=4, ops=[
        ["drop", None, None, 0.2],
        ["duplicate", None, None, 0.2],
        ["cast", 0, 8],
        ["run", 0.5],
    ])
    violations, engine = run_plan(plan)
    assert violations == []
    assert engine.faults.dropped > 0
    assert engine.faults.duplicated > 0


def test_duplicated_datagrams_are_independent_copies():
    """Regression: the sim used to redeliver the *same* Message object
    for a duplicated datagram.  The first delivery pops layer headers in
    place, so the replay arrived header-stripped and every receiver
    scored a benign network duplicate as Byzantine verbosity -- enough
    wildcard duplication dissolved the whole group into singleton views
    (destroying the total-order layer's undelivered buffer with it).
    With per-delivery copies, heavy duplication is absorbed silently."""
    plan = FaultPlan(seed=6, n=5, config={"total_order": True}, ops=[
        ["duplicate", None, None, 0.3],
        ["cast", 0, 8],
        ["run", 0.4],
        ["cast", 3, 6],
        ["cast", 1, 6],
        ["run", 0.6],
    ])
    violations, engine = run_plan(plan)
    assert violations == []
    assert engine.faults.duplicated > 0
    # duplication alone must never trigger a view change
    vids = {p.view.vid for p in engine.group.processes.values()}
    assert len(vids) == 1 and next(iter(vids)).counter == 1
    # and the dedup happened at the reliable layer, silently
    assert any(p.reliable.duplicates > 0
               for p in engine.group.processes.values())


def test_skew_and_nic_faults_run_clean():
    plan = FaultPlan(seed=4, n=4, ops=[
        ["skew", 1, 1.3],
        ["nic", 2, 0.1],
        ["cast", 0, 5],
        ["run", 0.4],
        ["cast", 1, 3],
        ["run", 0.3],
    ])
    violations, engine = run_plan(plan)
    assert violations == []
    # the skewed node got a real NodeClock, restored to neutral at settle
    assert engine.group.clocks[1].drift == 1.0
    nic = engine.group.network.nic_of(2)
    assert nic.bandwidth_bps == engine.group.network.topology.nic_bandwidth_bps


def test_ops_are_tolerant_of_invalid_targets():
    plan = FaultPlan(seed=8, n=4, ops=[
        ["crash", 99],              # nonexistent node
        ["restart", 2],             # never crashed
        ["leave", 99],
        ["cast", 99, 3],
        ["partition", [[0, 99], [1, 2]]],
        ["nic", 99, 0.5],
        ["skew", 99, 1.2],
        ["cast", 0, 2],
        ["run", 0.2],
    ])
    violations, _engine = run_plan(plan)
    assert violations == []


def test_crash_and_restart_through_plan():
    plan = FaultPlan(seed=9, n=4, ops=[
        ["run", 0.2],
        ["crash", 3],
        ["run", 1.5],               # eviction
        ["restart", 3],
        ["run", 3.0],               # rejoin
    ])
    violations, engine = run_plan(plan, settle=2.0)
    assert violations == []
    assert engine.group.processes[3].incarnation == 1
    # run_plan stops the group before returning; the final installed
    # views are still inspectable on the processes
    views = {p.view for p in engine.group.processes.values()}
    assert len(views) == 1
    assert set(engine.group.processes[3].view.mbrs) == {0, 1, 2, 3}


# ----------------------------------------------------------------------
# corruption -> suspicion (bottom-layer hardening)
# ----------------------------------------------------------------------
def test_corruption_faults_drive_suspicion_and_eviction():
    """A node whose outgoing packets rot on the wire is detected by the
    signature-rejection path and evicted through the suspicion layer --
    well before the mute detector (parked at 1s) could have acted."""
    plan = FaultPlan(seed=2, n=4, ops=[
        ["corrupt", 3, None, 1.0],
        ["run", 0.1],
    ], config={"byzantine": True, "crypto": "sym",
               "mute_timeout": 1.0,
               "verbose_suspect_threshold": 100.0})
    engine = ChaosEngine(plan)
    engine.build()
    for op in plan.ops:
        engine.apply(op)
    group = engine.group
    ok = group.run_until(
        lambda: all(3 not in p.view.mbrs
                    for node, p in group.processes.items() if node != 3),
        timeout=5.0)
    assert ok
    # eviction happened long before the mute timeout could fire, so the
    # corruption-triggered strikes are what reported node 3
    assert group.sim.now < 0.9
    threshold = group.config.corruption_suspect_threshold
    assert any(p.bottom.dropped_bad_signature >= threshold
               for node, p in group.processes.items() if node != 3)
    assert engine.faults.corrupted >= threshold
    group.stop()


def test_corruption_threshold_zero_disables_reporting():
    group = make_group(4, seed=1, crypto="sym",
                       corruption_suspect_threshold=0)
    process = group.processes[0]
    for _ in range(10):
        process.bottom._sig_strike(2)
    assert process.bottom._sig_strikes == {}
    group.stop()


# ----------------------------------------------------------------------
# retransmission backoff hardening (reliable layer)
# ----------------------------------------------------------------------
def test_retrans_backoff_grows_and_caps():
    group = make_group(3, seed=1)
    reliable = group.processes[0].reliable
    config = group.config
    d0 = reliable._retrans_delay(1, "stream", 0)
    d3 = reliable._retrans_delay(1, "stream", 3)
    d20 = reliable._retrans_delay(1, "stream", 20)
    # growth until the cap; at the cap only the per-round jitter varies
    assert config.retrans_timeout <= d0 < d3
    for delay in (d0, d3, d20):
        assert delay <= config.retrans_backoff_max * (1.0
                                                      + config.retrans_jitter)
    # jitter is a pure hash: the same (peer, stream, round) always gets
    # the same delay -- no RNG draw, so seeds stay stable
    assert d3 == reliable._retrans_delay(1, "stream", 3)
    # different nodes decorrelate
    other = group.processes[1].reliable
    assert d3 != other._retrans_delay(1, "stream", 3)
    group.stop()


# ----------------------------------------------------------------------
# shrinking
# ----------------------------------------------------------------------
def _two_faced_plan():
    # the known failure: content agreement is violated by a two-faced
    # caster when only plain reliable delivery runs; everything else in
    # the script is removable padding
    return FaultPlan(seed=11, n=5, ops=[
        ["byzantine", 0, "TwoFacedCaster", {}],
        ["run", 0.1],
        ["cast", 2, 3],
        ["cast", 0, 3],
        ["heal"],
        ["run", 0.5],
        ["cast", 1, 2],
        ["run", 0.2],
    ], check={"content_agreement": True})


def test_shrink_minimizes_known_failure(tmp_path):
    plan = _two_faced_plan()
    violations, _engine = run_plan(plan)
    assert violations, "the seed scenario must fail for shrinking to apply"
    small = shrink_plan(plan)
    assert len(small) < len(plan)
    op_names = [op[0] for op in small.ops]
    assert "byzantine" in op_names and "cast" in op_names
    # the minimized plan still fails, and survives a JSON round trip with
    # identical violations (the replayable artifact contract)
    small_violations, _engine = run_plan(small)
    assert small_violations
    path = str(tmp_path / "minimized.json")
    small.save(path)
    replay_violations, _engine = run_plan(FaultPlan.load(path))
    assert replay_violations == small_violations


def test_shrink_rejects_passing_plan():
    plan = FaultPlan(seed=1, n=4, ops=[["cast", 0, 1], ["run", 0.2]])
    try:
        shrink_plan(plan)
    except ValueError:
        pass
    else:
        raise AssertionError("shrink_plan accepted a passing plan")


def test_shrink_with_synthetic_predicate():
    # pure-logic check of ddmin (no simulation): minimize to the two ops
    # that jointly cause the "failure"
    plan = FaultPlan(seed=0, n=4, ops=[["a"], ["b"], ["c"], ["d"], ["e"],
                                       ["f"], ["g"], ["h"]])

    def fails(candidate):
        names = [op[0] for op in candidate.ops]
        return "b" in names and "g" in names

    small = shrink_plan(plan, fails=fails)
    assert sorted(op[0] for op in small.ops) == ["b", "g"]


# ----------------------------------------------------------------------
# campaign artifacts + CLI
# ----------------------------------------------------------------------
def test_campaign_artifacts_written(tmp_path):
    from repro.chaos.campaign import _write_artifacts
    plan = FaultPlan(seed=1, n=4, ops=[["cast", 0, 1]])
    summary = {"seeds": 1, "passed": 0, "failed": 1,
               "failures": [{"seed": 1, "plan": plan.to_dict(),
                             "violations": ["boom"],
                             "minimized": plan.to_dict(),
                             "minimized_violations": ["boom"]}]}
    _write_artifacts(summary, str(tmp_path), lambda line: None)
    artifact = tmp_path / "counterexample-seed1.json"
    assert artifact.exists()
    assert FaultPlan.load(str(artifact)) == plan
    assert (tmp_path / "summary.json").exists()


def test_cli_chaos_replay_and_campaign(tmp_path, capsys):
    from repro.__main__ import main
    path = str(tmp_path / "plan.json")
    FaultPlan(seed=1, n=4, ops=[["cast", 0, 2], ["run", 0.2]]).save(path)
    assert main(["chaos", "--replay", path]) == 0
    out = str(tmp_path / "artifacts")
    assert main(["chaos", "--seeds", "2", "--ops", "5",
                 "--preset", "benign", "--out", out]) == 0
    assert (tmp_path / "artifacts" / "summary.json").exists()
    capsys.readouterr()


def test_cli_fuzz(capsys):
    from repro.__main__ import main
    assert main(["fuzz", "--seeds", "2", "--ops", "4"]) == 0
    assert "2 seeds" in capsys.readouterr().out


def test_fuzzer_exports_replayable_plan():
    from repro.tools.fuzzer import ScenarioFuzzer
    fuzzer = ScenarioFuzzer(42, ops=6).execute()
    assert fuzzer.check() == []
    plan = fuzzer.as_plan()
    assert plan.ops == fuzzer.script
    assert plan.seed == 42 and plan.n == fuzzer.n
    # the exported plan replays through the chaos engine without tripping
    # the checker, like the original run
    violations, _engine = run_plan(plan, settle=2.0)
    assert violations == []
    fuzzer.group.stop()


def test_fuzzer_obs_clone_keeps_structured_config():
    from repro.obs import ObsConfig
    from repro.tools.fuzzer import ScenarioFuzzer
    structured = ObsConfig(tracing=False)
    fuzzer = ScenarioFuzzer(1, obs=structured)
    # the regression: obs=<ObsConfig> used to collapse to a bare bool
    assert fuzzer.config.obs is structured
    boolean = ScenarioFuzzer(1, obs=True)
    assert isinstance(boolean.config.obs, ObsConfig)


# ----------------------------------------------------------------------
# regressions the chaos campaign itself found (kept as fixed plans)
# ----------------------------------------------------------------------

def test_concurrent_leaves_keep_view_agreement():
    """Campaign-found safety bug: two concurrent leaves made the elected
    coordinator bind vid ``(counter+1, me)`` to the group's proposed view,
    then -- after that attempt was superseded -- reuse the *same* vid for
    its singleton fallback, violating view agreement.  The membership
    layer now keeps a monotone per-node counter floor across attempts."""
    plan = FaultPlan(seed=14, n=6,
                     ops=(("leave", 5), ("leave", 2)))
    violations, _engine = run_plan(plan)
    assert violations == []


def test_leaves_under_traffic_keep_view_agreement():
    """Second minimized counterexample from the same campaign run: the
    vid reuse also surfaced with app traffic interleaved."""
    plan = FaultPlan(seed=4, n=7,
                     ops=(("cast", 3, 9), ("leave", 6),
                          ("cast", 1, 9), ("leave", 1)))
    violations, _engine = run_plan(plan)
    assert violations == []


def test_originate_is_idempotent():
    """Campaign-found liveness bug: the membership coordinator re-ran
    ``originate`` on every ack-matrix update, and each re-broadcast's
    zero-delay self-delivery produced the next update -- the simulator
    span forever at one instant.  ``originate`` must broadcast once."""
    from repro.broadcast.bracha import BrachaBroadcast
    from repro.broadcast.uniform import UniformBroadcast

    for protocol, initial in ((UniformBroadcast, "ub-initial"),
                              (BrachaBroadcast, "br-initial")):
        sent = []
        inst = protocol(("nv", 0), list(range(7)), 0, 0, 0, sent.append)
        inst.originate("view-a")
        inst.originate("view-a")
        inst.originate("view-b")   # also not an equivocation channel
        assert [p for p in sent if p[0] == initial] == [(initial, "view-a")]
