"""Tests for the MANET extension: geometry, routing, radio network,
gossip stability, and the full stack over multi-hop radio."""

import random

import pytest

from repro import Group, StackConfig
from repro.adhoc.geometry import Field
from repro.adhoc.gossip_stability import GossipStability, simulate_convergence
from repro.adhoc.network import AdHocNetwork, AdHocNetworkConfig
from repro.adhoc.routing import RouteTable
from repro.sim.scheduler import Simulator


def line_field(n, spacing=0.1, radio_range=0.12):
    """Nodes on a line, each only hearing its direct neighbours."""
    field = Field(radio_range=radio_range)
    for i in range(n):
        field.place(i, min(1.0, i * spacing), 0.5)
    return field


# ----------------------------------------------------------------------
# geometry
# ----------------------------------------------------------------------
def test_field_in_range_symmetric():
    field = Field(radio_range=0.3)
    field.place("a", 0.1, 0.1)
    field.place("b", 0.3, 0.1)
    field.place("c", 0.9, 0.9)
    assert field.in_range("a", "b") and field.in_range("b", "a")
    assert not field.in_range("a", "c")
    assert not field.in_range("a", "a")


def test_field_rejects_out_of_square():
    field = Field()
    with pytest.raises(ValueError):
        field.place("x", 1.5, 0.2)


def test_grid_placement_connected_at_generous_range():
    field = Field(radio_range=0.45)
    field.place_grid(range(9))
    assert field.is_connected()


def test_line_components_split_when_a_link_breaks():
    field = line_field(5)
    assert field.is_connected()
    field.move(4, 0.5, 0.0)  # walk out of range
    comps = field.components()
    assert len(comps) == 2
    assert {4} in comps


def test_shortest_hops_on_a_line():
    field = line_field(6)
    assert field.shortest_hops(0, 0) == 0
    assert field.shortest_hops(0, 1) == 1
    assert field.shortest_hops(0, 5) == 5
    field.move(5, 0.8, 0.0)
    assert field.shortest_hops(0, 5) is None


def test_drift_keeps_positions_in_square():
    field = Field(radio_range=0.2)
    rng = random.Random(1)
    field.place_random(range(20), rng)
    for _step in range(50):
        field.drift_random(rng, step=0.1)
    for x, y in field.positions.values():
        assert 0.0 <= x <= 1.0 and 0.0 <= y <= 1.0


# ----------------------------------------------------------------------
# routing
# ----------------------------------------------------------------------
def test_route_found_along_line():
    routes = RouteTable(line_field(5))
    paths = routes.paths(0, 4)
    assert paths and paths[0] == [0, 1, 2, 3, 4]
    assert routes.hops(0, 4) == 4


def test_node_disjoint_paths_on_grid():
    field = Field(radio_range=0.4)
    field.place_grid(range(9), cols=3)
    routes = RouteTable(field, max_paths=3)
    paths = routes.paths(0, 8)
    assert len(paths) >= 2
    interiors = [set(p[1:-1]) for p in paths]
    for i, a in enumerate(interiors):
        for b in interiors[i + 1:]:
            assert not (a & b), "paths share a relay"


def test_route_cache_and_invalidation():
    field = line_field(4)
    routes = RouteTable(field)
    routes.paths(0, 3)
    routes.paths(0, 3)
    assert routes.discoveries == 1  # cached
    routes.invalidate()
    routes.paths(0, 3)
    assert routes.discoveries == 2


def test_demote_removes_a_path():
    field = Field(radio_range=0.4)
    field.place_grid(range(9), cols=3)
    routes = RouteTable(field, max_paths=3)
    paths = routes.paths(0, 8)
    routes.demote(0, 8, paths[0])
    assert tuple(paths[0]) not in {tuple(p) for p in routes.paths(0, 8)}


def test_unreachable_destination_has_no_path():
    field = line_field(3)
    field.place(9, 0.9, 0.9)  # isolated
    routes = RouteTable(field)
    assert routes.paths(0, 9) == []
    assert not routes.reachable(0, 9)


# ----------------------------------------------------------------------
# radio network
# ----------------------------------------------------------------------
def make_adhoc_net(field, seed=0, **cfg):
    sim = Simulator(seed=seed)
    net = AdHocNetwork(sim, field, AdHocNetworkConfig(**cfg))
    inboxes = {}
    for node in field.positions:
        inboxes[node] = []
        net.attach(node, lambda src, p, node=node: inboxes[node].append((src, p)))
    net.refresh_components()
    return sim, net, inboxes


def test_multihop_unicast_delivered_with_hop_latency():
    field = line_field(4)
    sim, net, inboxes = make_adhoc_net(field, jitter=0.0)
    net.send(0, 3, 50, "far")
    sim.run()
    assert inboxes[3] == [(0, "far")]
    assert sim.now >= 3 * net.config.hop_latency


def test_multipath_copies_are_deduplicated():
    field = Field(radio_range=0.4)
    field.place_grid(range(9), cols=3)
    sim, net, inboxes = make_adhoc_net(field)
    net.send(0, 8, 50, "once")
    sim.run()
    assert inboxes[8] == [(0, "once")]
    assert net.routes.disjoint_count(0, 8) >= 2


def test_dropping_relay_masked_by_disjoint_path():
    field = Field(radio_range=0.4)
    field.place_grid(range(9), cols=3)
    sim, net, inboxes = make_adhoc_net(field)
    paths = net.routes.paths(0, 8)
    assert len(paths) >= 2
    victim_relay = paths[0][1]
    net.set_dropping_relays({victim_relay})
    net.send(0, 8, 50, "survives")
    sim.run()
    assert inboxes[8] == [(0, "survives")]
    assert net.dropped_by_relay >= 1


def test_droppers_on_all_paths_block_delivery():
    field = line_field(4)  # a line has exactly one path
    sim, net, inboxes = make_adhoc_net(field)
    net.set_dropping_relays({1})
    net.send(0, 3, 50, "doomed")
    sim.run()
    assert inboxes[3] == []


def test_no_route_drops_datagram():
    field = line_field(3)
    field.place(9, 0.95, 0.95)
    sim, net, inboxes = make_adhoc_net(field)
    net.send(0, 9, 50, "void")
    sim.run()
    assert inboxes[9] == []
    assert net.no_route == 1


def test_movement_invalidates_routes_and_components():
    field = line_field(4)
    sim, net, _ = make_adhoc_net(field)
    assert net.connected(0, 3)
    field.move(3, 0.7, 0.0)
    net.on_movement()
    assert not net.connected(0, 3)


def test_radio_gossip_floods_component_only():
    field = line_field(4)
    field.place(9, 0.95, 0.95)
    sim = Simulator()
    net = AdHocNetwork(sim, field, AdHocNetworkConfig())
    heard = {}
    for node in field.positions:
        heard[node] = []
        net.attach(node, lambda s, p: None,
                   lambda s, p, node=node: heard[node].append(p))
    net.refresh_components()
    net.gossip_cast(0, 32, "beacon")
    sim.run()
    assert heard[3] == ["beacon"]
    assert heard[9] == []


# ----------------------------------------------------------------------
# gossip stability
# ----------------------------------------------------------------------
def test_gossip_stability_converges():
    result = simulate_convergence(16, seed=1, fanout=2)
    assert result["converged"]
    assert result["rounds"] <= 20


def test_gossip_rounds_scale_sublinearly():
    small = simulate_convergence(8, seed=2)
    large = simulate_convergence(64, seed=2)
    assert small["converged"] and large["converged"]
    # O(log n): 8x the nodes must take far less than 8x the rounds
    assert large["rounds"] <= 4 * max(1, small["rounds"])


def test_gossip_messages_per_node_bounded_by_fanout_times_rounds():
    result = simulate_convergence(32, seed=3, fanout=2)
    assert result["messages_per_node"] <= 2 * (result["rounds"] + 1)


def test_gossip_survives_transport_loss():
    result = simulate_convergence(16, seed=4, transport_loss=0.2)
    assert result["converged"]


def test_gossip_merge_takes_maxima_and_ignores_garbage():
    node = GossipStability("a", ["a", "b"], lambda p, m: None,
                           random.Random(0))
    node.update_local({("s", "a"): 5})
    assert node.on_gossip(("gstab", ((("b"), ((("s", "a"), 7),)),)))
    assert node.matrix["b"][("s", "a")] == 7
    assert node.stable_watermark(("s", "a")) == 5
    assert not node.on_gossip("garbage")
    assert not node.on_gossip(("gstab", "not-a-matrix"))
    # unknown members are ignored
    assert node.on_gossip(("gstab", (("z", ((("s", "a"), 9),)),)))
    assert "z" not in node.matrix


def test_gossip_knowledge_fraction():
    node = GossipStability("a", ["a", "b", "c", "d"], lambda p, m: None,
                           random.Random(0))
    node.update_local({("s", "a"): 1})
    assert node.knowledge_fraction(("s", "a"), 1) == 0.25
    assert not node.is_stable(("s", "a"), 1)


# ----------------------------------------------------------------------
# the full stack over the MANET
# ----------------------------------------------------------------------
def test_full_stack_broadcast_over_multihop_radio():
    group = Group.bootstrap_adhoc(9, config=StackConfig.byz(), seed=2)
    group.endpoints[0].cast(("manet", 1))
    group.run(2.0)
    for node in range(9):
        payloads = [e.payload for e in group.endpoints[node].events
                    if type(e).__name__ == "CastDeliver"]
        assert ("manet", 1) in payloads
    assert group.network.relayed_hops > 0  # multi-hop actually used


def test_full_stack_crash_exclusion_over_radio():
    group = Group.bootstrap_adhoc(9, config=StackConfig.byz(), seed=3)
    group.run(0.5)
    group.crash(8)
    ok = group.run_until(
        lambda: all(8 not in p.view.mbrs and p.view.n == 8
                    for n, p in group.processes.items()
                    if n != 8 and not p.stopped), timeout=25.0)
    assert ok
    vids = {p.view.vid for n, p in group.processes.items() if not p.stopped}
    assert len(vids) == 1


def test_full_stack_partition_by_movement():
    field = line_field(6, spacing=0.1, radio_range=0.12)
    group = Group.bootstrap_adhoc(6, config=StackConfig.byz(), seed=4,
                                  field=field)
    group.run(0.5)
    # nodes 4,5 walk away together
    field.move(4, 0.0, 0.4)
    field.move(5, -0.1, 0.4)
    group.network.on_movement()
    ok = group.run_until(
        lambda: all(p.view.n == 4 for n, p in group.processes.items() if n < 4)
        and all(p.view.n == 2 for n, p in group.processes.items() if n >= 4),
        timeout=30.0)
    assert ok, {n: p.view.mbrs for n, p in group.processes.items()}


def test_manet_uses_gossip_stability_by_default():
    group = Group.bootstrap_adhoc(9, config=StackConfig.byz(), seed=5)
    assert group.config.ack_mode == "gossip"
    for k in range(10):
        group.endpoints[0].cast(("gs", k))
    group.run(3.0)
    for node in range(9):
        payloads = [e.payload for e in group.endpoints[node].events
                    if type(e).__name__ == "CastDeliver"
                    and isinstance(e.payload, tuple) and e.payload[0] == "gs"]
        assert payloads == [("gs", k) for k in range(10)], "node %d" % node
    # stability knowledge reached everyone through gossip alone
    tracker = group.processes[8].stability
    assert tracker.min_ack(0, "a", group.processes[8].view.mbrs) == 10


def test_manet_mute_byzantine_member_excluded():
    from repro.byzantine.behaviors import MuteNode
    group = Group.bootstrap_adhoc(9, config=StackConfig.byz(), seed=6,
                                  behaviors={4: MuteNode(mute_at=1.0)})
    group.run(0.5)
    ok = group.run_until(
        lambda: all(4 not in p.view.mbrs for n, p in group.processes.items()
                    if n != 4 and not p.stopped), timeout=40.0)
    assert ok
    vids = {p.view.vid for n, p in group.processes.items()
            if n != 4 and not p.stopped}
    assert len(vids) == 1
