"""Property-based tests (hypothesis) for the agreement protocols."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.broadcast.bracha import BrachaBroadcast
from repro.broadcast.uniform import UniformBroadcast
from repro.consensus.interface import (max_f_bracha, max_f_consensus,
                                       max_f_uniform)
from repro.consensus.vector import VectorConsensus
from repro.sim.scheduler import Simulator


def run_consensus(n, f, proposals, seed, crashed=frozenset()):
    sim = Simulator(seed=seed)
    members = list(range(n))
    instances = {}
    decisions = {}

    def bcast_from(sender):
        def bcast(payload):
            if sender in crashed:
                return
            for receiver in members:
                if receiver != sender and receiver not in crashed:
                    sim.schedule(0.001 + sim.rng.random() * 0.002,
                                 lambda r=receiver, s=sender, p=payload:
                                 instances[r].on_message(s, p))
        return bcast

    for i in members:
        instances[i] = VectorConsensus(
            "p", members, i, f, proposals[i], bcast_from(i),
            is_suspected=lambda m: m in crashed,
            on_decide=lambda v, i=i: decisions.__setitem__(i, v),
            coordinator_seed=seed)
    for i in members:
        if i not in crashed:
            instances[i].start()
    sim.run(max_events=3_000_000)
    return decisions


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=7, max_value=15),
    st.data(),
    st.integers(min_value=0, max_value=2**31),
)
def test_consensus_agreement_validity_termination(n, data, seed):
    f = max_f_consensus(n)
    width = data.draw(st.integers(min_value=1, max_value=6))
    proposals = {
        i: tuple(data.draw(st.integers(min_value=0, max_value=2),
                           label="p%d_%d" % (i, k))
                 for k in range(width))
        for i in range(n)
    }
    decisions = run_consensus(n, f, proposals, seed)
    # termination: every process decides
    assert len(decisions) == n
    # agreement: one decision vector
    assert len(set(decisions.values())) == 1
    decided = next(iter(decisions.values()))
    # validity, per entry: unanimous input must be decided; any decided
    # value must have been proposed by someone
    for k in range(width):
        inputs = {proposals[i][k] for i in range(n)}
        if len(inputs) == 1:
            assert decided[k] == inputs.pop()
        else:
            assert decided[k] in inputs


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=13, max_value=15),
    st.integers(min_value=0, max_value=2**31),
    st.data(),
)
def test_consensus_with_crashes_still_agrees(n, seed, data):
    f = max_f_consensus(n)
    crashed = frozenset(data.draw(
        st.sets(st.integers(min_value=0, max_value=n - 1),
                min_size=0, max_size=f)))
    proposals = {i: ((i + seed) % 2, (i * 3 + seed) % 2) for i in range(n)}
    decisions = run_consensus(n, f, proposals, seed, crashed=crashed)
    live = [i for i in range(n) if i not in crashed]
    assert all(i in decisions for i in live)
    assert len({decisions[i] for i in live}) == 1


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=2, max_value=20),
    st.integers(min_value=0, max_value=2**31),
    st.sampled_from(["ub", "bracha"]),
)
def test_broadcast_delivers_origin_value(n, seed, protocol_name):
    sim = Simulator(seed=seed)
    members = list(range(n))
    protocol = UniformBroadcast if protocol_name == "ub" else BrachaBroadcast
    f = max_f_uniform(n) if protocol_name == "ub" else max_f_bracha(n)
    if protocol_name == "bracha" and n <= 3 * f:
        f = max(0, (n - 1) // 3)
    instances = {}
    delivered = {}

    def bcast_from(sender):
        def bcast(payload):
            for receiver in members:
                if receiver != sender:
                    sim.schedule(0.001 + sim.rng.random() * 0.002,
                                 lambda r=receiver, s=sender, p=payload:
                                 instances[r].on_message(s, p))
        return bcast

    origin = seed % n
    try:
        for i in members:
            instances[i] = protocol(
                ("t", 0), members, i, f, origin, bcast_from(i),
                on_deliver=lambda v, i=i: delivered.__setitem__(i, v))
    except ValueError:
        return  # n too small for this (protocol, f): out of scope
    instances[origin].originate(("value", seed))
    sim.run(max_events=1_000_000)
    assert len(delivered) == n
    assert set(delivered.values()) == {("value", seed)}


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=1, max_value=200))
def test_resilience_bound_helpers_consistent(n):
    fc = max_f_consensus(n)
    fu = max_f_uniform(n)
    fb = max_f_bracha(n)
    assert n > 6 * fc
    assert n - fu >= n / 2.0 + 2 * fu + 1 or fu == 0
    assert n > 3 * fb
    # the 2-step protocol trades resilience for latency: never above Bracha
    assert fu <= fb
    assert fc <= fb
