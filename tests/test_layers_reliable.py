"""Tests for reliable FIFO delivery, loss recovery, and retransmission."""

from tests.helpers import cast_ids, cast_payloads, make_group

from repro import Group, StackConfig
from repro.sim.network import NetworkConfig


def lossy_group(n, drop_prob, seed=0, **config_kw):
    config = StackConfig.byz(**config_kw)
    return Group.bootstrap(n, config=config, seed=seed,
                           net_config=NetworkConfig(drop_prob=drop_prob))


def test_fifo_order_preserved_per_sender():
    group = make_group(5, seed=1)
    for k in range(20):
        group.endpoints[0].cast(("m", k))
    group.run(0.5)
    for node in range(1, 5):
        payloads = [p for p in cast_payloads(group.endpoints[node])
                    if p[0] == "m"]
        assert payloads == [("m", k) for k in range(20)]


def test_sender_delivers_its_own_casts():
    group = make_group(4, seed=2)
    group.endpoints[1].cast("own")
    group.run(0.2)
    assert "own" in cast_payloads(group.endpoints[1])


def test_loss_recovered_by_retransmission():
    group = lossy_group(5, drop_prob=0.15, seed=3)
    for k in range(30):
        group.endpoints[0].cast(("m", k))
    group.run(1.5)
    for node in range(5):
        payloads = [p for p in cast_payloads(group.endpoints[node])
                    if isinstance(p, tuple) and p[0] == "m"]
        assert payloads == [("m", k) for k in range(30)], "node %d" % node
    naks = sum(p.reliable.naks_sent for p in group.processes.values())
    assert naks > 0  # recovery actually exercised


def test_heavy_loss_interleaved_senders():
    group = lossy_group(4, drop_prob=0.25, seed=4)
    for k in range(10):
        for node in range(4):
            group.endpoints[node].cast((node, k))
    group.run(3.0)
    for node in range(4):
        payloads = cast_payloads(group.endpoints[node])
        for sender in range(4):
            from_sender = [p for p in payloads if p[0] == sender]
            assert from_sender == [(sender, k) for k in range(10)]


def test_reordering_does_not_break_fifo():
    config = StackConfig.byz()
    group = Group.bootstrap(4, config=config, seed=5,
                            net_config=NetworkConfig(reorder_prob=0.3))
    for k in range(25):
        group.endpoints[2].cast(("r", k))
    group.run(2.0)
    for node in range(4):
        payloads = [p for p in cast_payloads(group.endpoints[node])
                    if p[0] == "r"]
        assert payloads == [("r", k) for k in range(25)]


def test_duplicates_are_suppressed():
    config = StackConfig.byz()
    group = Group.bootstrap(4, config=config, seed=6,
                            net_config=NetworkConfig(duplicate_prob=0.5))
    for k in range(15):
        group.endpoints[0].cast(("d", k))
    group.run(1.0)
    for node in range(1, 4):
        payloads = [p for p in cast_payloads(group.endpoints[node])
                    if p[0] == "d"]
        assert payloads == [("d", k) for k in range(15)]
    assert any(p.reliable.duplicates > 0 for p in group.processes.values())


def test_point_to_point_send_fifo():
    group = make_group(4, seed=7)
    for k in range(12):
        group.endpoints[0].send(3, ("p2p", k))
    group.run(0.3)
    deliveries = [e.payload for e in group.endpoints[3].events
                  if type(e).__name__ == "SendDeliver"]
    assert deliveries == [("p2p", k) for k in range(12)]
    # nobody else saw them
    for node in (1, 2):
        assert not [e for e in group.endpoints[node].events
                    if type(e).__name__ == "SendDeliver"]


def test_point_to_point_loss_recovery():
    group = lossy_group(3, drop_prob=0.3, seed=8)
    for k in range(20):
        group.endpoints[0].send(1, ("pp", k))
    group.run(2.0)
    deliveries = [e.payload for e in group.endpoints[1].events
                  if type(e).__name__ == "SendDeliver"]
    assert deliveries == [("pp", k) for k in range(20)]


def test_acks_trim_nothing_but_track_progress():
    group = make_group(4, seed=9)
    group.endpoints[0].cast("x")
    group.run(0.3)
    tracker = group.processes[1].stability
    # everyone acked message 1 of node 0's app stream
    assert tracker.min_ack(0, "a", group.processes[1].view.mbrs) >= 1


def test_third_party_retransmission_with_sym_crypto():
    # drop enough traffic that repeat NAKs rotate to third parties; with
    # sym crypto the inner signature must verify
    config = StackConfig.byz(crypto="sym", retrans_timeout=0.02)
    group = Group.bootstrap(5, config=config, seed=10,
                            net_config=NetworkConfig(drop_prob=0.3))
    for k in range(20):
        group.endpoints[0].cast(("t", k))
    group.run(3.0)
    for node in range(5):
        payloads = [p for p in cast_payloads(group.endpoints[node])
                    if p[0] == "t"]
        assert payloads == [("t", k) for k in range(20)], "node %d" % node


def test_forged_retransmission_rejected():
    from repro.byzantine.behaviors import ForgedRetransmitter
    config = StackConfig.byz(crypto="sym", retrans_timeout=0.02)
    behaviors = {2: ForgedRetransmitter()}
    group = Group.bootstrap(5, config=config, seed=11, behaviors=behaviors,
                            net_config=NetworkConfig(drop_prob=0.25))
    for k in range(15):
        group.endpoints[0].cast(("f", k))
    group.run(3.0)
    # despite the forger, every correct node gets the true contents in order
    for node in (0, 1, 3, 4):
        payloads = [p for p in cast_payloads(group.endpoints[node])
                    if isinstance(p, tuple) and p[0] == "f"]
        assert payloads == [("f", k) for k in range(15)], "node %d" % node


def test_stream_state_reports_own_and_peer_progress():
    group = make_group(3, seed=12)
    group.endpoints[0].cast("a")
    group.endpoints[0].cast("b")
    group.endpoints[1].cast("c")
    group.run(0.2)
    state = group.processes[2].reliable.stream_state()
    assert state[0] == 2
    assert state[1] == 1
    assert state[2] == 0  # node 2 sent nothing
