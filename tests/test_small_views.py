"""Small views and underprovisioned operation (paper section 3.4.5).

Below the resilience bounds the stack degrades to f = 0 agreement and
marks views ``underprovisioned`` (DESIGN.md deviation 5); crash/leave
handling must still work, just without Byzantine tolerance.
"""

from tests.helpers import cast_payloads, make_group

from repro import Group, StackConfig
from repro.core.view import singleton_view


def test_resilience_zero_below_bounds():
    config = StackConfig.byz()
    for n in range(1, 7):
        assert config.resilience(n) == 0


def test_initial_small_view_flagged_underprovisioned():
    group = make_group(4, seed=1)
    assert group.processes[0].view.underprovisioned
    large = make_group(8, seed=1)
    assert not large.processes[0].view.underprovisioned


def test_three_node_group_survives_crash():
    group = make_group(3, seed=2)
    group.endpoints[0].cast("pre")
    group.run(0.1)
    group.crash(2)
    ok = group.run_until(
        lambda: all(p.view.n == 2 for p in group.processes.values()
                    if not p.stopped), timeout=4.0)
    assert ok
    group.endpoints[0].cast("post")
    group.run(0.3)
    assert "post" in cast_payloads(group.endpoints[1])


def test_two_node_group_survives_leave():
    group = make_group(2, seed=3)
    group.run(0.05)
    group.endpoints[1].leave()
    ok = group.run_until(lambda: group.processes[0].view.n == 1, timeout=4.0)
    assert ok
    assert group.processes[0].view.mbrs == (0,)


def test_pair_collapse_to_singletons_on_partition():
    group = make_group(2, seed=4)
    group.run(0.05)
    group.partition({0}, {1})
    ok = group.run_until(
        lambda: all(p.view.n == 1 for p in group.processes.values()),
        timeout=4.0)
    assert ok


def test_singleton_can_cast_to_itself():
    config = StackConfig.byz()
    group = Group.bootstrap(1, config=config, seed=5)
    group.endpoints[0].cast("solo")
    group.run(0.1)
    assert "solo" in cast_payloads(group.endpoints[0])


def test_singleton_view_helper():
    view = singleton_view(42)
    assert view.n == 1 and view.coordinator == 42


def test_small_total_order_group():
    group = make_group(4, seed=6, total_order=True)
    for node in range(4):
        group.endpoints[node].cast((node, "x"))
    group.run(0.6)
    sequences = {tuple(e.msg_id for e in group.endpoints[n].events
                       if type(e).__name__ == "CastDeliver")
                 for n in range(4)}
    assert len(sequences) == 1
    assert len(sequences.pop()) == 4


def test_small_uniform_delivery_group():
    # n=4 cannot run the 2-step UB at f>=1; casts still deliver (f=0 path)
    group = make_group(4, seed=7, uniform_delivery=True)
    group.endpoints[0].cast("u")
    group.run(0.4)
    for node in range(4):
        assert "u" in cast_payloads(group.endpoints[node])


def test_grow_from_two_to_five_by_merging():
    group = make_group(5, seed=8, established=False)
    ok = group.run_until(
        lambda: all(p.view.n == 5 for p in group.processes.values())
        and len({p.view.vid for p in group.processes.values()}) == 1,
        timeout=12.0)
    assert ok
